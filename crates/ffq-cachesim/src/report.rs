//! Aggregated results of one simulation run.

use serde::Serialize;

/// Everything Figures 4/5 plot, plus throughput for the Fig. 6 mirror.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SimReport {
    /// Queue capacity (entries) of the simulated run.
    pub queue_size: u64,
    /// Items streamed through the queue.
    pub ops: u64,
    /// Wall-clock of the run in simulated cycles (max over hardware
    /// threads).
    pub elapsed_cycles: u64,
    /// Aggregate L1 hit ratio over both threads' cores.
    pub l1_hit_ratio: f64,
    /// Aggregate L2 hit ratio (Fig. 4, top).
    pub l2_hit_ratio: f64,
    /// L3 hit ratio (Fig. 5, top-left).
    pub l3_hit_ratio: f64,
    /// Absolute L3 misses (Fig. 5, top-right).
    pub l3_misses: u64,
    /// Bytes moved to/from DRAM.
    pub mem_bytes: u64,
    /// DRAM bandwidth in bytes per kilocycle (Fig. 5, bottom — the paper
    /// reports GB/s; shape-equivalent under a fixed clock).
    pub mem_bytes_per_kcycle: f64,
    /// Instructions per cycle across the whole machine (Fig. 4, middle).
    pub ipc: f64,
    /// Items per kilocycle (the Fig. 6 mirror's throughput measure).
    pub ops_per_kcycle: f64,
    /// Write-induced remote invalidations (coherence traffic).
    pub invalidations: u64,
    /// Dirty cache-to-cache transfers.
    pub remote_transfers: u64,
}

impl SimReport {
    /// Header for aligned text tables, matching field order of
    /// [`row`](Self::row).
    pub fn header() -> String {
        format!(
            "{:>9} {:>12} {:>8} {:>8} {:>8} {:>10} {:>12} {:>8} {:>10}",
            "qsize",
            "cycles",
            "l1_hit",
            "l2_hit",
            "l3_hit",
            "l3_miss",
            "B/kcycle",
            "ipc",
            "ops/kcyc"
        )
    }

    /// One aligned text row.
    pub fn row(&self) -> String {
        format!(
            "{:>9} {:>12} {:>8.4} {:>8.4} {:>8.4} {:>10} {:>12.1} {:>8.3} {:>10.2}",
            self.queue_size,
            self.elapsed_cycles,
            self.l1_hit_ratio,
            self.l2_hit_ratio,
            self.l3_hit_ratio,
            self.l3_misses,
            self.mem_bytes_per_kcycle,
            self.ipc,
            self.ops_per_kcycle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        SimReport {
            queue_size: 1024,
            ops: 1_000_000,
            elapsed_cycles: 12_345_678,
            l1_hit_ratio: 0.95,
            l2_hit_ratio: 0.5,
            l3_hit_ratio: 0.25,
            l3_misses: 1234,
            mem_bytes: 64 * 1234,
            mem_bytes_per_kcycle: 6.4,
            ipc: 1.5,
            ops_per_kcycle: 81.0,
            invalidations: 10,
            remote_transfers: 20,
        }
    }

    #[test]
    fn row_and_header_align() {
        let h = SimReport::header();
        let r = sample().row();
        assert_eq!(
            h.split_whitespace().count(),
            r.split_whitespace().count(),
            "header/row column mismatch"
        );
    }

    #[test]
    fn serializes_to_json() {
        let j = serde_json::to_string(&sample()).unwrap();
        assert!(j.contains("\"queue_size\":1024"));
        assert!(j.contains("\"l3_misses\":1234"));
    }
}
