//! The FFQ cell protocol as a memory-access trace.
//!
//! The simulated producer/consumer touch exactly the lines the real
//! implementation (crate `ffq`) touches per operation:
//!
//! * **enqueue** — read the cell's `(rank, gap)` words (free check), write
//!   data + rank (same line for word payloads), write the mirrored tail;
//! * **dequeue** — fetch-and-add the shared head (SPMC only; the SPSC
//!   consumer's head is a register), read the cell words, write the rank
//!   reset.
//!
//! Cell layouts mirror `ffq::cell`: a padded cell owns a 64-byte line, a
//! compact 32-byte cell shares a line with its neighbour — which is what
//! makes the layouts behave differently under coherence (§V-B).

/// Cell layout, matching `ffq::cell::{PaddedCell, CompactCell}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellLayoutKind {
    /// One cell per 64-byte cache line.
    Padded,
    /// 32-byte cells, two per line.
    Compact,
}

impl CellLayoutKind {
    /// Line (relative to the array base) holding the given slot's words and
    /// word-sized payload.
    #[inline]
    pub fn cell_line(self, slot: u64) -> u64 {
        match self {
            CellLayoutKind::Padded => slot,
            CellLayoutKind::Compact => slot / 2,
        }
    }

    /// Lines occupied by an `n`-slot array.
    pub fn footprint_lines(self, n: u64) -> u64 {
        match self {
            CellLayoutKind::Padded => n,
            CellLayoutKind::Compact => n.div_ceil(2),
        }
    }

    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            CellLayoutKind::Padded => "padded",
            CellLayoutKind::Compact => "compact",
        }
    }
}

/// One simulated memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Line address.
    pub line: u64,
    /// Store (true) or load.
    pub write: bool,
}

/// Logical queue state plus address layout for the trace.
#[derive(Debug)]
pub struct QueueModel {
    layout: CellLayoutKind,
    capacity: u64,
    /// Line of the shared head counter (its own padded line).
    head_line: u64,
    /// Line of the mirrored tail counter.
    tail_line: u64,
    /// First line of the cell array.
    array_base: u64,
    /// Monotonic logical counters (gaps do not occur in the steady-state
    /// SPSC benchmark: the producer stalls instead of skipping when full).
    tail: u64,
    head: u64,
    /// Whether dequeues hit the shared head line (SPMC) or not (SPSC).
    shared_head: bool,
}

impl QueueModel {
    /// Creates the model. Address layout: `[head][tail][cells...]`, each
    /// counter on its own line, the array starting on the next line —
    /// mirroring `ffq::shared::Shared` (CachePadded counters + boxed array).
    pub fn new(capacity: u64, layout: CellLayoutKind, shared_head: bool) -> Self {
        assert!(capacity.is_power_of_two());
        Self {
            layout,
            capacity,
            head_line: 0,
            tail_line: 2, // CachePadded = 128 bytes = 2 lines
            array_base: 4,
            tail: 0,
            head: 0,
            shared_head,
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> u64 {
        self.tail - self.head
    }

    /// No queued items.
    pub fn is_empty(&self) -> bool {
        self.tail == self.head
    }

    /// No free slot.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Total lines the queue's shared state spans (cells + counters).
    pub fn footprint_lines(&self) -> u64 {
        self.array_base + self.layout.footprint_lines(self.capacity)
    }

    fn cell_line(&self, rank: u64) -> u64 {
        self.array_base + self.layout.cell_line(rank % self.capacity)
    }

    /// Emits the accesses of one enqueue and advances the logical tail.
    ///
    /// # Panics
    /// If the queue is full (the engine gates on [`is_full`](Self::is_full)).
    pub fn enqueue_accesses(&mut self, out: &mut Vec<MemAccess>) {
        assert!(!self.is_full());
        let line = self.cell_line(self.tail);
        // Free-check read of the cell words, then the data+rank publish.
        out.push(MemAccess { line, write: false });
        out.push(MemAccess { line, write: true });
        // Mirrored tail store (len_hint support in the real queue).
        out.push(MemAccess {
            line: self.tail_line,
            write: true,
        });
        self.tail += 1;
    }

    /// Emits the accesses of one dequeue and advances the logical head.
    ///
    /// # Panics
    /// If the queue is empty.
    pub fn dequeue_accesses(&mut self, out: &mut Vec<MemAccess>) {
        assert!(!self.is_empty());
        if self.shared_head {
            // fetch_add on the shared head: a write.
            out.push(MemAccess {
                line: self.head_line,
                write: true,
            });
        }
        let line = self.cell_line(self.head);
        // Rank check read, data read (same line), rank-reset write.
        out.push(MemAccess { line, write: false });
        out.push(MemAccess { line, write: true });
        self.head += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_cells_one_line_each() {
        assert_eq!(CellLayoutKind::Padded.cell_line(0), 0);
        assert_eq!(CellLayoutKind::Padded.cell_line(7), 7);
        assert_eq!(CellLayoutKind::Padded.footprint_lines(64), 64);
    }

    #[test]
    fn compact_cells_share_lines_pairwise() {
        assert_eq!(CellLayoutKind::Compact.cell_line(0), 0);
        assert_eq!(CellLayoutKind::Compact.cell_line(1), 0);
        assert_eq!(CellLayoutKind::Compact.cell_line(2), 1);
        assert_eq!(CellLayoutKind::Compact.footprint_lines(64), 32);
        assert_eq!(CellLayoutKind::Compact.footprint_lines(7), 4);
    }

    #[test]
    fn spsc_dequeue_skips_head_line() {
        let mut q = QueueModel::new(8, CellLayoutKind::Padded, false);
        let mut acc = Vec::new();
        q.enqueue_accesses(&mut acc);
        acc.clear();
        q.dequeue_accesses(&mut acc);
        assert!(acc.iter().all(|a| a.line != q.head_line));
        assert_eq!(acc.len(), 2);
    }

    #[test]
    fn spmc_dequeue_hits_head_line_first() {
        let mut q = QueueModel::new(8, CellLayoutKind::Padded, true);
        let mut acc = Vec::new();
        q.enqueue_accesses(&mut acc);
        acc.clear();
        q.dequeue_accesses(&mut acc);
        assert_eq!(
            acc[0],
            MemAccess {
                line: 0,
                write: true
            }
        );
        assert_eq!(acc.len(), 3);
    }

    #[test]
    fn producer_and_consumer_meet_on_the_same_cell_line() {
        let mut q = QueueModel::new(4, CellLayoutKind::Padded, false);
        let mut enq = Vec::new();
        q.enqueue_accesses(&mut enq);
        let mut deq = Vec::new();
        q.dequeue_accesses(&mut deq);
        assert_eq!(enq[0].line, deq[0].line, "same rank, same line");
    }

    #[test]
    fn wraparound_reuses_lines() {
        let mut q = QueueModel::new(2, CellLayoutKind::Padded, false);
        let mut acc = Vec::new();
        for _ in 0..6 {
            q.enqueue_accesses(&mut acc);
            q.dequeue_accesses(&mut acc);
        }
        let max_line = acc.iter().map(|a| a.line).max().unwrap();
        assert!(max_line < q.footprint_lines());
    }

    #[test]
    fn fullness_and_emptiness_track() {
        let mut q = QueueModel::new(2, CellLayoutKind::Compact, false);
        let mut acc = Vec::new();
        assert!(q.is_empty());
        q.enqueue_accesses(&mut acc);
        q.enqueue_accesses(&mut acc);
        assert!(q.is_full());
        q.dequeue_accesses(&mut acc);
        assert!(!q.is_full());
        assert_eq!(q.len(), 1);
    }
}
