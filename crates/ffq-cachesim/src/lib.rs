//! A trace-driven cache-hierarchy simulator for the FFQ reproduction.
//!
//! Figures 4 and 5 of the paper plot hardware performance counters — L2/L3
//! hit ratios, L3 misses, memory bandwidth, IPC — for a single-producer/
//! single-consumer FFQ run across queue sizes and the four thread-affinity
//! policies. This environment exposes no PMU (and has one physical core), so
//! those figures are regenerated *deterministically* on a software model
//! instead (substitution DESIGN.md §4.3):
//!
//! * [`cache`] — one set-associative, LRU, write-back cache level;
//! * [`hierarchy`] — per-core L1/L2, shared inclusive L3, MESI-style
//!   coherence between cores (invalidations, dirty-line transfers),
//!   memory-traffic accounting, configurable latencies;
//! * [`qmodel`] — the FFQ cell protocol as a memory-access trace: the
//!   simulated producer and consumer touch exactly the lines the real
//!   implementation touches (cell words + payload, shared head, mirrored
//!   tail), with the paper's cell layouts (padded vs. compact);
//! * [`engine`] — interleaved execution of the two simulated threads under
//!   a [`Placement`]-like mapping onto simulated cores/hardware threads,
//!   producing a [`report::SimReport`].
//!
//! The mechanisms the paper attributes its curves to — queue footprint vs.
//! cache capacity, private vs. shared caches, coherence misses from
//! producer/consumer line sharing — are exactly the mechanisms modeled here,
//! which is what makes the curve *shapes* reproducible even though absolute
//! cycle counts are synthetic.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
pub mod engine;
pub mod hierarchy;
pub mod qmodel;
pub mod report;
pub mod workloads;

pub use engine::{simulate_spmc, simulate_spsc, SimConfig, SimPlacement};
pub use hierarchy::{CostModel, Hierarchy, HierarchyConfig};
pub use qmodel::CellLayoutKind;
pub use report::SimReport;
