//! One set-associative, write-back, LRU cache level.

/// Result of a lookup/insert on one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present.
    Hit,
    /// Line absent.
    Miss,
}

/// A line evicted to make room, with its dirtiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line address (byte address >> line_shift).
    pub line: u64,
    /// Whether the line held modified data (would be written back).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    line: u64,
    /// LRU timestamp; larger = more recently used.
    lru: u64,
    valid: bool,
    dirty: bool,
}

const EMPTY_WAY: Way = Way {
    line: 0,
    lru: 0,
    valid: false,
    dirty: false,
};

/// Running hit/miss statistics for one cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines evicted due to capacity/conflict.
    pub evictions: u64,
    /// Evicted lines that were dirty (write-back traffic).
    pub writebacks: u64,
}

impl CacheStats {
    /// hits / (hits + misses), or 1.0 with no traffic.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative cache indexed by line address.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Way>>,
    assoc: usize,
    set_mask: u64,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache of `size_bytes` with `assoc` ways and 64-byte lines.
    ///
    /// # Panics
    /// If the geometry is inconsistent (size not divisible into sets, or a
    /// non-power-of-two set count).
    pub fn new(size_bytes: usize, assoc: usize) -> Self {
        const LINE: usize = 64;
        assert!(assoc >= 1);
        assert_eq!(size_bytes % (LINE * assoc), 0, "size/assoc mismatch");
        let n_sets = size_bytes / (LINE * assoc);
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Self {
            sets: vec![vec![EMPTY_WAY; assoc]; n_sets],
            assoc,
            set_mask: n_sets as u64 - 1,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Whether the cache currently holds `line` (no stats side effects).
    pub fn contains(&self, line: u64) -> bool {
        self.sets[self.set_of(line)]
            .iter()
            .any(|w| w.valid && w.line == line)
    }

    /// Looks `line` up, updating LRU and hit/miss statistics. On a hit with
    /// `write`, the line becomes dirty.
    pub fn access(&mut self, line: u64, write: bool) -> Lookup {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        for way in &mut self.sets[set] {
            if way.valid && way.line == line {
                way.lru = tick;
                way.dirty |= write;
                self.stats.hits += 1;
                return Lookup::Hit;
            }
        }
        self.stats.misses += 1;
        Lookup::Miss
    }

    /// Inserts `line` (after a miss was filled from below), evicting the LRU
    /// way if the set is full. Returns the evicted line, if any.
    pub fn fill(&mut self, line: u64, dirty: bool) -> Option<Evicted> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        // Already present (e.g. refilled by a racing path): just update.
        if let Some(way) = self.sets[set]
            .iter_mut()
            .find(|w| w.valid && w.line == line)
        {
            way.lru = tick;
            way.dirty |= dirty;
            return None;
        }
        if let Some(way) = self.sets[set].iter_mut().find(|w| !w.valid) {
            *way = Way {
                line,
                lru: tick,
                valid: true,
                dirty,
            };
            return None;
        }
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|w| w.lru)
            .expect("assoc >= 1");
        let evicted = Evicted {
            line: victim.line,
            dirty: victim.dirty,
        };
        *victim = Way {
            line,
            lru: tick,
            valid: true,
            dirty,
        };
        self.stats.evictions += 1;
        if evicted.dirty {
            self.stats.writebacks += 1;
        }
        Some(evicted)
    }

    /// Removes `line` (coherence invalidation or inclusive back-invalidate).
    /// Returns whether the dropped copy was dirty.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        for way in &mut self.sets[set] {
            if way.valid && way.line == line {
                way.valid = false;
                return way.dirty;
            }
        }
        false
    }

    /// Marks a present line clean (after its data was written back/shared).
    pub fn clean(&mut self, line: u64) {
        let set = self.set_of(line);
        for way in &mut self.sets[set] {
            if way.valid && way.line == line {
                way.dirty = false;
            }
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(4096, 4); // 16 sets
        assert_eq!(c.access(5, false), Lookup::Miss);
        c.fill(5, false);
        assert_eq!(c.access(5, false), Lookup::Hit);
        assert!(c.contains(5));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Direct-mapped-ish: 1 set of 2 ways.
        let mut c = Cache::new(128, 2);
        c.fill(10, false);
        c.fill(20, false);
        // Touch 10 so 20 becomes LRU.
        assert_eq!(c.access(10, false), Lookup::Hit);
        let ev = c.fill(30, false).unwrap();
        assert_eq!(ev.line, 20);
        assert!(c.contains(10));
        assert!(c.contains(30));
        assert!(!c.contains(20));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = Cache::new(128, 1);
        c.fill(1, false);
        assert_eq!(c.access(1, true), Lookup::Hit); // dirty now
        let ev = c.fill(3, false).unwrap(); // same set (1 set? 2 sets) —
                                            // with 128B/1-way there are 2 sets; lines 1 and 3 map to set 1.
        assert_eq!(ev.line, 1);
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::new(4096, 8);
        c.fill(7, true);
        assert!(c.invalidate(7), "dropped copy was dirty");
        assert!(!c.contains(7));
        assert!(!c.invalidate(7), "second invalidate is a no-op");
    }

    #[test]
    fn conflict_misses_within_one_set() {
        // 4 sets × 2 ways; lines 0,4,8 all map to set 0.
        let mut c = Cache::new(512, 2);
        c.fill(0, false);
        c.fill(4, false);
        c.fill(8, false); // evicts 0
        assert!(!c.contains(0));
        assert!(c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn capacity_in_lines() {
        assert_eq!(Cache::new(32 * 1024, 8).capacity_lines(), 512);
        assert_eq!(Cache::new(8 * 1024 * 1024, 16).capacity_lines(), 131072);
    }

    #[test]
    fn hit_ratio_extremes() {
        let mut c = Cache::new(4096, 4);
        assert_eq!(c.stats().hit_ratio(), 1.0);
        c.access(1, false);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.fill(1, false);
        c.access(1, false);
        assert_eq!(c.stats().hit_ratio(), 0.5);
    }
}
