//! Interleaved execution of the simulated producer/consumer pair.
//!
//! Two logical threads stream `ops` items through a [`QueueModel`], mapped
//! onto simulated hardware by a [`SimPlacement`]:
//!
//! * `SameHt` — one hardware thread runs both: a single clock, operations
//!   strictly serialized (the real policy time-slices; with symmetrical
//!   producer/consumer work, alternation is the steady state).
//! * `SiblingHt` — two hardware threads of one core: two clocks advancing
//!   concurrently, one shared L1/L2.
//! * `OtherCore` — one hardware thread on each of two cores: two clocks,
//!   private L1/L2, shared L3. (`NoAffinity` behaves like this on the
//!   paper's hosts — §V-D: "other core and no affinity have almost the same
//!   behaviour" — so the engine offers the three distinct mappings.)
//!
//! The scheduler always advances the thread with the smaller local clock;
//! a thread whose work is unavailable (queue full/empty) stalls by a small
//! quantum, modelling the real back-off.

use crate::hierarchy::{Hierarchy, HierarchyConfig};
use crate::qmodel::{CellLayoutKind, MemAccess, QueueModel};
use crate::report::SimReport;

/// Thread-to-hardware mapping (§IV-B policies, collapsed as noted above).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPlacement {
    /// Producer and consumer share one hardware thread.
    SameHt,
    /// Producer and consumer on sibling hardware threads (one core).
    SiblingHt,
    /// Producer and consumer on different cores.
    OtherCore,
}

impl SimPlacement {
    /// Report label (paper legend names).
    pub fn name(self) -> &'static str {
        match self {
            SimPlacement::SameHt => "same HT",
            SimPlacement::SiblingHt => "sibling HT",
            SimPlacement::OtherCore => "other core",
        }
    }

    fn cores(self) -> (usize, usize) {
        match self {
            SimPlacement::SameHt | SimPlacement::SiblingHt => (0, 0),
            SimPlacement::OtherCore => (0, 1),
        }
    }
}

/// Parameters of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Queue capacity in entries (power of two).
    pub queue_size: u64,
    /// Cell layout (Fig. 4/5 use cache-aligned cells).
    pub layout: CellLayoutKind,
    /// Thread mapping.
    pub placement: SimPlacement,
    /// Items to stream through the queue.
    pub ops: u64,
    /// Whether the consumer claims ranks on a shared head (SPMC) or owns it
    /// (SPSC; the Fig. 4/5 configuration).
    pub shared_head: bool,
    /// Simulated machine.
    pub hierarchy: HierarchyConfig,
    /// Non-memory cycles per queue operation (loop/branch work).
    pub compute_cycles_per_op: u64,
    /// Retired instructions per queue operation, for the IPC proxy.
    pub instructions_per_op: u64,
    /// Cycles a thread stalls when its work is unavailable.
    pub stall_cycles: u64,
    /// Cycle multiplier applied to both threads under the `SiblingHt`
    /// mapping: two hardware threads share one core's issue ports, so each
    /// runs slower than it would alone (Intel's own guidance puts the
    /// per-thread slowdown around 1.3–1.5x; §IV-B: hardware threads "can
    /// increase core throughput ... by up to 30 percent" — i.e. two threads
    /// deliver ~1.3x one, not 2x).
    pub smt_factor: f64,
}

impl SimConfig {
    /// The Fig. 4/5 baseline: SPSC, padded cells, Skylake-like hierarchy.
    pub fn fig45(queue_size: u64, placement: SimPlacement) -> Self {
        Self {
            queue_size,
            layout: CellLayoutKind::Padded,
            placement,
            ops: 2_000_000,
            shared_head: false,
            hierarchy: HierarchyConfig::default(),
            compute_cycles_per_op: 10,
            instructions_per_op: 25,
            stall_cycles: 16,
            smt_factor: 1.45,
        }
    }
}

/// Runs the simulation and aggregates the report.
pub fn simulate_spsc(cfg: &SimConfig) -> SimReport {
    let mut hier = Hierarchy::new(&cfg.hierarchy);
    let mut queue = QueueModel::new(cfg.queue_size, cfg.layout, cfg.shared_head);
    let (pcore, ccore) = cfg.placement.cores();

    let mut produced = 0u64;
    let mut consumed = 0u64;
    let mut pclock = 0u64;
    let mut cclock = 0u64;
    let mut accesses: Vec<MemAccess> = Vec::with_capacity(4);
    let serialized = cfg.placement == SimPlacement::SameHt;

    let smt = if cfg.placement == SimPlacement::SiblingHt {
        cfg.smt_factor
    } else {
        1.0
    };
    let run = |hier: &mut Hierarchy, core: usize, accesses: &[MemAccess], write_clock: &mut u64| {
        let mut cycles = cfg.compute_cycles_per_op;
        for a in accesses {
            cycles += hier.access(core, a.line, a.write).cycles;
        }
        *write_clock += (cycles as f64 * smt) as u64;
    };

    while consumed < cfg.ops {
        // Decide who moves: the lagging clock (or alternation when
        // serialized on one hardware thread).
        let producer_turn = if serialized {
            // One pipeline: drain-then-fill in half-queue batches is what a
            // time-sliced pair converges to; strict alternation models the
            // same per-op cost while keeping occupancy low.
            produced < cfg.ops && !queue.is_full() && produced <= consumed
        } else {
            produced < cfg.ops && !queue.is_full() && pclock <= cclock
        };

        if producer_turn {
            accesses.clear();
            queue.enqueue_accesses(&mut accesses);
            run(&mut hier, pcore, &accesses, &mut pclock);
            produced += 1;
            if serialized {
                cclock = pclock;
            }
            continue;
        }

        // Consumer's move (or both stalled).
        if !queue.is_empty() {
            accesses.clear();
            queue.dequeue_accesses(&mut accesses);
            run(&mut hier, ccore, &accesses, &mut cclock);
            consumed += 1;
            if serialized {
                pclock = cclock;
            }
        } else if produced >= cfg.ops {
            unreachable!("consumed < ops but queue empty and production done");
        } else {
            // Consumer ahead of producer: stall.
            cclock += cfg.stall_cycles;
            if serialized {
                pclock = cclock;
            }
            // In the parallel mappings the producer may be the stalled one.
            if !serialized && pclock <= cclock && queue.is_full() {
                pclock += cfg.stall_cycles;
            }
        }
    }

    let elapsed = pclock.max(cclock).max(1);
    let l1p = hier.l1_stats(pcore);
    let l1c = hier.l1_stats(ccore);
    let (l1_hits, l1_total) = if pcore == ccore {
        (l1p.hits, l1p.hits + l1p.misses)
    } else {
        (
            l1p.hits + l1c.hits,
            l1p.hits + l1p.misses + l1c.hits + l1c.misses,
        )
    };
    let l2 = hier.l2_stats_total();
    let l3 = hier.l3_stats();
    let traffic = hier.traffic();
    let mem_bytes = traffic.mem_read_bytes + traffic.mem_write_bytes;
    let total_ops = produced + consumed;
    let instructions = total_ops * cfg.instructions_per_op;
    // IPC is per hardware thread, like the paper's counter readings: the
    // serialized mapping runs on one context, the parallel ones on two.
    let contexts = if serialized { 1 } else { 2 };

    SimReport {
        queue_size: cfg.queue_size,
        ops: cfg.ops,
        elapsed_cycles: elapsed,
        l1_hit_ratio: if l1_total == 0 {
            1.0
        } else {
            l1_hits as f64 / l1_total as f64
        },
        l2_hit_ratio: l2.hit_ratio(),
        l3_hit_ratio: l3.hit_ratio(),
        l3_misses: l3.misses,
        mem_bytes,
        mem_bytes_per_kcycle: mem_bytes as f64 / (elapsed as f64 / 1000.0),
        ipc: instructions as f64 / elapsed as f64 / contexts as f64,
        ops_per_kcycle: cfg.ops as f64 / (elapsed as f64 / 1000.0),
        invalidations: traffic.invalidations,
        remote_transfers: traffic.remote_transfers,
    }
}

/// Runs the SPMC configuration: one producer, `consumers` consumers that
/// claim ranks on the shared head. The producer maps to core 0; consumer
/// `i` maps to core `1 + (i mod (cores-1))` (own core while cores last).
///
/// This is the Figure 2 mechanism in simulation: with multiple consumers,
/// compact cells share lines, so one consumer's rank-reset invalidates its
/// neighbour's cached line — the false sharing the paper's "aligned"
/// configuration removes. The `placement` field of `cfg` is ignored.
pub fn simulate_spmc(cfg: &SimConfig, consumers: usize) -> SimReport {
    assert!(consumers >= 1);
    assert!(
        cfg.hierarchy.cores >= 2,
        "need a consumer core besides core 0"
    );
    let mut hier = Hierarchy::new(&cfg.hierarchy);
    let mut queue = QueueModel::new(cfg.queue_size, cfg.layout, true);

    let pcore = 0usize;
    let ccore = |i: usize| 1 + (i % (cfg.hierarchy.cores - 1));

    let mut produced = 0u64;
    let mut consumed = 0u64;
    let mut pclock = 0u64;
    let mut cclocks = vec![0u64; consumers];
    let mut accesses: Vec<MemAccess> = Vec::with_capacity(4);

    while consumed < cfg.ops {
        // Pick the laggard among producer and consumers.
        let min_cclock_idx = (0..consumers)
            .min_by_key(|&i| cclocks[i])
            .expect("at least one consumer");
        let producer_turn =
            produced < cfg.ops && !queue.is_full() && pclock <= cclocks[min_cclock_idx];

        if producer_turn {
            accesses.clear();
            queue.enqueue_accesses(&mut accesses);
            let mut cycles = cfg.compute_cycles_per_op;
            for a in &accesses {
                cycles += hier.access(pcore, a.line, a.write).cycles;
            }
            pclock += cycles;
            produced += 1;
            continue;
        }

        if !queue.is_empty() {
            accesses.clear();
            queue.dequeue_accesses(&mut accesses);
            let core = ccore(min_cclock_idx);
            let mut cycles = cfg.compute_cycles_per_op;
            for a in &accesses {
                cycles += hier.access(core, a.line, a.write).cycles;
            }
            cclocks[min_cclock_idx] += cycles;
            consumed += 1;
        } else {
            cclocks[min_cclock_idx] += cfg.stall_cycles;
        }
    }

    let elapsed = cclocks
        .iter()
        .copied()
        .chain(std::iter::once(pclock))
        .max()
        .unwrap()
        .max(1);
    let l2 = hier.l2_stats_total();
    let l3 = hier.l3_stats();
    let traffic = hier.traffic();
    let mem_bytes = traffic.mem_read_bytes + traffic.mem_write_bytes;
    let total_ops = produced + consumed;
    let instructions = total_ops * cfg.instructions_per_op;
    let contexts = 1 + consumers as u64;

    // Aggregate L1 over the cores in use.
    let mut l1_hits = 0;
    let mut l1_total = 0;
    for core in 0..cfg.hierarchy.cores {
        let s = hier.l1_stats(core);
        l1_hits += s.hits;
        l1_total += s.hits + s.misses;
    }

    SimReport {
        queue_size: cfg.queue_size,
        ops: cfg.ops,
        elapsed_cycles: elapsed,
        l1_hit_ratio: if l1_total == 0 {
            1.0
        } else {
            l1_hits as f64 / l1_total as f64
        },
        l2_hit_ratio: l2.hit_ratio(),
        l3_hit_ratio: l3.hit_ratio(),
        l3_misses: l3.misses,
        mem_bytes,
        mem_bytes_per_kcycle: mem_bytes as f64 / (elapsed as f64 / 1000.0),
        ipc: instructions as f64 / elapsed as f64 / contexts as f64,
        ops_per_kcycle: cfg.ops as f64 / (elapsed as f64 / 1000.0),
        invalidations: traffic.invalidations,
        remote_transfers: traffic.remote_transfers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(queue_size: u64, placement: SimPlacement) -> SimReport {
        let mut cfg = SimConfig::fig45(queue_size, placement);
        cfg.ops = 200_000;
        simulate_spsc(&cfg)
    }

    #[test]
    fn all_items_flow_through() {
        let r = quick(1024, SimPlacement::OtherCore);
        assert_eq!(r.ops, 200_000);
        assert!(r.elapsed_cycles > 0);
        assert!(r.ops_per_kcycle > 0.0);
    }

    #[test]
    fn small_queue_fits_cache_no_memory_pressure() {
        let r = quick(256, SimPlacement::SiblingHt);
        // 256 padded cells = 16 KiB: fits L1. After warm-up, nearly all
        // accesses hit L1; memory traffic is the one-time fill.
        assert!(r.l1_hit_ratio > 0.95, "l1 {}", r.l1_hit_ratio);
        assert!(
            r.mem_bytes < 64 * 2048,
            "mem bytes {} too high for a warm 16KiB working set",
            r.mem_bytes
        );
    }

    #[test]
    fn queue_beyond_l3_thrashes_memory() {
        // 2^18 padded cells = 16 MiB: twice the 8 MiB L3.
        let big = quick(1 << 18, SimPlacement::OtherCore);
        let small = quick(1 << 10, SimPlacement::OtherCore);
        assert!(
            big.mem_bytes > 10 * small.mem_bytes,
            "big {} vs small {}",
            big.mem_bytes,
            small.mem_bytes
        );
        assert!(big.l3_hit_ratio < small.l3_hit_ratio + 0.1);
        assert!(big.ops_per_kcycle < small.ops_per_kcycle);
    }

    #[test]
    fn sibling_ht_beats_other_core_on_small_queues() {
        // The paper's Fig. 6: with shared L1/L2, the pair communicates
        // through the core cache instead of bouncing lines over L3.
        let sib = quick(1 << 8, SimPlacement::SiblingHt);
        let other = quick(1 << 8, SimPlacement::OtherCore);
        assert!(
            sib.ops_per_kcycle > other.ops_per_kcycle,
            "sibling {} <= other {}",
            sib.ops_per_kcycle,
            other.ops_per_kcycle
        );
        assert!(sib.remote_transfers < other.remote_transfers);
    }

    #[test]
    fn other_core_produces_coherence_traffic() {
        let r = quick(1 << 8, SimPlacement::OtherCore);
        assert!(r.invalidations > 0 || r.remote_transfers > 0);
    }

    #[test]
    fn same_ht_serializes() {
        // One hardware thread cannot overlap producer and consumer work, so
        // its wall-clock is at least either parallel mapping's.
        let same = quick(1 << 12, SimPlacement::SameHt);
        let sib = quick(1 << 12, SimPlacement::SiblingHt);
        assert!(same.elapsed_cycles >= sib.elapsed_cycles);
    }

    #[test]
    fn spmc_multi_consumer_runs_and_conserves_items() {
        let mut cfg = SimConfig::fig45(1 << 10, SimPlacement::OtherCore);
        cfg.ops = 100_000;
        let r = simulate_spmc(&cfg, 3);
        assert_eq!(r.ops, 100_000);
        assert!(r.elapsed_cycles > 0);
    }

    #[test]
    fn padded_cells_reduce_false_sharing_with_many_consumers() {
        // Figure 2's mechanism: with 8 consumers, compact (shared-line)
        // cells draw more coherence invalidations than padded cells.
        let mut padded = SimConfig::fig45(1 << 10, SimPlacement::OtherCore);
        padded.ops = 100_000;
        let mut compact = padded.clone();
        compact.layout = crate::qmodel::CellLayoutKind::Compact;
        let rp = simulate_spmc(&padded, 8);
        let rc = simulate_spmc(&compact, 8);
        assert!(
            rc.invalidations > rp.invalidations,
            "compact {} !> padded {}",
            rc.invalidations,
            rp.invalidations
        );
    }

    #[test]
    fn spmc_head_line_contention_grows_with_consumers() {
        let mut cfg = SimConfig::fig45(1 << 10, SimPlacement::OtherCore);
        cfg.ops = 100_000;
        let one = simulate_spmc(&cfg, 1);
        let four = simulate_spmc(&cfg, 4);
        assert!(
            four.invalidations > one.invalidations,
            "4 consumers {} !> 1 consumer {}",
            four.invalidations,
            one.invalidations
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = quick(1 << 10, SimPlacement::OtherCore);
        let b = quick(1 << 10, SimPlacement::OtherCore);
        assert_eq!(a.elapsed_cycles, b.elapsed_cycles);
        assert_eq!(a.mem_bytes, b.mem_bytes);
        assert_eq!(a.l3_misses, b.l3_misses);
    }
}
