//! The simulated cache hierarchy: per-core L1/L2, shared inclusive L3,
//! MESI-style coherence between cores, and memory-traffic accounting.
//!
//! The default geometry models the paper's Skylake host (Xeon E3-1270 v5):
//! 32 KiB 8-way L1d and 256 KiB 4-way L2 per core (the paper explicitly
//! blames "eviction patterns in the 4-way associative L2" for one effect),
//! 8 MiB 16-way shared L3. Latencies are round numbers in the published
//! range for that part; the figures this feeds are about *shapes*, not
//! absolute cycles.

use crate::cache::{Cache, CacheStats, Lookup};

/// Access latencies and coherence penalties, in cycles.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// L1 hit.
    pub l1_hit: u64,
    /// L1 miss, L2 hit.
    pub l2_hit: u64,
    /// L2 miss, L3 hit (no remote copy involved).
    pub l3_hit: u64,
    /// L3 miss served from DRAM.
    pub memory: u64,
    /// Extra cost when the line is dirty in another core's private cache
    /// (snoop + cache-to-cache transfer).
    pub remote_transfer: u64,
    /// Extra cost to invalidate remote copies on a write.
    pub invalidate: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            l1_hit: 4,
            l2_hit: 12,
            l3_hit: 42,
            memory: 200,
            remote_transfer: 60,
            invalidate: 24,
        }
    }
}

/// Geometry of the simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// Number of simulated physical cores (cache domains); sibling hardware
    /// threads share a domain.
    pub cores: usize,
    /// L1 data cache size per core, bytes.
    pub l1_size: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L2 size per core, bytes.
    pub l2_size: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Shared L3 size, bytes.
    pub l3_size: usize,
    /// L3 associativity.
    pub l3_assoc: usize,
    /// Latency/penalty model.
    pub cost: CostModel,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self {
            cores: 4,
            l1_size: 32 * 1024,
            l1_assoc: 8,
            l2_size: 256 * 1024,
            l2_assoc: 4,
            l3_size: 8 * 1024 * 1024,
            l3_assoc: 16,
            cost: CostModel::default(),
        }
    }
}

/// Which level ultimately served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Own L1.
    L1,
    /// Own L2.
    L2,
    /// Shared L3 (no remote private copy involved).
    L3,
    /// Shared L3 plus a dirty cache-to-cache transfer from another core.
    RemoteCore,
    /// DRAM.
    Memory,
}

/// Outcome of one simulated access.
#[derive(Debug, Clone, Copy)]
pub struct Access {
    /// Cycles charged to the issuing hardware thread.
    pub cycles: u64,
    /// Serving level.
    pub served_by: ServedBy,
}

/// Coherence/memory-traffic counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrafficStats {
    /// Bytes read from DRAM (line fills).
    pub mem_read_bytes: u64,
    /// Bytes written back to DRAM (dirty L3 evictions).
    pub mem_write_bytes: u64,
    /// Remote copies invalidated by writes.
    pub invalidations: u64,
    /// Dirty cache-to-cache transfers.
    pub remote_transfers: u64,
}

/// The full simulated hierarchy.
pub struct Hierarchy {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    cost: CostModel,
    traffic: TrafficStats,
}

impl Hierarchy {
    /// Builds the hierarchy.
    pub fn new(cfg: &HierarchyConfig) -> Self {
        Self {
            l1: (0..cfg.cores)
                .map(|_| Cache::new(cfg.l1_size, cfg.l1_assoc))
                .collect(),
            l2: (0..cfg.cores)
                .map(|_| Cache::new(cfg.l2_size, cfg.l2_assoc))
                .collect(),
            l3: Cache::new(cfg.l3_size, cfg.l3_assoc),
            cost: cfg.cost,
            traffic: TrafficStats::default(),
        }
    }

    /// Performs one access to `line` from `core`. `write` marks the line
    /// modified and invalidates remote copies.
    pub fn access(&mut self, core: usize, line: u64, write: bool) -> Access {
        let mut cycles;
        let served_by;

        if self.l1[core].access(line, write) == Lookup::Hit {
            cycles = self.cost.l1_hit;
            served_by = ServedBy::L1;
        } else if self.l2[core].access(line, write) == Lookup::Hit {
            cycles = self.cost.l2_hit;
            served_by = ServedBy::L2;
            self.fill_l1(core, line, write);
        } else if self.l3.access(line, write) == Lookup::Hit {
            // Check other cores for a dirty private copy.
            let remote_dirty = self.steal_remote_dirty(core, line);
            cycles = self.cost.l3_hit;
            if remote_dirty {
                cycles += self.cost.remote_transfer;
                served_by = ServedBy::RemoteCore;
            } else {
                served_by = ServedBy::L3;
            }
            self.fill_l2(core, line, write);
            self.fill_l1(core, line, write);
        } else {
            // Inclusive L3: a miss here means no private cache holds the
            // line either (back-invalidation maintains that), so this is a
            // DRAM fill.
            cycles = self.cost.memory;
            served_by = ServedBy::Memory;
            self.traffic.mem_read_bytes += 64;
            self.fill_l3(line, write);
            self.fill_l2(core, line, write);
            self.fill_l1(core, line, write);
        }

        if write {
            cycles += self.invalidate_remotes(core, line);
        }
        Access { cycles, served_by }
    }

    /// Pulls a dirty copy out of any other core's private caches (read
    /// sharing): the data lands in L3 (dirty) and the remote copy becomes
    /// clean-shared. Returns whether a transfer happened.
    fn steal_remote_dirty(&mut self, core: usize, line: u64) -> bool {
        let mut transferred = false;
        for other in 0..self.l1.len() {
            if other == core {
                continue;
            }
            if self.l1[other].contains(line) || self.l2[other].contains(line) {
                self.l1[other].clean(line);
                self.l2[other].clean(line);
                // Conservatively treat any remote private copy as requiring
                // a snoop-forward; only count it once.
                if !transferred {
                    self.traffic.remote_transfers += 1;
                    transferred = true;
                }
                // The forwarded data is now newer than memory.
                self.l3.fill(line, true);
            }
        }
        transferred
    }

    /// Invalidates all remote private copies after a write; returns the
    /// cycle penalty (0 when no copy existed).
    fn invalidate_remotes(&mut self, core: usize, line: u64) -> u64 {
        let mut any = false;
        for other in 0..self.l1.len() {
            if other == core {
                continue;
            }
            if self.l1[other].contains(line) || self.l2[other].contains(line) {
                let d1 = self.l1[other].invalidate(line);
                let d2 = self.l2[other].invalidate(line);
                if d1 || d2 {
                    // Their dirty data is absorbed by L3 before we overwrite.
                    self.l3.fill(line, true);
                }
                any = true;
            }
        }
        if any {
            self.traffic.invalidations += 1;
            self.cost.invalidate
        } else {
            0
        }
    }

    fn fill_l1(&mut self, core: usize, line: u64, dirty: bool) {
        if let Some(ev) = self.l1[core].fill(line, dirty) {
            if ev.dirty {
                // Dirty L1 victim folds into L2 (non-exclusive hierarchy).
                self.l2[core].fill(ev.line, true);
            }
        }
    }

    fn fill_l2(&mut self, core: usize, line: u64, dirty: bool) {
        if let Some(ev) = self.l2[core].fill(line, dirty) {
            if ev.dirty {
                self.l3.fill(ev.line, true);
            }
        }
    }

    fn fill_l3(&mut self, line: u64, dirty: bool) {
        if let Some(ev) = self.l3.fill(line, dirty) {
            // Inclusive L3: evicting a line expels it from every private
            // cache; dirty private copies must reach memory.
            let mut dirty_any = ev.dirty;
            for core in 0..self.l1.len() {
                dirty_any |= self.l1[core].invalidate(ev.line);
                dirty_any |= self.l2[core].invalidate(ev.line);
            }
            if dirty_any {
                self.traffic.mem_write_bytes += 64;
            }
        }
    }

    /// Per-core L1 statistics.
    pub fn l1_stats(&self, core: usize) -> CacheStats {
        self.l1[core].stats()
    }

    /// Per-core L2 statistics.
    pub fn l2_stats(&self, core: usize) -> CacheStats {
        self.l2[core].stats()
    }

    /// Shared L3 statistics.
    pub fn l3_stats(&self) -> CacheStats {
        self.l3.stats()
    }

    /// Coherence and DRAM traffic counters.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic
    }

    /// Aggregated L2 stats over all cores (Fig. 4 reports one ratio).
    pub fn l2_stats_total(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.l2 {
            let s = c.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.writebacks += s.writebacks;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        Hierarchy::new(&HierarchyConfig {
            cores: 2,
            l1_size: 1024,
            l1_assoc: 2,
            l2_size: 4096,
            l2_assoc: 4,
            l3_size: 64 * 1024,
            l3_assoc: 8,
            cost: CostModel::default(),
        })
    }

    #[test]
    fn first_touch_is_memory_then_l1() {
        let mut h = small();
        let a = h.access(0, 100, false);
        assert_eq!(a.served_by, ServedBy::Memory);
        assert_eq!(a.cycles, CostModel::default().memory);
        let a = h.access(0, 100, false);
        assert_eq!(a.served_by, ServedBy::L1);
        assert_eq!(h.traffic().mem_read_bytes, 64);
    }

    #[test]
    fn cross_core_read_of_dirty_line_transfers() {
        let mut h = small();
        h.access(0, 7, true); // core 0 dirties the line
        let a = h.access(1, 7, false);
        assert_eq!(a.served_by, ServedBy::RemoteCore);
        assert_eq!(h.traffic().remote_transfers, 1);
        // A second read by core 1 is a local hit.
        assert_eq!(h.access(1, 7, false).served_by, ServedBy::L1);
    }

    #[test]
    fn write_invalidates_remote_copy() {
        let mut h = small();
        h.access(0, 9, false);
        h.access(1, 9, false);
        // Core 1 writes: core 0's copy must die.
        let a = h.access(1, 9, true);
        assert!(a.cycles >= CostModel::default().l1_hit + CostModel::default().invalidate);
        assert_eq!(h.traffic().invalidations, 1);
        // Core 0 reads again: not in its L1/L2 anymore.
        let a = h.access(0, 9, false);
        assert_ne!(a.served_by, ServedBy::L1);
        assert_ne!(a.served_by, ServedBy::L2);
    }

    #[test]
    fn working_set_larger_than_l3_hits_memory_repeatedly() {
        let mut h = small(); // L3 = 1024 lines
        let lines = 4096u64; // 4x the L3
        for _ in 0..3 {
            for l in 0..lines {
                h.access(0, l, false);
            }
        }
        // Steady-state passes must keep missing to DRAM.
        let s = h.l3_stats();
        assert!(
            s.hit_ratio() < 0.5,
            "L3 hit ratio {} unexpectedly high for 4x working set",
            s.hit_ratio()
        );
        assert!(h.traffic().mem_read_bytes > 64 * lines);
    }

    #[test]
    fn working_set_within_l1_stays_local() {
        let mut h = small(); // L1 = 16 lines
        for _ in 0..100 {
            for l in 0..8u64 {
                h.access(0, l, true);
            }
        }
        let s = h.l1_stats(0);
        assert!(s.hit_ratio() > 0.98, "hit ratio {}", s.hit_ratio());
        assert_eq!(h.traffic().mem_read_bytes, 64 * 8);
    }

    #[test]
    fn inclusive_l3_back_invalidates() {
        let mut h = small(); // L3: 64KiB 8-way = 128 sets... 1024 lines
                             // Fill far beyond L3 from core 0; early lines must vanish from L1/L2
                             // too (back-invalidation), so re-touching them goes to memory.
        for l in 0..4096u64 {
            h.access(0, l, false);
        }
        let a = h.access(0, 0, false);
        assert_eq!(a.served_by, ServedBy::Memory);
    }

    #[test]
    fn ping_pong_write_sharing_never_settles() {
        let mut h = small();
        for _ in 0..50 {
            h.access(0, 42, true);
            h.access(1, 42, true);
        }
        // Every write after the first invalidates the other side.
        assert!(h.traffic().invalidations >= 99 - 1);
    }
}
