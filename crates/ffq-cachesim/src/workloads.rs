//! Synthetic memory workloads that validate the cache model against
//! textbook behaviours.
//!
//! The queue-trace results (Figures 4–6) are only as credible as the cache
//! model under them, so this module pins the model to effects with known
//! ground truth: scan locality, LRU's sequential-eviction pathology,
//! working-set knees, and stride behaviour. The tests here are the model's
//! regression battery; the functions are also usable from benches to
//! characterize modified configurations.

use crate::hierarchy::Hierarchy;

/// A deterministic synthetic access pattern.
#[derive(Debug, Clone, Copy)]
pub enum Workload {
    /// `passes` sweeps over `lines` consecutive lines.
    SequentialScan {
        /// Distinct lines touched per pass.
        lines: u64,
        /// Number of full sweeps.
        passes: u32,
    },
    /// `accesses` loads at xorshift-pseudo-random lines in `[0, lines)`.
    UniformRandom {
        /// Address-space size in lines.
        lines: u64,
        /// Total accesses.
        accesses: u64,
        /// PRNG seed.
        seed: u64,
    },
    /// `passes` sweeps touching every `stride`-th line in `[0, lines)`.
    Strided {
        /// Address-space size in lines.
        lines: u64,
        /// Distance between touched lines.
        stride: u64,
        /// Number of sweeps.
        passes: u32,
    },
}

/// Outcome of a workload run on one core.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadResult {
    /// Accesses issued.
    pub accesses: u64,
    /// Total cycles charged.
    pub cycles: u64,
    /// L1 hit ratio over the run.
    pub l1_hit_ratio: f64,
    /// Bytes that moved to/from DRAM.
    pub mem_bytes: u64,
}

/// Runs `workload` on `core`, read-only accesses.
pub fn run_workload(hier: &mut Hierarchy, core: usize, workload: Workload) -> WorkloadResult {
    let mut cycles = 0u64;
    let mut accesses = 0u64;
    let mut touch = |hier: &mut Hierarchy, line: u64| {
        cycles += hier.access(core, line, false).cycles;
        accesses += 1;
    };
    match workload {
        Workload::SequentialScan { lines, passes } => {
            for _ in 0..passes {
                for l in 0..lines {
                    touch(hier, l);
                }
            }
        }
        Workload::UniformRandom {
            lines,
            accesses: n,
            seed,
        } => {
            let mut state = seed | 1;
            for _ in 0..n {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                touch(hier, state % lines);
            }
        }
        Workload::Strided {
            lines,
            stride,
            passes,
        } => {
            for _ in 0..passes {
                let mut l = 0;
                while l < lines {
                    touch(hier, l);
                    l += stride;
                }
            }
        }
    }
    let l1 = hier.l1_stats(core);
    let traffic = hier.traffic();
    WorkloadResult {
        accesses,
        cycles,
        l1_hit_ratio: l1.hit_ratio(),
        mem_bytes: traffic.mem_read_bytes + traffic.mem_write_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;

    fn skylake() -> Hierarchy {
        Hierarchy::new(&HierarchyConfig::default())
    }

    /// L1 is 512 lines (32 KiB): a 256-line scan repeated is all-hit after
    /// the cold pass.
    #[test]
    fn resident_scan_hits_after_warmup() {
        let mut h = skylake();
        let r = run_workload(
            &mut h,
            0,
            Workload::SequentialScan {
                lines: 256,
                passes: 20,
            },
        );
        // 256 cold misses out of 5120 accesses => >= 95% hits.
        assert!(r.l1_hit_ratio > 0.94, "hit ratio {}", r.l1_hit_ratio);
        assert_eq!(r.mem_bytes, 256 * 64);
    }

    /// The classic LRU pathology: cyclically scanning one more line than
    /// the cache holds evicts each line just before its reuse — every
    /// access misses in steady state.
    #[test]
    fn lru_sequential_eviction_pathology() {
        let mut h = skylake();
        // 513 sets*ways... L1 = 512 lines; scan 1024 lines cyclically: the
        // reuse distance (1024) exceeds capacity, so L1 hits ~0 after the
        // first pass (they hit in L2 instead, which holds 4096 lines).
        let r = run_workload(
            &mut h,
            0,
            Workload::SequentialScan {
                lines: 1024,
                passes: 10,
            },
        );
        assert!(r.l1_hit_ratio < 0.05, "hit ratio {}", r.l1_hit_ratio);
        // But L2 absorbs it: memory sees only the cold fills.
        assert_eq!(r.mem_bytes, 1024 * 64);
    }

    /// Random accesses over 4x the L3 mostly miss everywhere.
    #[test]
    fn random_over_llc_thrashes() {
        let mut h = skylake();
        let llc_lines = 8 * 1024 * 1024 / 64;
        let r = run_workload(
            &mut h,
            0,
            Workload::UniformRandom {
                lines: 4 * llc_lines as u64,
                accesses: 200_000,
                seed: 42,
            },
        );
        assert!(r.l1_hit_ratio < 0.15, "hit ratio {}", r.l1_hit_ratio);
        // The vast majority of accesses pull a fresh line from DRAM.
        assert!(r.mem_bytes > r.accesses * 64 / 2);
    }

    /// Random accesses within half the L1 are nearly free.
    #[test]
    fn random_within_l1_is_cheap() {
        let mut h = skylake();
        let r = run_workload(
            &mut h,
            0,
            Workload::UniformRandom {
                lines: 256,
                accesses: 100_000,
                seed: 7,
            },
        );
        assert!(r.l1_hit_ratio > 0.99, "hit ratio {}", r.l1_hit_ratio);
    }

    /// Power-of-two strides are the textbook conflict-miss generator: a
    /// stride-16 scan maps its 256-line footprint onto only 4 of L1's 64
    /// sets (4 x 8 ways = 32 resident lines), so L1 LRU-cycles and misses
    /// ~everything even though the footprint is 1/2 of L1's capacity. The
    /// wider-set L2 (1024 sets) absorbs it: memory sees only cold fills.
    #[test]
    fn strided_scan_conflict_misses() {
        let mut h = skylake();
        let r = run_workload(
            &mut h,
            0,
            Workload::Strided {
                lines: 4096,
                stride: 16,
                passes: 10,
            },
        );
        assert_eq!(r.accesses, 10 * 4096 / 16);
        assert!(
            r.l1_hit_ratio < 0.05,
            "conflict misses expected, hit ratio {}",
            r.l1_hit_ratio
        );
        assert_eq!(r.mem_bytes, 256 * 64, "L2 must absorb the conflicts");
    }

    /// Cycle accounting is monotone in miss depth: the same access count
    /// with a thrashing footprint costs more cycles.
    #[test]
    fn cycles_scale_with_miss_depth() {
        let mut cheap_h = skylake();
        let cheap = run_workload(
            &mut cheap_h,
            0,
            Workload::UniformRandom {
                lines: 128,
                accesses: 50_000,
                seed: 1,
            },
        );
        let mut dear_h = skylake();
        let dear = run_workload(
            &mut dear_h,
            0,
            Workload::UniformRandom {
                lines: 1_000_000,
                accesses: 50_000,
                seed: 1,
            },
        );
        assert!(dear.cycles > 10 * cheap.cycles);
    }
}
