//! Topology parsing against synthetic sysfs trees — the shapes of the
//! paper's three servers, reconstructed on disk.

use std::fs;
use std::path::{Path, PathBuf};

use ffq_affinity::{Placement, Topology};

struct Fixture {
    root: PathBuf,
}

impl Fixture {
    /// Builds `<tmp>/cpuN/topology/{core_id,physical_package_id}` plus the
    /// `online` file for the given (cpu, core, package) records.
    fn new(name: &str, cpus: &[(usize, usize, usize)]) -> Self {
        let root = std::env::temp_dir().join(format!("ffq-sysfs-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        let max = cpus.iter().map(|&(id, _, _)| id).max().unwrap();
        fs::write(root.join("online"), format!("0-{max}\n")).unwrap();
        for &(id, core, pkg) in cpus {
            let topo = root.join(format!("cpu{id}/topology"));
            fs::create_dir_all(&topo).unwrap();
            fs::write(topo.join("core_id"), format!("{core}\n")).unwrap();
            fs::write(topo.join("physical_package_id"), format!("{pkg}\n")).unwrap();
        }
        Self { root }
    }

    fn path(&self) -> &Path {
        &self.root
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// The paper's Skylake: 4 cores, 2 hardware threads each, Linux-style
/// enumeration (cpu0–3 first threads, cpu4–7 siblings).
fn skylake_records() -> Vec<(usize, usize, usize)> {
    (0..8).map(|id| (id, id % 4, 0)).collect()
}

#[test]
fn parses_skylake_shaped_tree() {
    let fx = Fixture::new("skylake", &skylake_records());
    let topo = Topology::from_sysfs(fx.path()).unwrap();
    assert_eq!(topo.num_cpus(), 8);
    assert_eq!(topo.num_cores(), 4);
    assert_eq!(topo.sibling_of(1), Some(5));
    assert_eq!(topo.sibling_of(6), Some(2));
}

#[test]
fn parses_numa_haswell_shaped_tree() {
    // 2 sockets x 14 cores x 2 threads = 56 CPUs.
    let mut records = Vec::new();
    for id in 0..56 {
        let pkg = (id / 14) % 2;
        let core = id % 14;
        records.push((id, core, pkg));
    }
    let fx = Fixture::new("haswell", &records);
    let topo = Topology::from_sysfs(fx.path()).unwrap();
    assert_eq!(topo.num_cpus(), 56);
    assert_eq!(topo.num_cores(), 28);
    // Cores with the same core_id on different packages are distinct.
    assert_ne!(topo.sibling_of(0), Some(14));
}

#[test]
fn placement_policies_on_fixture_topology() {
    let fx = Fixture::new("placement", &skylake_records());
    let topo = Topology::from_sysfs(fx.path()).unwrap();
    for policy in Placement::ALL {
        assert!(policy.is_supported(&topo), "{}", policy.name());
    }
    let a = Placement::SiblingHt.assign(&topo, 2).unwrap();
    assert_eq!(topo.sibling_of(a.producer_cpu), Some(a.consumer_cpu));
    let b = Placement::OtherCore.assign(&topo, 0).unwrap();
    assert_ne!(b.producer_cpu, b.consumer_cpu);
}

#[test]
fn missing_topology_dir_degrades_to_one_core_per_cpu() {
    let root = std::env::temp_dir().join(format!("ffq-sysfs-bare-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("cpu0")).unwrap();
    fs::create_dir_all(root.join("cpu1")).unwrap();
    fs::write(root.join("online"), "0-1\n").unwrap();
    let topo = Topology::from_sysfs(&root).unwrap();
    assert_eq!(topo.num_cpus(), 2);
    assert_eq!(topo.num_cores(), 2);
    assert_eq!(topo.sibling_of(0), None);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn rejects_corrupt_core_id() {
    let fx = Fixture::new("corrupt", &[(0, 0, 0)]);
    fs::write(fx.path().join("cpu0/topology/core_id"), "banana\n").unwrap();
    assert!(Topology::from_sysfs(fx.path()).is_err());
}
