//! CPU topology discovery.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// One logical CPU (hardware thread).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    /// Logical CPU number (the `cpuN` index).
    pub id: usize,
    /// Physical core this hardware thread belongs to.
    pub core_id: usize,
    /// Package/socket of the core.
    pub package_id: usize,
}

/// The machine's CPU topology: logical CPUs grouped into physical cores.
#[derive(Debug, Clone)]
pub struct Topology {
    cpus: Vec<Cpu>,
    /// (package, core) -> logical CPUs, in discovery order.
    cores: BTreeMap<(usize, usize), Vec<usize>>,
}

impl Topology {
    /// Reads the topology from `/sys/devices/system/cpu`.
    pub fn detect() -> io::Result<Self> {
        Self::from_sysfs(Path::new("/sys/devices/system/cpu"))
    }

    /// Reads a sysfs-style tree rooted at `base` (testable entry point).
    pub fn from_sysfs(base: &Path) -> io::Result<Self> {
        let online = fs::read_to_string(base.join("online"))?;
        let ids = parse_cpu_list(online.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let mut cpus = Vec::with_capacity(ids.len());
        for id in ids {
            let topo = base.join(format!("cpu{id}/topology"));
            let read_id = |name: &str| -> io::Result<usize> {
                let s = fs::read_to_string(topo.join(name))?;
                s.trim()
                    .parse()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {e}")))
            };
            // Some minimal containers expose cpuN without a topology dir;
            // treat each such CPU as its own core on package 0.
            let (core_id, package_id) = if topo.exists() {
                (
                    read_id("core_id")?,
                    read_id("physical_package_id").unwrap_or(0),
                )
            } else {
                (id, 0)
            };
            cpus.push(Cpu {
                id,
                core_id,
                package_id,
            });
        }
        Ok(Self::from_cpus(cpus))
    }

    /// Builds a topology from explicit CPU records (tests / modelling).
    pub fn from_cpus(cpus: Vec<Cpu>) -> Self {
        let mut cores: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for cpu in &cpus {
            cores
                .entry((cpu.package_id, cpu.core_id))
                .or_default()
                .push(cpu.id);
        }
        Self { cpus, cores }
    }

    /// A synthetic topology with `packages` sockets × `cores` cores ×
    /// `threads` hardware threads, using the common Linux enumeration where
    /// all first threads come before all second threads (the paper's
    /// Skylake host is `smt_first(1, 4, 2)`: CPUs 0–3 then siblings 4–7).
    pub fn smt_first(packages: usize, cores: usize, threads: usize) -> Self {
        let mut cpus = Vec::new();
        for t in 0..threads {
            for p in 0..packages {
                for c in 0..cores {
                    cpus.push(Cpu {
                        id: t * packages * cores + p * cores + c,
                        core_id: c,
                        package_id: p,
                    });
                }
            }
        }
        Self::from_cpus(cpus)
    }

    /// Number of logical CPUs.
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Number of physical cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// All logical CPUs.
    pub fn cpus(&self) -> &[Cpu] {
        &self.cpus
    }

    /// Logical CPUs of each core, iterated in (package, core) order.
    pub fn cores(&self) -> impl Iterator<Item = &[usize]> {
        self.cores.values().map(|v| v.as_slice())
    }

    /// The `n`-th physical core's logical CPUs.
    pub fn core(&self, n: usize) -> Option<&[usize]> {
        self.cores.values().nth(n).map(|v| v.as_slice())
    }

    /// The sibling hardware thread sharing `cpu`'s core, if SMT is present.
    pub fn sibling_of(&self, cpu: usize) -> Option<usize> {
        let rec = self.cpus.iter().find(|c| c.id == cpu)?;
        self.cores
            .get(&(rec.package_id, rec.core_id))?
            .iter()
            .copied()
            .find(|&c| c != cpu)
    }
}

/// Parses the kernel's CPU list syntax: `"0-3,5,7-8"` → `[0,1,2,3,5,7,8]`.
pub fn parse_cpu_list(s: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    if s.trim().is_empty() {
        return Ok(out);
    }
    for part in s.trim().split(',') {
        let part = part.trim();
        match part.split_once('-') {
            Some((a, b)) => {
                let a: usize = a.trim().parse().map_err(|e| format!("{part:?}: {e}"))?;
                let b: usize = b.trim().parse().map_err(|e| format!("{part:?}: {e}"))?;
                if a > b {
                    return Err(format!("descending range {part:?}"));
                }
                out.extend(a..=b);
            }
            None => out.push(part.parse().map_err(|e| format!("{part:?}: {e}"))?),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_and_ranges() {
        assert_eq!(parse_cpu_list("0").unwrap(), vec![0]);
        assert_eq!(parse_cpu_list("0-3").unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(parse_cpu_list("0-2,5,7-8").unwrap(), vec![0, 1, 2, 5, 7, 8]);
        assert_eq!(parse_cpu_list(" 1 , 3-4 ").unwrap(), vec![1, 3, 4]);
        assert_eq!(parse_cpu_list("").unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_cpu_list("a").is_err());
        assert!(parse_cpu_list("3-1").is_err());
        assert!(parse_cpu_list("1-").is_err());
    }

    #[test]
    fn skylake_model_shape() {
        // The paper's Skylake: 4 cores, 8 hardware threads.
        let t = Topology::smt_first(1, 4, 2);
        assert_eq!(t.num_cpus(), 8);
        assert_eq!(t.num_cores(), 4);
        assert_eq!(t.sibling_of(0), Some(4));
        assert_eq!(t.sibling_of(4), Some(0));
        assert_eq!(t.sibling_of(3), Some(7));
        assert_eq!(t.core(0), Some(&[0usize, 4][..]));
    }

    #[test]
    fn power8_model_shape() {
        // The paper's P8: 10 cores × 8 threads.
        let t = Topology::smt_first(1, 10, 8);
        assert_eq!(t.num_cpus(), 80);
        assert_eq!(t.num_cores(), 10);
        assert_eq!(t.core(0).unwrap().len(), 8);
    }

    #[test]
    fn single_cpu_has_no_sibling() {
        let t = Topology::smt_first(1, 1, 1);
        assert_eq!(t.num_cpus(), 1);
        assert_eq!(t.sibling_of(0), None);
    }

    #[test]
    fn detect_works_on_this_machine() {
        let t = Topology::detect().expect("sysfs readable");
        assert!(t.num_cpus() >= 1);
        assert!(t.num_cores() >= 1);
        assert!(t.num_cores() <= t.num_cpus());
    }

    #[test]
    fn numa_haswell_model() {
        // The paper's Haswell: 2 sockets × 14 cores × 2 threads = 56 CPUs.
        let t = Topology::smt_first(2, 14, 2);
        assert_eq!(t.num_cpus(), 56);
        assert_eq!(t.num_cores(), 28);
    }
}
