//! CPU topology and thread placement for the FFQ reproduction.
//!
//! §IV-B of the paper: "a complementary approach to maximizing performance
//! consists of optimizing the thread placement on cores", evaluated in
//! §V-D/E with four policies — producer and consumer on the *same hardware
//! thread*, on *sibling hardware threads* of one core, on *different cores*,
//! or left to the OS scheduler (*no affinity*).
//!
//! This crate discovers the machine topology from `/sys/devices/system/cpu`
//! (with a synthetic constructor for tests and for modelling the paper's
//! Skylake/Haswell/POWER8 hosts) and turns a [`Placement`] policy into
//! concrete CPU pinning via `sched_setaffinity(2)`. On machines too small
//! for a policy — this repository's CI container has a single hardware
//! thread — assignment degrades explicitly rather than silently: see
//! [`Placement::assign`].

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod pin;
mod placement;
mod topology;

pub use pin::{current_affinity, pin_to_cpu, pin_to_cpus};
pub use placement::{PairAssignment, Placement};
pub use topology::{parse_cpu_list, Topology};
