//! Thread pinning via `sched_setaffinity(2)`.

use std::io;

/// Pins the calling thread to exactly `cpu`.
pub fn pin_to_cpu(cpu: usize) -> io::Result<()> {
    pin_to_cpus(&[cpu])
}

/// Pins the calling thread to the given CPU set.
///
/// An empty set is rejected by the kernel; callers expressing "no affinity"
/// should simply not call this.
pub fn pin_to_cpus(cpus: &[usize]) -> io::Result<()> {
    if cpus.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty CPU set"));
    }
    // SAFETY: cpu_set_t is plain-old-data; CPU_ZERO/CPU_SET only touch it.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        for &cpu in cpus {
            if cpu >= libc::CPU_SETSIZE as usize {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("cpu {cpu} beyond CPU_SETSIZE"),
                ));
            }
            libc::CPU_SET(cpu, &mut set);
        }
        // pid 0 = the calling thread.
        if libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) != 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Returns the CPUs the calling thread may currently run on.
pub fn current_affinity() -> io::Result<Vec<usize>> {
    // SAFETY: as above; sched_getaffinity fills the set.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        if libc::sched_getaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &mut set) != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((0..libc::CPU_SETSIZE as usize)
            .filter(|&cpu| libc::CPU_ISSET(cpu, &set))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_affinity_nonempty() {
        let cpus = current_affinity().unwrap();
        assert!(!cpus.is_empty());
    }

    #[test]
    fn pin_to_first_available_cpu_roundtrips() {
        // Run in a scratch thread so the test runner's thread is unaffected.
        std::thread::spawn(|| {
            let avail = current_affinity().unwrap();
            let target = avail[0];
            pin_to_cpu(target).unwrap();
            assert_eq!(current_affinity().unwrap(), vec![target]);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn empty_set_rejected() {
        assert!(pin_to_cpus(&[]).is_err());
    }

    #[test]
    fn out_of_range_cpu_rejected() {
        assert!(pin_to_cpu(libc::CPU_SETSIZE as usize + 1).is_err());
    }
}
