//! The paper's four thread-placement policies (§IV-B, evaluated in §V-D/E).

use crate::topology::Topology;

/// Where a producer/consumer pair should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Producer and consumers share one hardware thread (time-sliced on one
    /// pipeline; the paper's best IPC for medium queue sizes).
    SameHt,
    /// Producer on one hardware thread, consumers on the sibling thread of
    /// the same core (shared L1/L2; the paper's best throughput for small
    /// and large queues).
    SiblingHt,
    /// Producer and consumers on different physical cores of one socket
    /// (communication through L3).
    OtherCore,
    /// No pinning: the OS scheduler decides (behaves like `OtherCore` on the
    /// paper's Linux hosts).
    NoAffinity,
}

impl Placement {
    /// All four policies, in the paper's presentation order.
    pub const ALL: [Placement; 4] = [
        Placement::SameHt,
        Placement::SiblingHt,
        Placement::OtherCore,
        Placement::NoAffinity,
    ];

    /// Label used in benchmark reports (matches the paper's legends).
    pub fn name(self) -> &'static str {
        match self {
            Placement::SameHt => "same HT",
            Placement::SiblingHt => "sibling HT",
            Placement::OtherCore => "other core",
            Placement::NoAffinity => "no affinity",
        }
    }

    /// CPU assignment for the `pair`-th producer/consumer pair on `topo`.
    ///
    /// Returns `None` when the policy needs topology the machine lacks
    /// (e.g. `SiblingHt` without SMT, `OtherCore` on one core) or when the
    /// policy is [`NoAffinity`](Placement::NoAffinity) — in all such cases
    /// the caller should leave scheduling to the OS and report which policy
    /// actually took effect. Pairs beyond the core count wrap around, the
    /// same oversubscription rule the paper uses for its up-to-8-producer
    /// runs on 4 cores.
    pub fn assign(self, topo: &Topology, pair: usize) -> Option<PairAssignment> {
        match self {
            Placement::NoAffinity => None,
            Placement::SameHt => {
                let core = topo.core(pair % topo.num_cores())?;
                let cpu = *core.first()?;
                Some(PairAssignment {
                    producer_cpu: cpu,
                    consumer_cpu: cpu,
                })
            }
            Placement::SiblingHt => {
                let core = topo.core(pair % topo.num_cores())?;
                let producer = *core.first()?;
                let consumer = topo.sibling_of(producer)?;
                Some(PairAssignment {
                    producer_cpu: producer,
                    consumer_cpu: consumer,
                })
            }
            Placement::OtherCore => {
                let n = topo.num_cores();
                if n < 2 {
                    return None;
                }
                // Pair i: producer on core 2i, consumers on core 2i+1
                // (wrapping), so distinct pairs interleave across cores.
                let producer = *topo.core((2 * pair) % n)?.first()?;
                let consumer = *topo.core((2 * pair + 1) % n)?.first()?;
                Some(PairAssignment {
                    producer_cpu: producer,
                    consumer_cpu: consumer,
                })
            }
        }
    }

    /// Whether `topo` can express this policy at all.
    pub fn is_supported(self, topo: &Topology) -> bool {
        match self {
            Placement::NoAffinity => true,
            Placement::SameHt => topo.num_cpus() >= 1,
            Placement::SiblingHt => topo
                .sibling_of(topo.core(0).and_then(|c| c.first().copied()).unwrap_or(0))
                .is_some(),
            Placement::OtherCore => topo.num_cores() >= 2,
        }
    }
}

/// Concrete CPUs for one producer/consumer pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairAssignment {
    /// CPU the producer thread pins to.
    pub producer_cpu: usize,
    /// CPU the pair's consumer thread(s) pin to.
    pub consumer_cpu: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skylake() -> Topology {
        Topology::smt_first(1, 4, 2)
    }

    #[test]
    fn same_ht_shares_one_cpu() {
        let a = Placement::SameHt.assign(&skylake(), 0).unwrap();
        assert_eq!(a.producer_cpu, a.consumer_cpu);
    }

    #[test]
    fn sibling_ht_uses_one_core_two_threads() {
        let t = skylake();
        let a = Placement::SiblingHt.assign(&t, 0).unwrap();
        assert_ne!(a.producer_cpu, a.consumer_cpu);
        assert_eq!(t.sibling_of(a.producer_cpu), Some(a.consumer_cpu));
    }

    #[test]
    fn other_core_uses_distinct_cores() {
        let t = skylake();
        let a = Placement::OtherCore.assign(&t, 0).unwrap();
        // CPUs 0 and 4 share core 0 in this model; other-core must not pick
        // a sibling pair.
        assert_ne!(t.sibling_of(a.producer_cpu), Some(a.consumer_cpu));
        assert_ne!(a.producer_cpu, a.consumer_cpu);
    }

    #[test]
    fn no_affinity_assigns_nothing() {
        assert_eq!(Placement::NoAffinity.assign(&skylake(), 0), None);
        assert!(Placement::NoAffinity.is_supported(&skylake()));
    }

    #[test]
    fn pairs_wrap_across_cores() {
        let t = skylake();
        let a0 = Placement::SameHt.assign(&t, 0).unwrap();
        let a4 = Placement::SameHt.assign(&t, 4).unwrap();
        assert_eq!(a0, a4, "4 cores: pair 4 wraps to core 0");
        let a1 = Placement::SameHt.assign(&t, 1).unwrap();
        assert_ne!(a0, a1);
    }

    #[test]
    fn degradation_on_tiny_machines() {
        let single = Topology::smt_first(1, 1, 1);
        assert!(Placement::SiblingHt.assign(&single, 0).is_none());
        assert!(!Placement::SiblingHt.is_supported(&single));
        assert!(Placement::OtherCore.assign(&single, 0).is_none());
        assert!(!Placement::OtherCore.is_supported(&single));
        // SameHt still expressible: everything on the only CPU.
        assert!(Placement::SameHt.assign(&single, 0).is_some());
    }

    #[test]
    fn smt4_machines_supported() {
        // POWER8-style SMT8: sibling = some other thread of the core.
        let t = Topology::smt_first(1, 10, 8);
        let a = Placement::SiblingHt.assign(&t, 3).unwrap();
        assert_ne!(a.producer_cpu, a.consumer_cpu);
    }
}
