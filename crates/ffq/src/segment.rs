//! One link of the unbounded tier: a fixed-capacity FFQ ring plus the
//! fields that chain it into a lock-free segment list.
//!
//! A [`Segment`] is exactly the data a bounded queue owns — a
//! [`QueueState`] counter block and a cell array — with three additions
//! that make it a list node:
//!
//! * `next` — the forward link. Written once per lifetime (null → successor)
//!   by the roll that seals the segment, *before* the seal is made visible,
//!   so any handle that observes the seal also observes the link.
//! * `seq` — the segment's *era*, a value from the queue-wide monotone
//!   counter, stamped at (re)allocation. The epoch reclamation protocol
//!   ([`ffq_sync::epoch`]) compares eras, never pointers, so a recycled
//!   segment can never be confused with its previous life (no ABA).
//! * `sealed_tail` — `i64::MAX` while the segment accepts enqueues; the
//!   final tail value once sealed. Consumers prune claimed ranks at or past
//!   it (those can never be published here) and advance once the head
//!   catches up to it.
//!
//! The ring protocol itself is untouched: handles attach the ordinary
//! [`crate::raw`] engines to [`Segment::raw`]'s view. Segments are fixed to
//! the default layout ([`PaddedCell`] + [`LinearMap`]) — the unbounded tier
//! trades layout genericity for a small, recyclable allocation unit.

use core::ptr;

use ffq_sync::atomic::{AtomicI64, AtomicPtr, AtomicU64, Ordering};

use crate::cell::{CellSlot, PaddedCell, GAP_NONE, RANK_FREE};
use crate::layout::LinearMap;
use crate::raw::{QueueState, RawQueue};

/// The tail value of a segment that is still open to enqueues.
pub(crate) const SEG_OPEN: i64 = i64::MAX;

/// One fixed-capacity ring in the unbounded tier's segment list.
///
/// Heap-only and always handled through raw pointers once shared: the
/// control block ([`crate::unbounded`]) owns every allocation and frees a
/// segment only after the epoch protocol proves no handle can still touch
/// it.
pub(crate) struct Segment<T: Send> {
    state: QueueState,
    cells: Box<[PaddedCell<T>]>,
    /// Forward link; null while this is the newest segment.
    next: AtomicPtr<Segment<T>>,
    /// Era stamped at (re)allocation; strictly increasing across the queue.
    seq: AtomicU64,
    /// Final tail once sealed; [`SEG_OPEN`] while enqueues may still land.
    sealed_tail: AtomicI64,
}

impl<T: Send> Segment<T> {
    /// Allocates a fresh open segment of `1 << cap_log2` cells with era
    /// `seq`. Inner handle counts start at one producer and one consumer:
    /// the *outer* counts live in the unbounded control block, and the
    /// inner producer count doubles as the seal flag (0 = sealed).
    pub(crate) fn boxed(cap_log2: u32, seq: u64) -> Box<Self> {
        Box::new(Self {
            state: QueueState::new(cap_log2, 1, 1),
            cells: (0..1usize << cap_log2)
                .map(|_| CellSlot::<T>::empty())
                .collect(),
            next: AtomicPtr::new(ptr::null_mut()),
            seq: AtomicU64::new(seq),
            sealed_tail: AtomicI64::new(SEG_OPEN),
        })
    }

    /// A raw view over this segment's ring, for attaching the ordinary
    /// handle engines.
    ///
    /// Valid while the segment is alive and not moved — the control block
    /// guarantees both (segments live behind stable heap pointers until
    /// proven quiescent).
    pub(crate) fn raw(&self) -> RawQueue<T, PaddedCell<T>, LinearMap> {
        // SAFETY: state and cells are initialized and live inside this
        // heap allocation, which the epoch protocol keeps alive for as long
        // as any handle can reach the view.
        unsafe { RawQueue::from_raw(&self.state, self.cells.as_ptr()) }
    }

    /// The shared counter block.
    #[inline(always)]
    pub(crate) fn state(&self) -> &QueueState {
        &self.state
    }

    /// Capacity of the ring.
    #[inline(always)]
    pub(crate) fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// The forward link.
    #[inline(always)]
    pub(crate) fn next(&self) -> &AtomicPtr<Segment<T>> {
        &self.next
    }

    /// This segment's era.
    #[inline(always)]
    pub(crate) fn seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The seal boundary: `Some(final_tail)` once sealed, `None` while
    /// open. Acquire — a consumer acting on the boundary also sees every
    /// rank resolution the sealer ordered before it.
    #[inline]
    pub(crate) fn sealed_tail(&self) -> Option<i64> {
        match self.sealed_tail.load(Ordering::Acquire) {
            SEG_OPEN => None,
            t => Some(t),
        }
    }

    /// Publishes the seal boundary. Release: pairs with
    /// [`sealed_tail`](Self::sealed_tail)'s Acquire.
    #[inline]
    pub(crate) fn set_sealed_tail(&self, tail: i64) {
        debug_assert!(tail != SEG_OPEN);
        self.sealed_tail.store(tail, Ordering::Release);
    }

    /// Resets a quiescent segment for reuse under era `seq`: drops any
    /// payload a detached consumer forfeited, frees every cell, zeroes the
    /// counters, reopens the seal, clears the link.
    ///
    /// Caller must hold the only reference (the segment came off the
    /// freelist, where only provably unreachable segments go), so plain
    /// stores suffice — the Release that makes the reset visible is the
    /// link store that puts the segment back into the list.
    pub(crate) fn recycle(&self, seq: u64) {
        for cell in self.cells.iter() {
            let words = cell.words();
            if words.load_lo(Ordering::Relaxed) >= 0 {
                // SAFETY: rank >= 0 means a completed enqueue nobody
                // consumed; quiescence makes us the unique owner.
                unsafe { (*cell.data()).assume_init_drop() };
            }
            words.store_lo_unpaired(RANK_FREE, Ordering::Relaxed);
            words.store_hi_unpaired(GAP_NONE, Ordering::Relaxed);
        }
        self.state.head().store(0, Ordering::Relaxed);
        self.state.tail().store(0, Ordering::Relaxed);
        self.state.producers().store(1, Ordering::Relaxed);
        self.state.consumers().store(1, Ordering::Relaxed);
        self.sealed_tail.store(SEG_OPEN, Ordering::Relaxed);
        self.seq.store(seq, Ordering::Relaxed);
        self.next.store(ptr::null_mut(), Ordering::Relaxed);
        // The WaitCells need no reset: their sequence words are monotone
        // eventcounts, meaningful only relative to a waiter's snapshot.
    }
}

impl<T: Send> Drop for Segment<T> {
    fn drop(&mut self) {
        // Only the control block drops segments, and only once they are
        // unreachable; any cell still publishing a rank holds an item that
        // was enqueued but never dequeued.
        for cell in self.cells.iter() {
            if cell.words().load_lo(Ordering::Relaxed) >= 0 {
                // SAFETY: rank >= 0 means the producer completed its data
                // write and no consumer consumed it.
                unsafe { (*cell.data()).assume_init_drop() };
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::raw::{RawProducer, RawSpscConsumer};

    #[test]
    fn fresh_segment_is_open_and_unlinked() {
        let seg = Segment::<u64>::boxed(3, 7);
        assert_eq!(seg.capacity(), 8);
        assert_eq!(seg.seq(), 7);
        assert_eq!(seg.sealed_tail(), None);
        assert!(seg.next().load(Ordering::Relaxed).is_null());
    }

    #[test]
    fn recycle_resets_ring_and_drops_leftovers() {
        use std::sync::atomic::{AtomicUsize, Ordering as O};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, O::Relaxed);
            }
        }

        let seg = Segment::<D>::boxed(2, 0);
        {
            let mut tx = unsafe { RawProducer::attach(seg.raw()) };
            let mut rx = unsafe { RawSpscConsumer::attach(seg.raw()) };
            tx.enqueue(D);
            tx.enqueue(D);
            drop(rx.try_dequeue()); // one consumed (and dropped), one left
        }
        seg.set_sealed_tail(2);
        assert_eq!(seg.sealed_tail(), Some(2));

        assert_eq!(DROPS.load(O::Relaxed), 1);
        seg.recycle(9);
        assert_eq!(DROPS.load(O::Relaxed), 2, "leftover payload dropped");
        assert_eq!(seg.seq(), 9);
        assert_eq!(seg.sealed_tail(), None);
        assert_eq!(seg.state().tail().load(Ordering::Relaxed), 0);
        assert_eq!(seg.state().producers().load(Ordering::Relaxed), 1);

        // The recycled ring runs the protocol from scratch.
        let mut tx = unsafe { RawProducer::attach(seg.raw()) };
        let mut rx = unsafe { RawSpscConsumer::attach(seg.raw()) };
        tx.enqueue(D);
        drop(rx.try_dequeue());
        assert_eq!(DROPS.load(O::Relaxed), 3);
    }
}
