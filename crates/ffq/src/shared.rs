//! Shared queue state and the consumer-side dequeue core.
//!
//! The dequeue protocol (Algorithm 1, `FFQ_DEQ`) is identical for the SPMC
//! and MPMC variants, so both delegate to [`dequeue_core`] here. The generic
//! parameter `MP` selects, at compile time, whether cell words must stay
//! coherent with double-word CAS operations (only the multi-producer variant
//! performs any).

use core::marker::PhantomData;
use core::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

use ffq_sync::{Backoff, CachePadded};

use crate::cell::{CellSlot, RANK_FREE};
use crate::error::TryDequeueError;
use crate::layout::{capacity_log2, IndexMap};
use crate::stats::ConsumerStats;

/// State shared by every handle of one queue.
pub(crate) struct Shared<T, C: CellSlot<T>, M: IndexMap> {
    /// The circular cell array; length is `1 << cap_log2`.
    pub(crate) cells: Box<[C]>,
    pub(crate) cap_log2: u32,
    /// Head counter: monotonically increasing rank dispenser for consumers.
    /// Cache-padded — it is the single most contended word in the queue.
    pub(crate) head: CachePadded<AtomicI64>,
    /// Tail counter. The single-producer variants keep the authoritative
    /// tail privately in the producer handle (the paper's "tail is not
    /// shared") and mirror it here with plain stores so `len_hint` works;
    /// the multi-producer variant fetch-and-adds it directly.
    pub(crate) tail: CachePadded<AtomicI64>,
    /// Live producer handles; 0 means disconnected.
    pub(crate) producers: AtomicUsize,
    /// Live consumer handles (informational).
    pub(crate) consumers: AtomicUsize,
    pub(crate) _marker: PhantomData<(fn() -> T, M)>,
}

// SAFETY: all cross-thread access to cell payloads is mediated by the
// rank/gap protocol; counters are atomics.
unsafe impl<T: Send, C: CellSlot<T>, M: IndexMap> Send for Shared<T, C, M> {}
unsafe impl<T: Send, C: CellSlot<T>, M: IndexMap> Sync for Shared<T, C, M> {}

impl<T, C: CellSlot<T>, M: IndexMap> Shared<T, C, M> {
    pub(crate) fn new(capacity: usize, producers: usize) -> Self {
        let cap_log2 = capacity_log2(capacity);
        let cells: Box<[C]> = (0..capacity).map(|_| C::empty()).collect();
        Self {
            cells,
            cap_log2,
            head: CachePadded::new(AtomicI64::new(0)),
            tail: CachePadded::new(AtomicI64::new(0)),
            producers: AtomicUsize::new(producers),
            consumers: AtomicUsize::new(1),
            _marker: PhantomData,
        }
    }

    #[inline(always)]
    pub(crate) fn capacity(&self) -> usize {
        1usize << self.cap_log2
    }

    /// The cell assigned to `rank` under this queue's index mapping.
    #[inline(always)]
    pub(crate) fn cell(&self, rank: i64) -> &C {
        debug_assert!(rank >= 0);
        // SAFETY(index): IndexMap::slot returns a value < 2^cap_log2 = len.
        unsafe { self.cells.get_unchecked(M::slot(rank, self.cap_log2)) }
    }

    /// Approximate number of items currently in the queue.
    ///
    /// Both counters move concurrently and gaps inflate the difference, so
    /// this is a hint, not a linearizable size — the paper's queue has no
    /// size operation at all.
    pub(crate) fn len_hint(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        usize::try_from((tail - head).max(0)).unwrap_or(0)
    }
}

impl<T, C: CellSlot<T>, M: IndexMap> Drop for Shared<T, C, M> {
    fn drop(&mut self) {
        // The last handle is dropping; no other thread can touch the cells.
        // Any cell still publishing a rank holds an item that was enqueued
        // but never dequeued — drop it in place. (A claimed cell, rank -2,
        // cannot outlive its producer's enqueue call, so it never reaches
        // this point holding initialized data.)
        for cell in self.cells.iter() {
            if cell.words().load_lo(Ordering::Relaxed) >= 0 {
                // SAFETY: rank >= 0 means the producer completed its data
                // write (the rank store is ordered after it) and no consumer
                // consumed it (consuming resets the rank to -1).
                unsafe { (*cell.data()).assume_init_drop() };
            }
        }
    }
}

/// One attempt at `FFQ_DEQ` (Algorithm 1, lines 20–33) on behalf of a
/// consumer that persists its claimed-but-unsatisfied rank in `pending`.
///
/// `MP` must be `true` for queues whose producers use double-word CAS on the
/// cell words (FFQ-m): the rank reset then goes through the DWCAS-coherent
/// store so the lock-striped emulation on non-x86_64 targets stays sound.
/// On x86_64 both paths compile to the same plain store.
#[inline]
pub(crate) fn dequeue_core<T, C: CellSlot<T>, M: IndexMap, const MP: bool>(
    shared: &Shared<T, C, M>,
    pending: &mut Option<i64>,
    stats: &mut ConsumerStats,
) -> Result<T, TryDequeueError> {
    // Resume a previously claimed rank, or claim the next one. The
    // fetch_add is Relaxed: it only hands out unique ranks; all inter-thread
    // publication goes through the cell's rank word (Acquire/Release below).
    let mut rank = pending.take().unwrap_or_else(|| {
        stats.ranks_claimed += 1;
        shared.head.fetch_add(1, Ordering::Relaxed)
    });
    debug_assert!(rank >= 0, "rank counter overflowed i64");

    // After observing "producers == 0" we re-examine the cell once before
    // reporting disconnection: every enqueue completed before the producer
    // count dropped (Release on decrement), so the re-examination sees it
    // (Acquire on load).
    let mut disconnect_checked = false;

    loop {
        let cell = shared.cell(rank);
        let words = cell.words();

        // Line 25: is this cell publishing exactly our rank?
        // Acquire pairs with the producer's Release rank-store and orders
        // our data read after the producer's data write.
        let r = words.lo_atomic().load(Ordering::Acquire);
        if r == rank {
            // SAFETY: a published cell's payload is initialized, and rank
            // equality makes this consumer its unique owner.
            let value = unsafe { (*cell.data()).assume_init_read() };
            // Line 27: recycle the cell. Release pairs with the producer's
            // Acquire rank-load so our data read happens-before any reuse.
            if MP {
                words.store_lo(RANK_FREE, Ordering::Release);
            } else {
                words.lo_atomic().store(RANK_FREE, Ordering::Release);
            }
            stats.dequeued += 1;
            return Ok(value);
        }

        // Line 29: was our rank announced as a gap? `gap` is monotonically
        // increasing per cell, so `>= rank` also covers announcements that
        // superseded ours N positions later.
        if words.hi_atomic().load(Ordering::Acquire) >= rank {
            // Re-check the rank (the paper's `c.rank != rank` guard): the
            // producer may have published our rank between the two loads —
            // a gap announcement for a *later* rank does not cancel it.
            if words.lo_atomic().load(Ordering::Acquire) == rank {
                continue;
            }
            stats.gaps_skipped += 1;
            stats.ranks_claimed += 1;
            rank = shared.head.fetch_add(1, Ordering::Relaxed);
            disconnect_checked = false;
            continue;
        }

        // Line 32: the item for our rank has not been produced yet.
        stats.not_ready += 1;
        if !disconnect_checked && shared.producers.load(Ordering::Acquire) == 0 {
            // Give the cell one more look now that all completed enqueues
            // are guaranteed visible.
            disconnect_checked = true;
            continue;
        }
        *pending = Some(rank);
        return Err(if disconnect_checked {
            TryDequeueError::Disconnected
        } else {
            TryDequeueError::Empty
        });
    }
}

/// Blocking wrapper around [`dequeue_core`]: backs off while empty, returns
/// `Err(Disconnected)` once no item can ever arrive.
#[inline]
pub(crate) fn dequeue_blocking<T, C: CellSlot<T>, M: IndexMap, const MP: bool>(
    shared: &Shared<T, C, M>,
    pending: &mut Option<i64>,
    stats: &mut ConsumerStats,
) -> Result<T, crate::error::Disconnected> {
    let mut backoff = Backoff::new();
    loop {
        match dequeue_core::<T, C, M, MP>(shared, pending, stats) {
            Ok(value) => return Ok(value),
            Err(TryDequeueError::Empty) => backoff.wait(),
            Err(TryDequeueError::Disconnected) => return Err(crate::error::Disconnected),
        }
    }
}
