//! The heap-backed queue container, the consumer-side dequeue cores, and
//! the batched single-producer enqueue path.
//!
//! Since the raw-memory split (see [`crate::raw`]) every core algorithm here
//! operates on a [`RawQueue`] view — the same code path serves heap queues
//! and shared-memory queues. [`Shared`] is the heap backing: it owns the
//! `#[repr(C)]` [`QueueState`] and the cell array, hands out views into
//! itself, and drops unconsumed payloads when the last handle goes away.
//!
//! The dequeue protocol (Algorithm 1, `FFQ_DEQ`) is identical for the SPMC
//! and MPMC variants, so both delegate to [`dequeue_core`] /
//! [`dequeue_batch_core`] here. The generic parameter `MP` selects, at
//! compile time, whether cell words must stay coherent with double-word CAS
//! operations (only the multi-producer variant performs any).

use core::marker::PhantomData;
use std::collections::VecDeque;

use ffq_sync::atomic::{fence, Ordering};

use ffq_sync::{WaitConfig, WaitStrategy};

use crate::cell::{CellSlot, RANK_FREE};
use crate::error::TryDequeueError;
use crate::layout::IndexMap;
use crate::raw::{QueueState, RawQueue};
use crate::stats::{ConsumerStats, ProducerStats};

/// Heap backing of one queue: the `#[repr(C)]` counter block plus the cell
/// array, pinned behind an `Arc` by every handle.
pub(crate) struct Shared<T, C: CellSlot<T>, M: IndexMap> {
    state: QueueState,
    /// The circular cell array; length is `1 << cap_log2`.
    cells: Box<[C]>,
    _marker: PhantomData<(fn() -> T, M)>,
}

impl<T, C: CellSlot<T>, M: IndexMap> Shared<T, C, M> {
    /// Allocates an empty queue of `1 << cap_log2` cells with `producers`
    /// initial producer handles and one consumer handle.
    pub(crate) fn with_log2(cap_log2: u32, producers: u32) -> Self {
        let cells: Box<[C]> = (0..1usize << cap_log2).map(|_| C::empty()).collect();
        Self {
            state: QueueState::new(cap_log2, producers, 1),
            cells,
            _marker: PhantomData,
        }
    }

    /// A raw view over this allocation.
    ///
    /// Valid for as long as `self` is alive and not moved — which the heap
    /// wrappers guarantee by holding the owning `Arc` alongside every view.
    pub(crate) fn raw(&self) -> RawQueue<T, C, M> {
        // SAFETY: state and cells are initialized and live inside the Arc
        // allocation, which outlives every handle that embeds this view.
        unsafe { RawQueue::from_raw(&self.state, self.cells.as_ptr()) }
    }
}

impl<T, C: CellSlot<T>, M: IndexMap> Drop for Shared<T, C, M> {
    fn drop(&mut self) {
        // The last handle is dropping; no other thread can touch the cells.
        // Any cell still publishing a rank holds an item that was enqueued
        // but never dequeued — drop it in place. (A claimed cell, rank -2,
        // cannot outlive its producer's enqueue call, so it never reaches
        // this point holding initialized data.)
        for cell in self.cells.iter() {
            if cell.words().load_lo(Ordering::Relaxed) >= 0 {
                // SAFETY: rank >= 0 means the producer completed its data
                // write (the rank store is ordered after it) and no consumer
                // consumed it (consuming reset the rank to -1).
                unsafe { (*cell.data()).assume_init_drop() };
            }
        }
    }
}

/// A consumer handle's claimed-but-unsatisfied ranks, in claim order.
///
/// This generalizes the single `pending: Option<i64>` of earlier revisions:
/// `claim_batch` parks a whole contiguous run `[start, start + k)` obtained
/// from one `head.fetch_add(k)`, and per-rank harvesting re-parks at the
/// front the one rank it could not satisfy. Ranks leave strictly in claim
/// order, which is what both the no-abandoned-rank guarantee and
/// per-consumer FIFO order rest on.
#[derive(Debug, Default)]
pub(crate) struct PendingRanks {
    /// Half-open `[start, end)` runs, oldest first. Tiny in practice: one
    /// run per outstanding `claim_batch` plus at most one re-parked rank.
    runs: VecDeque<(i64, i64)>,
}

impl PendingRanks {
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The oldest parked rank, without taking it — the rank a waiting
    /// consumer is blocked on.
    #[inline]
    pub(crate) fn front_rank(&self) -> Option<i64> {
        self.runs.front().map(|&(s, _)| s)
    }

    /// Total number of parked ranks.
    pub(crate) fn len(&self) -> usize {
        self.runs
            .iter()
            .map(|&(s, e)| (e - s) as usize)
            .sum::<usize>()
    }

    /// Takes the oldest parked rank.
    #[inline]
    pub(crate) fn pop_front(&mut self) -> Option<i64> {
        let &(start, end) = self.runs.front()?;
        if start + 1 == end {
            self.runs.pop_front();
        } else {
            self.runs[0].0 = start + 1;
        }
        Some(start)
    }

    /// Re-parks a rank just taken with [`pop_front`](Self::pop_front), so it
    /// is the next rank handed out again.
    #[inline]
    pub(crate) fn push_front(&mut self, rank: i64) {
        match self.runs.front_mut() {
            Some(run) if run.0 == rank + 1 => run.0 = rank,
            _ => self.runs.push_front((rank, rank + 1)),
        }
    }

    /// Takes the oldest whole parked run, for callers that iterate it with
    /// a local cursor instead of popping rank by rank.
    #[inline]
    pub(crate) fn pop_run(&mut self) -> Option<(i64, i64)> {
        self.runs.pop_front()
    }

    /// Re-parks the unprocessed remainder `[start, end)` of a run just
    /// taken with [`pop_run`](Self::pop_run), so its ranks are the next
    /// ones handed out.
    #[inline]
    pub(crate) fn push_front_run(&mut self, start: i64, end: i64) {
        debug_assert!(start < end);
        match self.runs.front_mut() {
            Some(run) if run.0 == end => run.0 = start,
            _ => self.runs.push_front((start, end)),
        }
    }

    /// Parks a freshly claimed run `[start, start + len)` behind every
    /// already-parked rank.
    pub(crate) fn push_run(&mut self, start: i64, len: i64) {
        debug_assert!(len > 0);
        match self.runs.back_mut() {
            Some(run) if run.1 == start => run.1 = start + len,
            _ => self.runs.push_back((start, start + len)),
        }
    }

    /// Discards every parked rank `>= bound`, returning how many were
    /// dropped. Used by the unbounded tier when a consumer learns its
    /// segment was sealed at `bound`: ranks claimed at or past the seal can
    /// never be published there (the producers moved to the next segment),
    /// so holding them would park the consumer forever. Sound to forget
    /// because a claimed rank is owned by this handle — nobody else will
    /// ever present it — and a sealed cell at it stays `RANK_FREE` until
    /// the segment is recycled wholesale.
    pub(crate) fn truncate_from(&mut self, bound: i64) -> usize {
        let mut dropped = 0usize;
        while let Some(run) = self.runs.back_mut() {
            if run.1 <= bound {
                break;
            }
            if run.0 >= bound {
                dropped += (run.1 - run.0) as usize;
                self.runs.pop_back();
            } else {
                dropped += (run.1 - bound) as usize;
                run.1 = bound;
                break;
            }
        }
        dropped
    }
}

/// Claims one rank from the shared head (one RMW).
#[inline]
fn claim_one<T, C: CellSlot<T>, M: IndexMap>(
    q: &RawQueue<T, C, M>,
    stats: &mut ConsumerStats,
) -> i64 {
    stats.ranks_claimed += 1;
    stats.head_rmws += 1;
    // Relaxed: the fetch_add only hands out unique ranks; all inter-thread
    // publication goes through the cell's rank word (Acquire/Release).
    let rank = q.state().head().fetch_add(1, Ordering::Relaxed);
    // The head advance is what unblocks a producer parked on a full queue.
    q.state().wake_producers(1);
    rank
}

/// Claims a run of `k` ranks with a single `head.fetch_add(k)` and parks it
/// as pending. The amortization core of the batch API: one RMW — one
/// coherence transaction on the queue's most contended word — buys `k`
/// ranks instead of one.
pub(crate) fn claim_batch_core<T, C: CellSlot<T>, M: IndexMap>(
    q: &RawQueue<T, C, M>,
    pending: &mut PendingRanks,
    stats: &mut ConsumerStats,
    k: usize,
) {
    if k == 0 {
        return;
    }
    let start = q.state().head().fetch_add(k as i64, Ordering::Relaxed);
    debug_assert!(start >= 0, "head counter overflowed i64");
    stats.ranks_claimed += k as u64;
    stats.head_rmws += 1;
    q.state().wake_producers(k);
    pending.push_run(start, k as i64);
}

/// One attempt at `FFQ_DEQ` (Algorithm 1, lines 20–33) on behalf of a
/// consumer that persists its claimed-but-unsatisfied ranks in `pending`.
///
/// `MP` must be `true` for queues whose producers use double-word CAS on the
/// cell words (FFQ-m): the rank reset then goes through the DWCAS-coherent
/// store so the lock-striped emulation on non-x86_64 targets stays sound.
/// On x86_64 both paths compile to the same plain store.
#[inline]
pub(crate) fn dequeue_core<T, C: CellSlot<T>, M: IndexMap, const MP: bool>(
    q: &RawQueue<T, C, M>,
    pending: &mut PendingRanks,
    stats: &mut ConsumerStats,
) -> Result<T, TryDequeueError> {
    // Resume the oldest previously claimed rank, or claim the next one.
    let mut rank = match pending.pop_front() {
        Some(r) => r,
        None => claim_one(q, stats),
    };
    debug_assert!(rank >= 0, "rank counter overflowed i64");

    // After observing "producers == 0" we re-examine the cell once before
    // reporting disconnection: every enqueue completed before the producer
    // count dropped (Release on decrement), so the re-examination sees it
    // (Acquire on load). Sticky within this call: that one Acquire load
    // made *every* completed enqueue visible, not just the current cell's,
    // so gap skips after it must not reset the flag — resetting could
    // bounce a drained, producer-less queue back to `Empty`.
    let mut disconnect_checked = false;

    loop {
        let cell = q.cell(rank);
        let words = cell.words();

        // Lines 25/29 share one untorn (rank, gap) read per iteration; on
        // the emulated DWCAS path it is stripe-locked, so it can never
        // observe a half-applied pair update from a racing producer CAS.
        // The rank half's Acquire pairs with the producer's Release
        // rank-store (or release fence, on the batched path) and orders our
        // data read after the producer's data write.
        let (r, g) = words.load_pair_untorn(Ordering::Acquire);

        // Line 25: is this cell publishing exactly our rank?
        if r == rank {
            // SAFETY: a published cell's payload is initialized, and rank
            // equality makes this consumer its unique owner.
            let value = unsafe { (*cell.data()).assume_init_read() };
            // Line 27: recycle the cell. Release pairs with the producer's
            // Acquire rank-load so our data read happens-before any reuse.
            if MP {
                words.store_lo(RANK_FREE, Ordering::Release);
            } else {
                words.store_lo_unpaired(RANK_FREE, Ordering::Release);
            }
            stats.dequeued += 1;
            return Ok(value);
        }

        // Line 29: was our rank announced as a gap? `gap` is monotonically
        // increasing per cell, so `>= rank` also covers announcements that
        // superseded ours N positions later.
        if g >= rank {
            // Re-check the rank (the paper's `c.rank != rank` guard): the
            // producer may have published our rank after the pair read — a
            // gap announcement for a *later* rank does not cancel it.
            if words.load_lo(Ordering::Acquire) == rank {
                continue;
            }
            stats.gaps_skipped += 1;
            // Oldest parked rank first; only claim fresh when none parked.
            rank = match pending.pop_front() {
                Some(r) => r,
                None => claim_one(q, stats),
            };
            continue;
        }

        // Line 32: the item for our rank has not been produced yet.
        stats.not_ready += 1;
        if !disconnect_checked && q.state().producers().load(Ordering::Acquire) == 0 {
            // Give the cell one more look now that all completed enqueues
            // are guaranteed visible.
            disconnect_checked = true;
            continue;
        }
        pending.push_front(rank);
        return Err(if disconnect_checked {
            TryDequeueError::Disconnected
        } else {
            TryDequeueError::Empty
        });
    }
}

/// [`dequeue_core`] without the cell recycle: dequeues one item, leaving
/// its cell publishing the rank until the caller hands the rank back
/// through `RawConsumer::retire`. The borrowed-read primitive of the
/// zero-copy bytes lane — the un-recycled cell is what keeps the rank's
/// slot buffer safe from producer reuse while a `PayloadRef` borrows it.
/// `T: Copy` because the value is copied out of a still-initialized cell.
#[inline]
pub(crate) fn dequeue_claim_core<T: Copy, C: CellSlot<T>, M: IndexMap, const MP: bool>(
    q: &RawQueue<T, C, M>,
    pending: &mut PendingRanks,
    stats: &mut ConsumerStats,
) -> Result<(i64, T), TryDequeueError> {
    let mut rank = match pending.pop_front() {
        Some(r) => r,
        None => claim_one(q, stats),
    };
    debug_assert!(rank >= 0, "rank counter overflowed i64");
    let mut disconnect_checked = false;
    loop {
        let cell = q.cell(rank);
        let words = cell.words();
        // Same untorn pair read and ordering discipline as dequeue_core.
        let (r, g) = words.load_pair_untorn(Ordering::Acquire);
        if r == rank {
            // SAFETY: published cell, unique owner by rank equality; T is
            // Copy, so reading without un-initializing is sound.
            let value = unsafe { (*cell.data()).assume_init_read() };
            stats.dequeued += 1;
            return Ok((rank, value));
        }
        if g >= rank {
            if words.load_lo(Ordering::Acquire) == rank {
                continue;
            }
            stats.gaps_skipped += 1;
            rank = match pending.pop_front() {
                Some(r) => r,
                None => claim_one(q, stats),
            };
            continue;
        }
        stats.not_ready += 1;
        if !disconnect_checked && q.state().producers().load(Ordering::Acquire) == 0 {
            disconnect_checked = true;
            continue;
        }
        pending.push_front(rank);
        return Err(if disconnect_checked {
            TryDequeueError::Disconnected
        } else {
            TryDequeueError::Empty
        });
    }
}

/// Claims a run of up to `want` ranks below the mirrored tail, or `None`
/// when nothing is claimable. With `head_cap == i64::MAX` this is the
/// unbounded fast path (one `fetch_add`). A finite `head_cap` is an
/// *absolute rank* the claim must not reach: the claim then goes through a
/// CAS loop, because a `fetch_add` racing another consumer could land the
/// run past the cap — the CAS re-reads the head on every failure, so the
/// bound holds under any interleaving. Sharded consumers use the cap to
/// keep their shard's head within the documented reordering window of the
/// laggard shard (ALGORITHM.md §13).
#[inline]
fn claim_run_capped<T, C: CellSlot<T>, M: IndexMap>(
    q: &RawQueue<T, C, M>,
    stats: &mut ConsumerStats,
    want: i64,
    head_cap: i64,
) -> Option<(i64, i64)> {
    // Emptiness pre-check and claim sizing in one: only ranks below the
    // mirrored tail are worth claiming.
    let tail = q.state().tail().load(Ordering::Acquire);
    if head_cap == i64::MAX {
        let head = q.state().head().load(Ordering::Relaxed);
        let avail = (tail - head).min(want);
        if avail <= 0 {
            return None;
        }
        let start = q.state().head().fetch_add(avail, Ordering::Relaxed);
        debug_assert!(start >= 0, "head counter overflowed i64");
        stats.ranks_claimed += avail as u64;
        stats.head_rmws += 1;
        q.state().wake_producers(avail as usize);
        return Some((start, start + avail));
    }
    let mut head = q.state().head().load(Ordering::Relaxed);
    loop {
        let avail = (tail - head).min(want).min(head_cap - head);
        if avail <= 0 {
            return None;
        }
        stats.head_rmws += 1;
        // Relaxed like the fetch_add path: the CAS only hands out unique
        // rank runs; publication synchronizes through the cell words.
        match q.state().head().compare_exchange_weak(
            head,
            head + avail,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                debug_assert!(head >= 0, "head counter overflowed i64");
                stats.ranks_claimed += avail as u64;
                q.state().wake_producers(avail as usize);
                return Some((head, head + avail));
            }
            Err(cur) => head = cur,
        }
    }
}

/// Harvests up to `max` ready items into `buf`, claiming head ranks in runs
/// (one `fetch_add` per run) instead of one at a time. Returns the number of
/// items appended; never blocks.
///
/// Parked ranks from earlier claims are always harvested first, in claim
/// order. When they run out, a new run is claimed only for ranks the
/// mirrored tail reports as resolved — so a drain on an empty queue claims
/// nothing, and (for single-producer queues, whose tail mirror trails rank
/// publication) a run claimed here never parks: every rank in it is already
/// published or gap-announced.
///
/// Reports neither emptiness nor disconnection — a `0` return means no item
/// was ready; use the per-item path to distinguish `Disconnected`.
pub(crate) fn dequeue_batch_core<T, C: CellSlot<T>, M: IndexMap, const MP: bool>(
    q: &RawQueue<T, C, M>,
    pending: &mut PendingRanks,
    stats: &mut ConsumerStats,
    buf: &mut Vec<T>,
    max: usize,
) -> usize {
    dequeue_batch_capped_core::<T, C, M, MP>(q, pending, stats, buf, max, i64::MAX)
}

/// [`dequeue_batch_core`] with a `head_cap` bound on *fresh* claims: no
/// rank at or past `head_cap` is claimed by this call (parked runs from
/// earlier claims are still harvested — they were bounded when claimed).
/// This is the consumer-side enforcement primitive for the sharded
/// frontend's k-relaxed FIFO contract.
pub(crate) fn dequeue_batch_capped_core<T, C: CellSlot<T>, M: IndexMap, const MP: bool>(
    q: &RawQueue<T, C, M>,
    pending: &mut PendingRanks,
    stats: &mut ConsumerStats,
    buf: &mut Vec<T>,
    max: usize,
    head_cap: i64,
) -> usize {
    let mut n = 0usize;
    'harvest: while n < max {
        // Take the oldest parked run whole, or claim a fresh one — the run
        // is then walked with a plain local cursor, touching the pending
        // deque again only for leftovers.
        let (start, end) = match pending.pop_run() {
            Some(run) => run,
            None => match claim_run_capped(q, stats, (max - n) as i64, head_cap) {
                Some(run) => run,
                None => break,
            },
        };
        // Ranks past the harvest bound go straight back; gap skips below
        // may leave `n` short of that bound, in which case the outer loop
        // claims again.
        let stop = end.min(start + (max - n) as i64);
        let mut rank = start;
        while rank < stop {
            let cell = q.cell(rank);
            let words = cell.words();
            loop {
                // Same cell protocol and ordering discipline as dequeue_core
                // (one untorn pair read, then the rank re-check guard).
                let (r, g) = words.load_pair_untorn(Ordering::Acquire);
                if r == rank {
                    // SAFETY: published cell, unique owner by rank equality.
                    let value = unsafe { (*cell.data()).assume_init_read() };
                    if MP {
                        words.store_lo(RANK_FREE, Ordering::Release);
                    } else {
                        words.store_lo_unpaired(RANK_FREE, Ordering::Release);
                    }
                    buf.push(value);
                    n += 1;
                    break;
                }
                if g >= rank {
                    if words.load_lo(Ordering::Acquire) == rank {
                        continue;
                    }
                    stats.gaps_skipped += 1;
                    break;
                }
                // Not produced yet (multi-producer claims can outrun
                // publication): park the rest of the run and stop.
                stats.not_ready += 1;
                pending.push_front_run(rank, end);
                break 'harvest;
            }
            rank += 1;
        }
        if stop < end {
            pending.push_front_run(stop, end);
        }
    }
    stats.dequeued += n as u64;
    stats.batch_dequeues += 1;
    stats.batch_items += n as u64;
    n
}

/// The wake condition of a consumer blocked after an `Empty`: its front
/// pending rank's cell got published or gap-announced, or — with no pending
/// rank — the mirrored tail shows *something* to claim, or no producer is
/// left to ever publish. Precise on the pending-rank side on purpose: for
/// multi-producer queues the shared tail advances at claim time, long
/// before publication, so "tail moved" would wake a parked consumer into a
/// still-unpublished cell over and over.
#[inline]
pub(crate) fn wake_ready<T, C: CellSlot<T>, M: IndexMap>(
    q: &RawQueue<T, C, M>,
    front: Option<i64>,
) -> bool {
    if q.state().producers().load(Ordering::Acquire) == 0 {
        return true;
    }
    wake_ready_items(q, front)
}

/// The item-progress half of [`wake_ready`]: the front pending rank
/// resolved, or (with no pending rank) unclaimed items are visible.
///
/// Split out because the producers-gone disconnect term does not
/// aggregate with `any()`: a sharded consumer's member queues lose their
/// producer handles one at a time during a sharded producer's drop, so
/// "any member's producers gone" holds from the first decrement while
/// the drain keeps coming up empty until the last — a busy-poll window
/// its wait loop would spin through. Aggregating callers must `any()`
/// this half and `all()` the producer counts themselves.
pub(crate) fn wake_ready_items<T, C: CellSlot<T>, M: IndexMap>(
    q: &RawQueue<T, C, M>,
    front: Option<i64>,
) -> bool {
    match front {
        Some(rank) => {
            let (r, g) = q.cell(rank).words().load_pair_untorn(Ordering::Acquire);
            r == rank || g >= rank
        }
        None => !q.looks_empty(),
    }
}

/// Blocking wrapper around [`dequeue_core`]: waits — spinning, then
/// parking on the not-empty eventcount — while empty, returns
/// `Err(Disconnected)` once no item can ever arrive.
#[inline]
pub(crate) fn dequeue_blocking<T, C: CellSlot<T>, M: IndexMap, const MP: bool>(
    q: &RawQueue<T, C, M>,
    pending: &mut PendingRanks,
    stats: &mut ConsumerStats,
    cfg: WaitConfig,
) -> Result<T, crate::error::Disconnected> {
    let mut strat = WaitStrategy::new(cfg);
    let res = loop {
        match dequeue_core::<T, C, M, MP>(q, pending, stats) {
            Ok(value) => break Ok(value),
            Err(TryDequeueError::Empty) => {
                // dequeue_core re-parked the rank it was blocked on at the
                // front; that rank's state cannot change except by a
                // producer, so the snapshot stays valid across the park.
                let front = pending.front_rank();
                let state = q.state();
                strat.wait_round(state.not_empty(), state.wait_is_shared(), None, &mut || {
                    wake_ready(q, front)
                });
            }
            Err(TryDequeueError::Disconnected) => break Err(crate::error::Disconnected),
        }
    };
    stats.parks += strat.parks();
    res
}

/// Best-effort recovery for a dropping consumer: consume and drop any
/// already-published item among its parked ranks so those cells return to
/// circulation. Unpublished ranks are forfeited (the paper's consumers are
/// immortal worker threads; see the README caveat).
pub(crate) fn recover_pending<T, C: CellSlot<T>, M: IndexMap, const MP: bool>(
    q: &RawQueue<T, C, M>,
    pending: &mut PendingRanks,
) {
    while let Some(rank) = pending.pop_front() {
        let cell = q.cell(rank);
        let words = cell.words();
        if words.load_lo(Ordering::Acquire) == rank {
            // SAFETY: rank equality makes this handle the payload's unique
            // owner.
            unsafe { (*cell.data()).assume_init_drop() };
            if MP {
                words.store_lo(RANK_FREE, Ordering::Release);
            } else {
                words.store_lo_unpaired(RANK_FREE, Ordering::Release);
            }
        }
    }
}

/// Fullness pre-check against the producer's *shadow* head (MCRingBuffer's
/// shadow-index technique): compares the private tail with a locally cached
/// head and re-reads the shared counter — the only Acquire load on this
/// path — when the cached bound is exhausted. The head only grows, so the
/// cache errs toward "full" and a pass is always safe; a refresh decides
/// for real.
#[inline]
pub(crate) fn looks_full_sp<T, C: CellSlot<T>, M: IndexMap>(
    q: &RawQueue<T, C, M>,
    tail: i64,
    head_cache: &mut i64,
    stats: &mut ProducerStats,
) -> bool {
    let cap = q.capacity() as i64;
    if tail - *head_cache < cap {
        return false;
    }
    *head_cache = q.state().head().load(Ordering::Acquire);
    stats.head_refreshes += 1;
    tail - *head_cache >= cap
}

/// The batched single-producer enqueue shared by the SPSC and SPMC
/// variants (the producer-side half of the amortization): write a run of
/// free cells' payloads first, publish all their ranks with one release
/// pass — a single `fence(Release)` followed by relaxed rank stores — and
/// mirror the tail once per run instead of once per item.
///
/// Gap announcements for busy cells are *not* deferred: consumers must be
/// able to step over a skipped cell before the run publishes.
///
/// Blocks (spinning, then parking on the not-full eventcount per `cfg`)
/// while the queue is full; never while holding staged cells. Staged cells
/// are invisible until their rank store, so a consumer assigned one of
/// those ranks simply sees "not ready" in the interim.
#[allow(clippy::too_many_arguments)]
pub(crate) fn enqueue_many_sp<T, C: CellSlot<T>, M: IndexMap, I>(
    q: &RawQueue<T, C, M>,
    tail: &mut i64,
    head_cache: &mut i64,
    staged: &mut Vec<i64>,
    stats: &mut ProducerStats,
    cfg: WaitConfig,
    mc: bool,
    iter: I,
) -> usize
where
    I: IntoIterator<Item = T>,
{
    let mut iter = iter.into_iter();
    let cap = q.capacity() as i64;
    let mut n = 0usize;
    let mut carry = match iter.next() {
        Some(v) => v,
        None => return 0,
    };
    let mut strat = WaitStrategy::new(cfg);
    staged.clear(); // a panicking iterator may have left residue behind
    let n = loop {
        while looks_full_sp(q, *tail, head_cache, stats) {
            let state = q.state();
            let tail_now = *tail;
            strat.wait_round(state.not_full(), state.wait_is_shared(), None, &mut || {
                !looks_full_sp(q, tail_now, head_cache, stats)
            });
        }
        strat.reset();
        // Stage payload writes into free cells while the shadow bound
        // grants space (the head only grows, so the real free count is at
        // least the cached one). Clamped to one array's worth: consumers
        // claim head ranks *before* items exist, so `head` can run ahead of
        // `tail` and inflate the naive bound past `cap` — but publication
        // within a run is deferred, so the busy-cell check below cannot see
        // ranks staged earlier in the same run, and only a run of at most
        // `cap` consecutive ranks is guaranteed collision-free.
        let mut budget = (cap - (*tail - *head_cache)).min(cap);
        let run_start = *tail;
        // Fast path: while no gap has been burned, the staged ranks are
        // exactly `run_start..*tail` and need no side list. The first busy
        // cell spills the prefix into `staged` and the run continues there.
        let mut had_gap = false;
        let mut item = Some(carry);
        while budget > 0 {
            let Some(value) = item.take() else { break };
            let rank = *tail;
            debug_assert!(rank >= 0, "tail overflowed i64");
            let words = q.cell(rank).words();
            if words.load_lo(Ordering::Acquire) >= 0 {
                // Busy cell (Algorithm 1 line 13): skip it and announce the
                // gap immediately. Same ordering as the per-item path
                // (unpaired: single-producer queues never pair-CAS).
                words.store_hi_unpaired(rank, Ordering::Release);
                stats.gaps_created += 1;
                if !had_gap {
                    had_gap = true;
                    staged.extend(run_start..rank);
                }
                item = Some(value);
            } else {
                // SAFETY: a free cell stays free until this unique producer
                // publishes its rank; the Acquire load above pairs with the
                // consumer's Release reset, ordering its final payload read
                // before this overwrite.
                unsafe { (*q.cell(rank).data()).write(value) };
                if had_gap {
                    staged.push(rank);
                }
                item = iter.next();
            }
            *tail += 1;
            budget -= 1;
        }
        stats.ranks_taken += (*tail - run_start) as u64;
        let published = if had_gap {
            staged.len()
        } else {
            (*tail - run_start) as usize
        };
        if published > 0 {
            // The single release pass. The fence orders every staged
            // payload write before the relaxed rank stores, so a consumer's
            // Acquire load of any one published rank sees that cell's data
            // (fence-to-atomic synchronization); publishing in ascending
            // rank order keeps consumers from parking mid-run.
            fence(Ordering::Release);
            if had_gap {
                for &rank in staged.iter() {
                    q.cell(rank)
                        .words()
                        .store_lo_unpaired(rank, Ordering::Relaxed);
                }
                staged.clear();
            } else {
                for rank in run_start..*tail {
                    q.cell(rank)
                        .words()
                        .store_lo_unpaired(rank, Ordering::Relaxed);
                }
            }
            n += published;
            stats.enqueued += published as u64;
            stats.batch_enqueues += 1;
            stats.batch_items += published as u64;
        }
        // Mirror the tail once per run — len_hint and the consumers' claim
        // sizing read it; ordered after the rank stores so a rank below the
        // mirrored tail is always already resolved.
        q.state().tail().store(*tail, Ordering::Release);
        // Wake parked consumers once per run: a consumer parked on a
        // skipped or published rank it already *owns* is unblocked only by
        // that rank resolving, and a counted wake can land on other
        // consumers and leave the right wakee sleeping (see
        // `QueueState::wake_consumers_all` and
        // `RawProducer::set_multi_consumer`).
        let advanced = (*tail - run_start) as usize;
        if advanced > 0 {
            if had_gap || mc {
                q.state().wake_consumers_all();
            } else {
                // Raw-layer callers can attach several shared-head
                // consumers without setting `mc`, and no count check can
                // prove they did not; the published wake broadcasts (see
                // `QueueState::wake_consumers_published`).
                q.state().wake_consumers_published();
            }
        }
        match item.or_else(|| iter.next()) {
            Some(v) => carry = v,
            None => break n,
        }
    };
    stats.parks += strat.parks();
    n
}

#[cfg(test)]
mod tests {
    use super::PendingRanks;

    #[test]
    fn pending_ranks_fifo_order() {
        let mut p = PendingRanks::default();
        assert!(p.is_empty());
        assert_eq!(p.pop_front(), None);
        p.push_run(10, 3); // 10, 11, 12
        p.push_run(20, 1); // 20
        assert_eq!(p.len(), 4);
        assert_eq!(p.pop_front(), Some(10));
        assert_eq!(p.pop_front(), Some(11));
        // Re-park 11: it must come out first again.
        p.push_front(11);
        assert_eq!(p.len(), 3);
        assert_eq!(p.pop_front(), Some(11));
        assert_eq!(p.pop_front(), Some(12));
        assert_eq!(p.pop_front(), Some(20));
        assert_eq!(p.pop_front(), None);
        assert!(p.is_empty());
    }

    #[test]
    fn pending_ranks_truncate_from_drops_only_the_tail() {
        let mut p = PendingRanks::default();
        p.push_run(0, 3); // 0, 1, 2
        p.push_run(10, 4); // 10, 11, 12, 13
                           // Bound inside the second run: 12 and 13 go, everything older stays.
        assert_eq!(p.truncate_from(12), 2);
        assert_eq!(p.len(), 5);
        // Bound below every parked rank: the whole set goes.
        assert_eq!(p.truncate_from(0), 5);
        assert!(p.is_empty());
        // Empty and past-the-end bounds are no-ops.
        assert_eq!(p.truncate_from(0), 0);
        p.push_run(5, 2);
        assert_eq!(p.truncate_from(7), 0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn pending_ranks_coalesces_contiguous_runs() {
        let mut p = PendingRanks::default();
        p.push_run(0, 2);
        p.push_run(2, 2); // contiguous with [0, 2): coalesces
        assert_eq!(p.len(), 4);
        for want in 0..4 {
            assert_eq!(p.pop_front(), Some(want));
        }
        assert!(p.is_empty());
    }
}
