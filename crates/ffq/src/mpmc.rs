//! FFQ-m: the multi-producer/multi-consumer extension (Algorithm 2).
//!
//! Producers claim ranks with `fetch_add` on the now-shared `tail` and use a
//! 128-bit double-word CAS over the adjacent `(rank, gap)` cell words to
//! resolve the two races §III-B describes:
//!
//! 1. *Lost update*: a stalled producer overwriting a cell that a faster
//!    producer re-used for a later rank — prevented by claiming the cell
//!    with the `-2` sentinel (`CAS (-1,g) → (-2,g)`) before touching data.
//! 2. *Enqueue in the past*: publishing a rank at a cell whose `gap` has
//!    already been advanced beyond it, producing an item no consumer will
//!    ever dequeue — prevented because the claim CAS atomically verifies
//!    `gap` is still the value `g < rank` that was read, and because gap
//!    announcements themselves are double-word CASes that fail if the cell's
//!    occupancy changed.
//!
//! The price of generality (paper §III-B, last paragraph): enqueue is only
//! lock-free under the never-full assumption, and dequeue is no longer
//! lock-free — a producer preempted between claim and publish stalls the
//! consumer assigned that rank.
//!
//! Dequeue is Algorithm 1's `FFQ_DEQ`, unchanged — shared with the SPMC
//! variant via [`crate::shared::dequeue_core`].

use core::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ffq_sync::Backoff;

use crate::cell::{CellSlot, PaddedCell, RANK_CLAIMED, RANK_FREE};
use crate::error::{Disconnected, Full, TryDequeueError};
use crate::layout::{IndexMap, LinearMap};
use crate::shared::{dequeue_blocking, dequeue_core, Shared};
use crate::stats::{ConsumerStats, ProducerStats};

/// Creates an MPMC queue with the default layout (cache-line aligned cells,
/// linear mapping) and the given power-of-two capacity.
///
/// Clone either handle for more producers/consumers.
///
/// # Panics
/// If `capacity` is not a power of two >= 2.
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    channel_with::<T, PaddedCell<T>, LinearMap>(capacity)
}

/// Creates an MPMC queue with explicit cell layout `C` and index mapping `M`.
pub fn channel_with<T: Send, C: CellSlot<T>, M: IndexMap>(
    capacity: usize,
) -> (Producer<T, C, M>, Consumer<T, C, M>) {
    let shared = Arc::new(Shared::<T, C, M>::new(capacity, 1));
    (
        Producer {
            shared: Arc::clone(&shared),
            stats: ProducerStats::default(),
        },
        Consumer {
            shared,
            pending: None,
            stats: ConsumerStats::default(),
        },
    )
}

/// A producing handle of an MPMC queue. Clone it to add producers.
pub struct Producer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    shared: Arc<Shared<T, C, M>>,
    stats: ProducerStats,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Producer<T, C, M> {
    /// Enqueues `value`, retrying (with back-off between full passes) until
    /// a cell is secured. Lock-free under the paper's never-full assumption.
    pub fn enqueue(&mut self, value: T) {
        let mut value = value;
        let mut backoff = Backoff::new();
        let cap = self.shared.capacity();
        loop {
            if self.looks_full() {
                backoff.wait();
                continue;
            }
            match self.enqueue_ranks(value, cap) {
                Ok(()) => return,
                Err(Full(v)) => {
                    value = v;
                    backoff.wait();
                }
            }
        }
    }

    /// Fullness pre-check on the shared counters; conservative in the safe
    /// direction (see [`crate::spmc::Producer::try_enqueue`]). Avoids
    /// consuming tail ranks when a scan clearly cannot succeed.
    #[inline]
    fn looks_full(&self) -> bool {
        let tail = self.shared.tail.load(Ordering::Acquire);
        let head = self.shared.head.load(Ordering::Acquire);
        tail - head >= self.shared.capacity() as i64
    }

    /// Attempts to enqueue, consuming at most one array's worth of ranks.
    ///
    /// May still spin briefly while another producer that has *claimed* the
    /// inspected cell publishes its rank — an acquired rank can never be
    /// abandoned mid-protocol (the consumer assigned to it would stall), so
    /// boundedness is in ranks, not in loop iterations.
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        if self.looks_full() {
            self.stats.full_rejections += 1;
            return Err(Full(value));
        }
        let cap = self.shared.capacity();
        let r = self.enqueue_ranks(value, cap);
        if r.is_err() {
            self.stats.full_rejections += 1;
        }
        r
    }

    /// Enqueues every item of `iter` (blocking as needed); returns the
    /// count. Amortizes per-call overhead for bulk submission.
    pub fn enqueue_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        let mut n = 0;
        for item in iter {
            self.enqueue(item);
            n += 1;
        }
        n
    }

    /// `FFQ_ENQ` of Algorithm 2, bounded to `limit` rank acquisitions.
    fn enqueue_ranks(&mut self, value: T, limit: usize) -> Result<(), Full<T>> {
        for _ in 0..limit {
            // Line 4: acquire a unique rank. Relaxed — uniqueness comes from
            // atomicity; publication synchronizes through the cell words.
            let rank = self.shared.tail.fetch_add(1, Ordering::Relaxed);
            debug_assert!(rank >= 0, "tail overflowed i64");
            self.stats.ranks_taken += 1;
            let cell = self.shared.cell(rank);
            let words = cell.words();
            let mut backoff = Backoff::new();

            // Line 6: while no gap announcement supersedes our rank.
            loop {
                let g = words.load_hi(Ordering::Acquire);
                if g >= rank {
                    // Another producer skipped this cell for a rank at or
                    // past ours: enqueueing here would be "in the past".
                    // Abandon *the cell*, not the rank — the rank is the
                    // gap now, so consumers step over it. Take a new rank.
                    break;
                }
                let r = words.load_lo(Ordering::Acquire);
                if r >= 0 {
                    // Line 8: occupied by an unconsumed item — announce our
                    // rank as a gap. The double CAS fails if either the
                    // occupant changed (cell may have become free: retry and
                    // use it) or another producer raced the gap forward.
                    if words.compare_exchange((r, g), (r, rank)).is_ok() {
                        self.stats.gaps_created += 1;
                        break; // gap >= rank now; outer loop takes a new rank
                    }
                    self.stats.cas_failures += 1;
                    continue;
                }
                if r == RANK_CLAIMED {
                    // Another producer is between claim and publish. Its
                    // publish is imminent (no user code in that window), but
                    // it may be descheduled — this is precisely where FFQ-m
                    // stops being lock-free (§III-B).
                    backoff.wait();
                    continue;
                }
                debug_assert_eq!(r, RANK_FREE);
                // Line 9: claim the free cell, atomically verifying the gap
                // did not move (second race above). Rank values are unique
                // over the queue's lifetime and gap is monotonic per cell,
                // so the pair CAS is ABA-free.
                match words.compare_exchange((RANK_FREE, g), (RANK_CLAIMED, g)) {
                    Ok(()) => {
                        // Lines 10–11: write data, then publish the rank.
                        // The Release store is the linearization point and
                        // pairs with the consumer's Acquire rank load.
                        unsafe { (*cell.data()).write(value) };
                        words.store_lo(rank, Ordering::Release);
                        self.stats.enqueued += 1;
                        return Ok(());
                    }
                    Err(_) => {
                        self.stats.cas_failures += 1;
                        continue;
                    }
                }
            }
        }
        Err(Full(value))
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Approximate number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.shared.len_hint()
    }

    /// Number of live producer handles.
    pub fn producers(&self) -> usize {
        self.shared.producers.load(Ordering::Relaxed)
    }

    /// Number of live consumer handles.
    pub fn consumers(&self) -> usize {
        self.shared.consumers.load(Ordering::Relaxed)
    }

    /// Snapshot of this producer's counters.
    pub fn stats(&self) -> ProducerStats {
        self.stats
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Clone for Producer<T, C, M> {
    fn clone(&self) -> Self {
        self.shared.producers.fetch_add(1, Ordering::Relaxed);
        Self {
            shared: Arc::clone(&self.shared),
            stats: ProducerStats::default(),
        }
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Drop for Producer<T, C, M> {
    fn drop(&mut self) {
        self.shared.producers.fetch_sub(1, Ordering::Release);
    }
}

/// A consuming handle of an MPMC queue. Clone it to add consumers.
///
/// Identical protocol and pending-rank semantics to
/// [`crate::spmc::Consumer`].
pub struct Consumer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    shared: Arc<Shared<T, C, M>>,
    pending: Option<i64>,
    stats: ConsumerStats,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Consumer<T, C, M> {
    /// Attempts to dequeue one item without blocking (pending-rank
    /// semantics; see [`crate::spmc::Consumer::try_dequeue`]).
    pub fn try_dequeue(&mut self) -> Result<T, TryDequeueError> {
        dequeue_core::<T, C, M, true>(&self.shared, &mut self.pending, &mut self.stats)
    }

    /// Dequeues one item, backing off while the queue is empty.
    pub fn dequeue(&mut self) -> Result<T, Disconnected> {
        dequeue_blocking::<T, C, M, true>(&self.shared, &mut self.pending, &mut self.stats)
    }

    /// Dequeues one item, giving up after `timeout`.
    pub fn dequeue_timeout(&mut self, timeout: Duration) -> Result<T, TryDequeueError> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::new();
        loop {
            match self.try_dequeue() {
                Ok(v) => return Ok(v),
                e @ Err(TryDequeueError::Disconnected) => return e,
                e @ Err(TryDequeueError::Empty) => {
                    if Instant::now() >= deadline {
                        return e;
                    }
                    backoff.wait();
                }
            }
        }
    }

    /// Moves up to `max` currently available items into `buf`; returns the
    /// count. Never blocks.
    pub fn drain_into(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.try_dequeue() {
                Ok(v) => {
                    buf.push(v);
                    n += 1;
                }
                Err(_) => break,
            }
        }
        n
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Approximate number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.shared.len_hint()
    }

    /// Snapshot of this consumer's counters.
    pub fn stats(&self) -> ConsumerStats {
        self.stats
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Clone for Consumer<T, C, M> {
    fn clone(&self) -> Self {
        self.shared.consumers.fetch_add(1, Ordering::Relaxed);
        Self {
            shared: Arc::clone(&self.shared),
            pending: None,
            stats: ConsumerStats::default(),
        }
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Drop for Consumer<T, C, M> {
    fn drop(&mut self) {
        // Best-effort recovery of an already-published pending rank; see
        // spmc::Consumer::drop. Uses the DWCAS-coherent store (MP variant).
        if let Some(rank) = self.pending.take() {
            let cell = self.shared.cell(rank);
            if cell.words().load_lo(Ordering::Acquire) == rank {
                unsafe { (*cell.data()).assume_init_drop() };
                cell.words().store_lo(RANK_FREE, Ordering::Release);
            }
        }
        self.shared.consumers.fetch_sub(1, Ordering::Relaxed);
    }
}


impl<T: Send, C: CellSlot<T>, M: IndexMap> IntoIterator for Consumer<T, C, M> {
    type Item = T;
    type IntoIter = IntoIter<T, C, M>;

    /// A blocking iterator: yields items until all producers disconnect
    /// and the queue is drained.
    fn into_iter(self) -> Self::IntoIter {
        IntoIter { consumer: self }
    }
}

/// Blocking consuming iterator; see [`Consumer::into_iter`].
pub struct IntoIter<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    consumer: Consumer<T, C, M>,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Iterator for IntoIter<T, C, M> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.consumer.dequeue().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CompactCell;
    use crate::layout::RotateMap;
    use std::collections::HashSet;

    #[test]
    fn fifo_single_producer_single_consumer() {
        let (mut tx, mut rx) = channel::<u32>(16);
        for i in 0..10 {
            tx.enqueue(i);
        }
        for i in 0..10 {
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Empty));
    }

    #[test]
    fn try_enqueue_full_bounded() {
        let (mut tx, mut rx) = channel::<u32>(4);
        for i in 0..4 {
            tx.try_enqueue(i).unwrap();
        }
        let e = tx.try_enqueue(9).unwrap_err();
        assert_eq!(e.into_inner(), 9);
        for i in 0..4 {
            assert_eq!(rx.dequeue(), Ok(i));
        }
    }

    #[test]
    fn handles_clone_and_count() {
        let (tx, rx) = channel::<u32>(16);
        let tx2 = tx.clone();
        let _rx2 = rx.clone();
        assert_eq!(tx.producers(), 2);
        assert_eq!(tx.consumers(), 2);
        drop(tx2);
        assert_eq!(tx.producers(), 1);
    }

    #[test]
    fn disconnect_requires_all_producers_gone() {
        let (mut tx, mut rx) = channel::<u32>(16);
        let tx2 = tx.clone();
        tx.enqueue(1);
        drop(tx);
        assert_eq!(rx.dequeue(), Ok(1));
        // tx2 still alive: Empty, not Disconnected.
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Empty));
        drop(tx2);
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
    }

    #[test]
    fn multi_producer_multi_consumer_no_loss_no_dup() {
        const PRODUCERS: u64 = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: u64 = 25_000;
        let (tx, rx) = channel::<u64>(1 << 10);
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let mut tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        tx.enqueue(p * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let mut rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.dequeue() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        assert_eq!(all.len() as u64, PRODUCERS * PER_PRODUCER);
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "duplicate items dequeued");
        all.sort_unstable();
        assert_eq!(all[0], 0);
        assert_eq!(*all.last().unwrap(), PRODUCERS * PER_PRODUCER - 1);
    }

    #[test]
    fn per_producer_fifo_order() {
        // With multiple producers only per-producer order is guaranteed.
        const PER: u64 = 30_000;
        let (tx, mut rx) = channel::<(u8, u64)>(256);
        let mut tx2 = tx.clone();
        let mut tx1 = tx;
        let p1 = std::thread::spawn(move || {
            for i in 0..PER {
                tx1.enqueue((1, i));
            }
        });
        let p2 = std::thread::spawn(move || {
            for i in 0..PER {
                tx2.enqueue((2, i));
            }
        });
        let mut next = [0u64; 3];
        let mut count = 0;
        while count < 2 * PER {
            if let Ok((who, seq)) = rx.dequeue() {
                assert_eq!(seq, next[who as usize], "producer {who} out of order");
                next[who as usize] += 1;
                count += 1;
            }
        }
        p1.join().unwrap();
        p2.join().unwrap();
    }

    #[test]
    fn all_layouts_mpmc_stress() {
        fn run<C: CellSlot<u64> + 'static, M: IndexMap>() {
            let (tx, rx) = channel_with::<u64, C, M>(64);
            let mut tx2 = tx.clone();
            let mut tx1 = tx;
            let p1 = std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    tx1.enqueue(i * 2);
                }
            });
            let p2 = std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    tx2.enqueue(i * 2 + 1);
                }
            });
            let mut rx = rx;
            let mut seen = HashSet::new();
            for _ in 0..20_000 {
                let v = rx.dequeue().unwrap();
                assert!(seen.insert(v), "duplicate {v}");
            }
            p1.join().unwrap();
            p2.join().unwrap();
        }
        run::<PaddedCell<u64>, LinearMap>();
        run::<PaddedCell<u64>, RotateMap>();
        run::<CompactCell<u64>, LinearMap>();
        run::<CompactCell<u64>, RotateMap>();
    }

    #[test]
    fn drop_releases_unconsumed_items_mpmc() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (tx, mut rx) = channel::<Counted>(16);
            let mut tx2 = tx.clone();
            let mut tx1 = tx;
            for _ in 0..3 {
                tx1.enqueue(Counted);
                tx2.enqueue(Counted);
            }
            drop(rx.dequeue());
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 6);
    }
}
