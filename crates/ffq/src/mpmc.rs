//! FFQ-m: the multi-producer/multi-consumer extension (Algorithm 2).
//!
//! Producers claim ranks with `fetch_add` on the now-shared `tail` and use a
//! 128-bit double-word CAS over the adjacent `(rank, gap)` cell words to
//! resolve the two races §III-B describes:
//!
//! 1. *Lost update*: a stalled producer overwriting a cell that a faster
//!    producer re-used for a later rank — prevented by claiming the cell
//!    with the `-2` sentinel (`CAS (-1,g) → (-2,g)`) before touching data.
//! 2. *Enqueue in the past*: publishing a rank at a cell whose `gap` has
//!    already been advanced beyond it, producing an item no consumer will
//!    ever dequeue — prevented because the claim CAS atomically verifies
//!    `gap` is still the value `g < rank` that was read, and because gap
//!    announcements themselves are double-word CASes that fail if the cell's
//!    occupancy changed.
//!
//! The price of generality (paper §III-B, last paragraph): enqueue is only
//! lock-free under the never-full assumption, and dequeue is no longer
//! lock-free — a producer preempted between claim and publish stalls the
//! consumer assigned that rank.
//!
//! Dequeue is Algorithm 1's `FFQ_DEQ`, unchanged — shared with the SPMC
//! variant via [`crate::shared::dequeue_core`]. The batched enqueue claims a
//! rank *run* with one `fetch_add(k)` and resolves every claimed rank with
//! the same per-cell DWCAS protocol; a claimed rank is never left unresolved
//! (it is published or becomes a gap before the call blocks or returns),
//! because an unresolved rank stalls the consumer assigned to it.
//!
//! The multi-producer enqueue engine lives in this module (it is the one
//! part of the protocol `ffq-shm` does not reuse); the consumer side wraps
//! [`crate::raw::RawConsumer`] with `MP = true` like the SPMC variant wraps
//! it with `MP = false`.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ffq_sync::atomic::Ordering;

use ffq_sync::{Backoff, WaitRound, WaitStrategy};

use crate::cell::{CellSlot, PaddedCell, RANK_CLAIMED, RANK_FREE};
use crate::error::{Disconnected, Full, TryDequeueError};
use crate::layout::{normalize_capacity, IndexMap, LinearMap};
use crate::raw::{RawConsumer, RawQueue};
use crate::shared::Shared;
use crate::stats::{ConsumerStats, ProducerStats};
use crate::WaitConfig;

/// Creates an MPMC queue with the default layout (cache-line aligned cells,
/// linear mapping) and at least the given capacity (rounded up to a power of
/// two; see [`normalize_capacity`][crate::layout::normalize_capacity]).
///
/// Clone either handle for more producers/consumers.
///
/// # Panics
/// If `capacity` is 0 or exceeds [`crate::layout::MAX_CAPACITY`].
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    channel_with::<T, PaddedCell<T>, LinearMap>(capacity)
}

/// Creates a zero-copy bytes-mode MPMC queue: `capacity` cells, each owning
/// a slot buffer of at least `slot_bytes` bytes (both rounded up to powers
/// of two; see [`crate::layout::normalize_slot_bytes`]). Clone either
/// handle for more producers/consumers.
///
/// Payloads up to `slot_bytes` move through their rank's slot buffer with
/// one copy end to end; longer ones spill to a heap allocation handed over
/// through the descriptor ([`crate::bytes::SpillMode::Heap`]), never
/// truncated. An abandoned reservation publishes a tombstone descriptor
/// (consumers skip it) rather than stalling the rank's assigned consumer.
pub fn bytes_channel(
    capacity: usize,
    slot_bytes: usize,
) -> Result<(crate::bytes::MpProducer, crate::bytes::McConsumer<true>), crate::CapacityError> {
    crate::bytes::heap_mpmc(capacity, slot_bytes)
}

/// Creates an MPMC queue with explicit cell layout `C` and index mapping `M`.
///
/// # Panics
/// If `capacity` is 0 or exceeds [`crate::layout::MAX_CAPACITY`].
pub fn channel_with<T: Send, C: CellSlot<T>, M: IndexMap>(
    capacity: usize,
) -> (Producer<T, C, M>, Consumer<T, C, M>) {
    let cap_log2 =
        normalize_capacity(capacity).unwrap_or_else(|e| panic!("ffq::mpmc::channel: {e}"));
    let shared = Arc::new(Shared::<T, C, M>::with_log2(cap_log2, 1));
    let raw = shared.raw();
    let tx = Producer {
        queue: raw,
        _shared: Arc::clone(&shared),
        stats: ProducerStats::default(),
        wait: WaitConfig::default(),
    };
    let rx = Consumer {
        // SAFETY: the Arc in each handle keeps the allocation (and thus the
        // raw view) alive and pinned; counts pre-set by `with_log2(_, 1)`.
        raw: unsafe { RawConsumer::attach(raw) },
        shared,
    };
    (tx, rx)
}

/// A producing handle of an MPMC queue. Clone it to add producers.
pub struct Producer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    queue: RawQueue<T, C, M>,
    /// Keeps the queue allocation alive (the raw view points into it).
    _shared: Arc<Shared<T, C, M>>,
    stats: ProducerStats,
    /// Wait policy for blocking enqueues on a full queue.
    wait: WaitConfig,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Producer<T, C, M> {
    /// Enqueues `value`, retrying until a cell is secured — spinning, then
    /// parking on the not-full eventcount per the configured
    /// [`WaitConfig`] between full passes. Lock-free under the paper's
    /// never-full assumption (the wait machinery only engages once a pass
    /// finds the queue full).
    pub fn enqueue(&mut self, value: T) {
        let mut value = value;
        let mut strat = WaitStrategy::new(self.wait);
        let cap = self.queue.capacity();
        loop {
            if !self.looks_full() {
                match self.enqueue_ranks(value, cap) {
                    Ok(()) => break,
                    Err(Full(v)) => value = v,
                }
            }
            self.full_wait_round(&mut strat, None);
        }
        self.stats.parks += strat.parks();
    }

    /// Enqueues `value`, giving up (and returning it back) once `timeout`
    /// has elapsed with the queue still full.
    pub fn enqueue_timeout(&mut self, value: T, timeout: Duration) -> Result<(), Full<T>> {
        // Deadline materializes on the first full round: a successful
        // enqueue must not pay a clock read (see `raw::enqueue_timeout`).
        let mut deadline = None;
        let mut value = value;
        let mut strat = WaitStrategy::new(self.wait);
        let cap = self.queue.capacity();
        let res = loop {
            if !self.looks_full() {
                match self.enqueue_ranks(value, cap) {
                    Ok(()) => break Ok(()),
                    Err(Full(v)) => value = v,
                }
            }
            let d = *deadline.get_or_insert_with(|| Instant::now() + timeout);
            if self.full_wait_round(&mut strat, Some(d)) == WaitRound::Expired {
                self.stats.full_rejections += 1;
                break Err(Full(value));
            }
        };
        self.stats.parks += strat.parks();
        res
    }

    /// Replaces the wait policy used by blocking enqueues; see
    /// [`WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.wait = cfg;
    }

    /// One wait round on the not-full eventcount; ready as soon as the
    /// shared counters stop reporting full.
    #[inline]
    fn full_wait_round(&self, strat: &mut WaitStrategy, deadline: Option<Instant>) -> WaitRound {
        let state = self.queue.state();
        let cap = self.queue.capacity() as i64;
        strat.wait_round(
            state.not_full(),
            state.wait_is_shared(),
            deadline,
            &mut || {
                let tail = state.tail().load(Ordering::Acquire);
                let head = state.head().load(Ordering::Acquire);
                tail - head < cap
            },
        )
    }

    /// Fullness pre-check on the shared counters; conservative in the safe
    /// direction (see [`crate::spmc::Producer::try_enqueue`]). Avoids
    /// consuming tail ranks when a scan clearly cannot succeed.
    #[inline]
    fn looks_full(&self) -> bool {
        let tail = self.queue.state().tail().load(Ordering::Acquire);
        let head = self.queue.state().head().load(Ordering::Acquire);
        tail - head >= self.queue.capacity() as i64
    }

    /// Attempts to enqueue, consuming at most one array's worth of ranks.
    ///
    /// May still spin briefly while another producer that has *claimed* the
    /// inspected cell publishes its rank — an acquired rank can never be
    /// abandoned mid-protocol (the consumer assigned to it would stall), so
    /// boundedness is in ranks, not in loop iterations.
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        if self.looks_full() {
            self.stats.full_rejections += 1;
            return Err(Full(value));
        }
        let cap = self.queue.capacity();
        let r = self.enqueue_ranks(value, cap);
        if r.is_err() {
            self.stats.full_rejections += 1;
        }
        r
    }

    /// Attempts to enqueue without ever consuming a rank it cannot
    /// publish.
    ///
    /// Plain [`try_enqueue`](Self::try_enqueue) inherits FFQ-m's
    /// full-queue behavior: each probe of an occupied cell *burns* the
    /// claimed rank as a gap, so probing a full queue advances the tail
    /// without adding items. That is harmless for a standalone queue but
    /// poisons the cross-shard rank comparison of [`crate::shard`], which
    /// needs ranks taken ≈ items enqueued on every shard. This variant
    /// inspects the cell at the current tail *before* claiming: if the
    /// cell is not free, no rank is taken and the value is handed back.
    ///
    /// With a single producer handle the check is exact — no gap is ever
    /// created, because consumers only ever *free* cells, so the claimed
    /// rank still lands on the inspected (free) cell. With concurrent
    /// producer clones the claimed rank can exceed the inspected one and
    /// the call degrades to a single `try_enqueue` probe (at most one
    /// burned rank).
    pub fn try_enqueue_gapless(&mut self, value: T) -> Result<(), Full<T>> {
        let tail = self.queue.state().tail().load(Ordering::Relaxed);
        if self.queue.cell(tail).words().load_lo(Ordering::Acquire) != RANK_FREE {
            self.stats.full_rejections += 1;
            return Err(Full(value));
        }
        let rank = self.queue.state().tail().fetch_add(1, Ordering::Relaxed);
        debug_assert!(rank >= 0, "tail overflowed i64");
        self.stats.ranks_taken += 1;
        self.stats.tail_rmws += 1;
        match self.resolve_rank(rank, value) {
            Ok(()) => Ok(()),
            Err(value) => {
                self.stats.full_rejections += 1;
                Err(Full(value))
            }
        }
    }

    /// Number of consecutive free cells starting at rank `tail`, capped
    /// at `max`. Exact for a single producer handle (consumers only free
    /// cells, never occupy them), conservative otherwise.
    fn free_run(&self, tail: i64, max: usize) -> usize {
        let mut n = 0usize;
        while n < max {
            let words = self.queue.cell(tail + n as i64).words();
            if words.load_lo(Ordering::Acquire) != RANK_FREE {
                break;
            }
            n += 1;
        }
        n
    }

    /// Publishes up to `max` items from the front of `buf` as one claimed
    /// run, without consuming ranks it cannot publish (the batched
    /// counterpart of [`try_enqueue_gapless`](Self::try_enqueue_gapless)).
    ///
    /// Sizes the run by scanning the free cells ahead of the tail, claims
    /// exactly that many ranks with one `fetch_add`, and resolves them in
    /// order. Returns the number published — zero when the cell at the
    /// tail is still occupied (queue full, or a consumer is mid-way
    /// through reading a claimed run). Never blocks with a single
    /// producer handle; a racing clone can push one item down the
    /// blocking per-item fallback.
    pub fn enqueue_run_gapless(&mut self, buf: &mut VecDeque<T>, max: usize) -> usize {
        // Every claimed rank resolves before this returns, so cap runs at
        // half the array like `enqueue_many`.
        let run_max = (self.queue.capacity() / 2).max(1);
        let want = buf.len().min(max).min(run_max);
        if want == 0 {
            return 0;
        }
        let tail = self.queue.state().tail().load(Ordering::Relaxed);
        let k = self.free_run(tail, want);
        if k == 0 {
            self.stats.full_rejections += 1;
            return 0;
        }
        let start = self
            .queue
            .state()
            .tail()
            .fetch_add(k as i64, Ordering::Relaxed);
        debug_assert!(start >= 0, "tail overflowed i64");
        self.stats.ranks_taken += k as u64;
        self.stats.tail_rmws += 1;
        let mut published = 0usize;
        for j in 0..k {
            let value = buf.pop_front().expect("run sized to buf");
            match self.resolve_rank(start + j as i64, value) {
                Ok(()) => published += 1,
                Err(value) => {
                    // Only reachable when a producer clone raced the free
                    // scan: void the rest of the run, then re-enter this
                    // item per-item so this handle's order is preserved.
                    for l in (j + 1)..k {
                        self.void_rank(start + l as i64);
                    }
                    self.enqueue(value);
                    published += 1;
                    break;
                }
            }
        }
        if published > 0 {
            self.stats.batch_enqueues += 1;
            self.stats.batch_items += published as u64;
        }
        published
    }

    /// Enqueues every item of `iter` (blocking as needed); returns the
    /// count.
    ///
    /// The batched FFQ-m enqueue: a single `tail.fetch_add(k)` claims a run
    /// of `k` ranks, then each rank is resolved in order with the per-cell
    /// DWCAS protocol. If a rank is lost to a gap mid-run, the *remaining*
    /// ranks of the run are resolved as gaps too (never left claimed — an
    /// unresolved rank stalls the consumer assigned it) and the affected
    /// items re-enter through the per-item path, preserving this producer's
    /// FIFO order.
    pub fn enqueue_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        let mut iter = iter.into_iter();
        let cap = self.queue.capacity();
        // Every claimed rank must resolve before anything can block, so a
        // run is never sized past half the array.
        let run_max = (cap / 2).max(1);
        let mut n = 0usize;
        let mut chunk: VecDeque<T> = VecDeque::with_capacity(run_max);
        loop {
            chunk.extend((&mut iter).take(run_max));
            if chunk.is_empty() {
                return n;
            }
            let mut strat = WaitStrategy::new(self.wait);
            while !chunk.is_empty() {
                if self.looks_full() {
                    self.full_wait_round(&mut strat, None);
                    continue;
                }
                strat.reset();
                // Size the run to the items in hand and the free space the
                // counters report, then claim it with one fetch_add.
                let tail = self.queue.state().tail().load(Ordering::Relaxed);
                let head = self.queue.state().head().load(Ordering::Acquire);
                let free = (cap as i64 - (tail - head)).max(1) as usize;
                let k = chunk.len().min(free);
                let start = self
                    .queue
                    .state()
                    .tail()
                    .fetch_add(k as i64, Ordering::Relaxed);
                debug_assert!(start >= 0, "tail overflowed i64");
                self.stats.ranks_taken += k as u64;
                self.stats.tail_rmws += 1;
                let mut resolved = 0usize;
                let mut published = 0usize;
                while resolved < k {
                    let value = chunk.pop_front().expect("run sized to chunk");
                    let rank = start + resolved as i64;
                    resolved += 1;
                    match self.resolve_rank(rank, value) {
                        Ok(()) => {
                            n += 1;
                            published += 1;
                        }
                        Err(value) => {
                            // Our rank became a gap. Void the rest of the
                            // run, then re-enqueue this item per-item
                            // *before* the chunk's remaining items so this
                            // producer's order is preserved.
                            for j in resolved..k {
                                self.void_rank(start + j as i64);
                            }
                            self.enqueue(value);
                            n += 1;
                            break;
                        }
                    }
                }
                if published > 0 {
                    self.stats.batch_enqueues += 1;
                    self.stats.batch_items += published as u64;
                }
            }
            self.stats.parks += strat.parks();
        }
    }

    /// `FFQ_ENQ` of Algorithm 2, bounded to `limit` rank acquisitions.
    fn enqueue_ranks(&mut self, value: T, limit: usize) -> Result<(), Full<T>> {
        let mut value = value;
        for _ in 0..limit {
            // Line 4: acquire a unique rank. Relaxed — uniqueness comes from
            // atomicity; publication synchronizes through the cell words.
            let rank = self.queue.state().tail().fetch_add(1, Ordering::Relaxed);
            debug_assert!(rank >= 0, "tail overflowed i64");
            self.stats.ranks_taken += 1;
            self.stats.tail_rmws += 1;
            match self.resolve_rank(rank, value) {
                Ok(()) => return Ok(()),
                Err(v) => value = v,
            }
        }
        Err(Full(value))
    }

    /// Resolves one claimed tail rank (Algorithm 2 lines 5–12): publishes
    /// `value` at the rank's cell, or — when the cell is occupied or the
    /// rank superseded — leaves the rank a *gap* and hands the value back.
    /// Either way the rank is resolved when this returns; consumers
    /// assigned it will not stall.
    fn resolve_rank(&mut self, rank: i64, value: T) -> Result<(), T> {
        let cell = self.queue.cell(rank);
        let words = cell.words();
        let mut backoff = Backoff::new();

        // Line 6: while no gap announcement supersedes our rank.
        loop {
            let g = words.load_hi(Ordering::Acquire);
            if g >= rank {
                // Another producer skipped this cell for a rank at or past
                // ours: enqueueing here would be "in the past". Abandon
                // *the cell*, not the rank — the rank is the gap now, so
                // consumers step over it.
                return Err(value);
            }
            let r = words.load_lo(Ordering::Acquire);
            if r >= 0 {
                // Line 8: occupied by an unconsumed item — announce our
                // rank as a gap. The double CAS fails if either the
                // occupant changed (cell may have become free: retry and
                // use it) or another producer raced the gap forward.
                if words.compare_exchange((r, g), (r, rank)).is_ok() {
                    self.stats.gaps_created += 1;
                    // A consumer parked on this rank is unblocked by the
                    // gap announcement: it can now step over the cell.
                    // Broadcast — a single wake could land on a consumer
                    // parked on a different rank (see
                    // `QueueState::wake_consumers_all`).
                    self.queue.state().wake_consumers_all();
                    return Err(value);
                }
                self.stats.cas_failures += 1;
                continue;
            }
            if r == RANK_CLAIMED {
                // Another producer is between claim and publish. Its
                // publish is imminent (no user code in that window), but
                // it may be descheduled — this is precisely where FFQ-m
                // stops being lock-free (§III-B).
                backoff.wait();
                continue;
            }
            debug_assert_eq!(r, RANK_FREE);
            // Line 9: claim the free cell, atomically verifying the gap
            // did not move (second race above). Rank values are unique
            // over the queue's lifetime and gap is monotonic per cell,
            // so the pair CAS is ABA-free.
            match words.compare_exchange((RANK_FREE, g), (RANK_CLAIMED, g)) {
                Ok(()) => {
                    // Lines 10–11: write data, then publish the rank.
                    // The Release store is the linearization point and
                    // pairs with the consumer's Acquire rank load.
                    unsafe { (*cell.data()).write(value) };
                    words.store_lo(rank, Ordering::Release);
                    self.stats.enqueued += 1;
                    // Broadcast, not a counted wake: the published rank may
                    // already sit in one specific consumer's pending FIFO
                    // (claims run ahead of publication here), and a single
                    // wake can land on a consumer parked on a *different*
                    // rank, which re-parks while the owner sleeps — the
                    // same wrong-wakee hazard the gap paths always
                    // broadcast around (`QueueState::wake_consumers_all`).
                    self.queue.state().wake_consumers_all();
                    return Ok(());
                }
                Err(_) => {
                    self.stats.cas_failures += 1;
                    continue;
                }
            }
        }
    }

    /// Resolves a claimed rank *without* an item by announcing it as a gap
    /// at its cell (batch path only: the run continues past a lost rank).
    /// Terminates because the cell's gap word is monotonic: either our CAS
    /// lands or someone else advanced it to `>= rank`.
    fn void_rank(&mut self, rank: i64) {
        let cell = self.queue.cell(rank);
        let words = cell.words();
        let mut backoff = Backoff::new();
        loop {
            let g = words.load_hi(Ordering::Acquire);
            if g >= rank {
                return;
            }
            let r = words.load_lo(Ordering::Acquire);
            if r == RANK_CLAIMED {
                backoff.wait();
                continue;
            }
            if words.compare_exchange((r, g), (r, rank)).is_ok() {
                self.stats.gaps_created += 1;
                // Broadcast: gaps unblock a specific parked rank, and a
                // single wake may pick the wrong consumer.
                self.queue.state().wake_consumers_all();
                return;
            }
            self.stats.cas_failures += 1;
        }
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Approximate number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.queue.len_hint()
    }

    /// Number of live producer handles.
    pub fn producers(&self) -> usize {
        // Acquire per the QueueState handle-count rule.
        self.queue.state().producers().load(Ordering::Acquire) as usize
    }

    /// Number of live consumer handles.
    pub fn consumers(&self) -> usize {
        // Acquire per the QueueState handle-count rule.
        self.queue.state().consumers().load(Ordering::Acquire) as usize
    }

    /// Snapshot of this producer's counters.
    pub fn stats(&self) -> ProducerStats {
        self.stats
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Clone for Producer<T, C, M> {
    fn clone(&self) -> Self {
        self.queue
            .state()
            .producers()
            .fetch_add(1, Ordering::Relaxed);
        Self {
            queue: self.queue,
            _shared: Arc::clone(&self._shared),
            stats: ProducerStats::default(),
            wait: self.wait,
        }
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Drop for Producer<T, C, M> {
    fn drop(&mut self) {
        let state = self.queue.state();
        // SeqCst (cold path — handle death only): the Release half pairs
        // with the consumers' Acquire disconnect loads as before; the SC
        // position additionally bounds how long a spinning wait predicate
        // can keep reading the old count, since every `begin_wait` issues
        // an SC fence. A plain Release decrement can stay invisible to a
        // reader that never parks — the sharded frontend's aggregate
        // predicate spins across shards exactly like that.
        state.producers().fetch_sub(1, Ordering::SeqCst);
        // Parked consumers must observe a possible last-producer
        // disconnect promptly rather than after their bounded-park timeout.
        state.wake_all();
    }
}

/// Claims one tail rank *and* its cell for a deferred in-place write: the
/// multi-producer half of the zero-copy reserve path (`crate::bytes`).
///
/// Runs the rank-acquisition loop of [`Producer::enqueue_ranks`] but stops
/// right after `resolve_rank`'s claim CAS — the cell is left `RANK_CLAIMED`
/// with nothing written, which is exactly the state a publishing producer
/// sits in between lines 9 and 11 of Algorithm 2, except the window now
/// lasts until the caller commits (or aborts) through
/// [`publish_claimed_rank`]. Ranks that land on occupied or superseded
/// cells are resolved as gaps along the way, so no consumer ever stalls on
/// a rank this function consumed.
///
/// Unlike an enqueue the claim must *always* be resolved eventually —
/// abandonment is expressed by publishing a `DESC_ABORT` descriptor, never
/// by leaving the cell claimed.
pub(crate) fn claim_rank_cell<T: Send, C: CellSlot<T>, M: IndexMap>(
    queue: &RawQueue<T, C, M>,
    stats: &mut ProducerStats,
    limit: usize,
) -> Result<i64, Full<()>> {
    for _ in 0..limit {
        let rank = queue.state().tail().fetch_add(1, Ordering::Relaxed);
        debug_assert!(rank >= 0, "tail overflowed i64");
        stats.ranks_taken += 1;
        stats.tail_rmws += 1;
        let cell = queue.cell(rank);
        let words = cell.words();
        let mut backoff = Backoff::new();
        let claimed = loop {
            // Same pair-CAS discipline (and the same ABA-freedom argument)
            // as `resolve_rank`; see the comments there.
            let g = words.load_hi(Ordering::Acquire);
            if g >= rank {
                break false;
            }
            let r = words.load_lo(Ordering::Acquire);
            if r >= 0 {
                if words.compare_exchange((r, g), (r, rank)).is_ok() {
                    stats.gaps_created += 1;
                    queue.state().wake_consumers_all();
                    break false;
                }
                stats.cas_failures += 1;
                continue;
            }
            if r == RANK_CLAIMED {
                backoff.wait();
                continue;
            }
            debug_assert_eq!(r, RANK_FREE);
            match words.compare_exchange((RANK_FREE, g), (RANK_CLAIMED, g)) {
                Ok(()) => break true,
                Err(_) => {
                    stats.cas_failures += 1;
                    continue;
                }
            }
        };
        if claimed {
            return Ok(rank);
        }
    }
    Err(Full(()))
}

/// Publishes `value` at a cell previously claimed by [`claim_rank_cell`]
/// (lines 10–11 of Algorithm 2, deferred): the Release rank store orders
/// every prior write by this thread — the descriptor *and* the payload
/// bytes written into the rank's slot buffer — before the publication.
pub(crate) fn publish_claimed_rank<T: Send, C: CellSlot<T>, M: IndexMap>(
    queue: &RawQueue<T, C, M>,
    stats: &mut ProducerStats,
    rank: i64,
    value: T,
) {
    let cell = queue.cell(rank);
    debug_assert_eq!(cell.words().load_lo(Ordering::Relaxed), RANK_CLAIMED);
    // SAFETY: the claim CAS made this thread the cell's unique owner until
    // the rank store below.
    unsafe { (*cell.data()).write(value) };
    cell.words().store_lo(rank, Ordering::Release);
    stats.enqueued += 1;
    // Broadcast for the same wrong-wakee reason as `resolve_rank`.
    queue.state().wake_consumers_all();
}

/// A consuming handle of an MPMC queue. Clone it to add consumers.
///
/// Identical protocol and pending-rank semantics to
/// [`crate::spmc::Consumer`], including the batch operations.
pub struct Consumer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawConsumer<T, C, M, true>,
    /// Keeps the queue allocation alive (the raw view points into it).
    shared: Arc<Shared<T, C, M>>,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Consumer<T, C, M> {
    /// Attempts to dequeue one item without blocking (pending-rank
    /// semantics; see [`crate::spmc::Consumer::try_dequeue`]).
    pub fn try_dequeue(&mut self) -> Result<T, TryDequeueError> {
        self.raw.try_dequeue()
    }

    /// Dequeues one item, waiting — spinning, then parking per the
    /// configured [`WaitConfig`] — while the queue is empty.
    pub fn dequeue(&mut self) -> Result<T, Disconnected> {
        self.raw.dequeue()
    }

    /// Dequeues one item, giving up after `timeout`.
    ///
    /// While spinning, the deadline is only re-checked every few back-off
    /// rounds (`Instant::now()` costs far more than a spin iteration); once
    /// parked, every sleep is clamped to the remaining time, so the return
    /// lands within about a millisecond of the deadline.
    pub fn dequeue_timeout(&mut self, timeout: Duration) -> Result<T, TryDequeueError> {
        self.raw.dequeue_timeout(timeout)
    }

    /// Replaces the wait policy used by blocking dequeues; see
    /// [`WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.raw.set_wait_config(cfg);
    }

    /// Claims a run of `k` ranks with a single `head.fetch_add(k)` and
    /// parks it as pending (see [`crate::spmc::Consumer::claim_batch`]).
    ///
    /// FFQ-m caveat: claimed ranks below the shared tail may still be
    /// mid-resolution by their producers, so a batch harvest can park
    /// partway through a run and resume on a later call.
    pub fn claim_batch(&mut self, k: usize) {
        self.raw.claim_batch(k);
    }

    /// Harvests up to `max` ready items into `buf`; returns the count.
    /// Never blocks, and claims nothing on an empty queue (see
    /// [`crate::spmc::Consumer::dequeue_batch`]).
    pub fn dequeue_batch(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        self.raw.dequeue_batch(buf, max)
    }

    /// [`dequeue_batch`](Self::dequeue_batch) whose fresh rank claims stop
    /// short of the absolute rank `head_cap`: no rank `>= head_cap` is
    /// claimed by this call, under any interleaving with other consumers
    /// (the claim is a CAS, not a blind `fetch_add`). Runs parked by
    /// earlier calls still harvest — they honored the cap in force when
    /// they were claimed.
    ///
    /// Building block for [`crate::shard`]'s k-relaxed FIFO bound: a
    /// sharded consumer caps each shard's claims relative to the laggard
    /// shard's [`head_rank`](Self::head_rank).
    pub fn dequeue_batch_capped(&mut self, buf: &mut Vec<T>, max: usize, head_cap: i64) -> usize {
        self.raw.dequeue_batch_capped(buf, max, head_cap)
    }

    /// The next unclaimed rank — a monotone snapshot (a stale read only
    /// under-reports, never over-reports).
    pub fn head_rank(&self) -> i64 {
        self.raw.head_rank()
    }

    /// Number of live producer handles.
    pub fn producers(&self) -> usize {
        // Acquire per the QueueState handle-count rule: observing zero here
        // makes every completed enqueue visible.
        self.raw.queue().state().producers().load(Ordering::Acquire) as usize
    }

    /// Number of claimed-but-unsatisfied ranks currently parked on this
    /// handle.
    pub fn pending_ranks(&self) -> usize {
        self.raw.pending_ranks()
    }

    /// The wake condition of a blocked dequeue on this handle — `true`
    /// when a retry can make progress: the front pending rank's cell was
    /// published or gap-announced, unclaimed items are visible, or every
    /// producer is gone. Sharded consumers park on an aggregate eventcount
    /// and use this as the per-shard readiness probe.
    pub fn wake_ready(&self) -> bool {
        self.raw.wake_ready()
    }

    /// [`wake_ready`](Self::wake_ready) minus the producers-gone term.
    /// Aggregators (the sharded consumer) `any()` this and `all()` the
    /// per-queue [`producers`](Self::producers) counts instead — any-ing
    /// the full condition would spin through the window where a sharded
    /// producer's drop has emptied some member queues' handle counts but
    /// not yet all.
    pub fn wake_ready_items(&self) -> bool {
        self.raw.wake_ready_items()
    }

    /// Moves up to `max` currently available items into `buf`, one rank
    /// claim per item; returns the count. Never blocks, and never claims a
    /// rank on a queue whose tail shows nothing available.
    ///
    /// This is the *per-item* drain; prefer
    /// [`dequeue_batch`](Self::dequeue_batch), which claims rank runs.
    pub fn drain_into(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        self.raw.drain_into(buf, max)
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Approximate number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.raw.len_hint()
    }

    /// Snapshot of this consumer's counters.
    pub fn stats(&self) -> ConsumerStats {
        self.raw.stats()
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Clone for Consumer<T, C, M> {
    fn clone(&self) -> Self {
        self.raw
            .queue()
            .state()
            .consumers()
            .fetch_add(1, Ordering::Relaxed);
        Self {
            // SAFETY: same queue, kept alive by the cloned Arc; a fresh
            // shared-head consumer may attach at any time.
            raw: unsafe { RawConsumer::attach(*self.raw.queue()) },
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Drop for Consumer<T, C, M> {
    fn drop(&mut self) {
        // Best-effort recovery of already-published pending ranks; see
        // spmc::Consumer::drop. Uses the DWCAS-coherent store (MP variant).
        self.raw.recover_pending();
        // SeqCst per the QueueState handle-count rule: the Release half
        // orders the recovery above before anyone observes the drop; the
        // SC position keeps handle death visible to spinning producer-side
        // wait predicates in bounded time (see Producer::drop).
        self.raw
            .queue()
            .state()
            .consumers()
            .fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> IntoIterator for Consumer<T, C, M> {
    type Item = T;
    type IntoIter = IntoIter<T, C, M>;

    /// A blocking iterator: yields items until all producers disconnect
    /// and the queue is drained.
    fn into_iter(self) -> Self::IntoIter {
        IntoIter { consumer: self }
    }
}

/// Blocking consuming iterator; see [`Consumer::into_iter`].
pub struct IntoIter<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    consumer: Consumer<T, C, M>,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Iterator for IntoIter<T, C, M> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.consumer.dequeue().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CompactCell;
    use crate::layout::RotateMap;
    use std::collections::HashSet;

    #[test]
    fn fifo_single_producer_single_consumer() {
        let (mut tx, mut rx) = channel::<u32>(16);
        for i in 0..10 {
            tx.enqueue(i);
        }
        for i in 0..10 {
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Empty));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = channel::<u32>(100);
        assert_eq!(tx.capacity(), 128);
    }

    #[test]
    fn try_enqueue_full_bounded() {
        let (mut tx, mut rx) = channel::<u32>(4);
        for i in 0..4 {
            tx.try_enqueue(i).unwrap();
        }
        let e = tx.try_enqueue(9).unwrap_err();
        assert_eq!(e.into_inner(), 9);
        for i in 0..4 {
            assert_eq!(rx.dequeue(), Ok(i));
        }
    }

    #[test]
    fn enqueue_many_claims_rank_runs() {
        let (mut tx, mut rx) = channel::<u64>(64);
        assert_eq!(tx.enqueue_many(0..30), 30);
        let s = tx.stats();
        assert_eq!(s.enqueued, 30);
        // One fetch_add for the whole run (30 < cap/2 = 32, nothing busy).
        assert_eq!(s.tail_rmws, 1);
        assert_eq!(s.ranks_taken, 30);
        assert_eq!(s.ranks_per_rmw(), Some(30.0));
        for i in 0..30 {
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
    }

    #[test]
    fn enqueue_many_preserves_producer_fifo_past_full() {
        // Batch far larger than capacity: runs must recycle as the
        // consumer drains, and order must hold throughout.
        let (mut tx, mut rx) = channel::<u64>(8);
        let c = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.dequeue() {
                got.push(v);
            }
            got
        });
        assert_eq!(tx.enqueue_many(0..2000), 2000);
        drop(tx);
        assert_eq!(c.join().unwrap(), (0..2000).collect::<Vec<_>>());
    }

    #[test]
    fn dequeue_batch_mpmc() {
        let (mut tx, mut rx) = channel::<u64>(64);
        tx.enqueue_many(0..20);
        let mut buf = Vec::new();
        assert_eq!(rx.dequeue_batch(&mut buf, 64), 20);
        assert_eq!(buf, (0..20).collect::<Vec<_>>());
        assert_eq!(rx.stats().head_rmws, 1);
        // Empty queue: no claim.
        buf.clear();
        assert_eq!(rx.dequeue_batch(&mut buf, 8), 0);
        assert_eq!(rx.pending_ranks(), 0);
    }

    #[test]
    fn handles_clone_and_count() {
        let (tx, rx) = channel::<u32>(16);
        let tx2 = tx.clone();
        let _rx2 = rx.clone();
        assert_eq!(tx.producers(), 2);
        assert_eq!(tx.consumers(), 2);
        drop(tx2);
        assert_eq!(tx.producers(), 1);
    }

    #[test]
    fn disconnect_requires_all_producers_gone() {
        let (mut tx, mut rx) = channel::<u32>(16);
        let tx2 = tx.clone();
        tx.enqueue(1);
        drop(tx);
        assert_eq!(rx.dequeue(), Ok(1));
        // tx2 still alive: Empty, not Disconnected.
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Empty));
        drop(tx2);
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
    }

    #[test]
    fn multi_producer_multi_consumer_no_loss_no_dup() {
        const PRODUCERS: u64 = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: u64 = 25_000;
        let (tx, rx) = channel::<u64>(1 << 10);
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let mut tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        tx.enqueue(p * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let mut rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.dequeue() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        assert_eq!(all.len() as u64, PRODUCERS * PER_PRODUCER);
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "duplicate items dequeued");
        all.sort_unstable();
        assert_eq!(all[0], 0);
        assert_eq!(*all.last().unwrap(), PRODUCERS * PER_PRODUCER - 1);
    }

    #[test]
    fn batched_producers_batched_consumers_no_loss_no_dup() {
        // The full batch matrix under contention: two batch producers, two
        // batch consumers, small queue to force gap traffic and run
        // splitting.
        const PRODUCERS: u64 = 2;
        const CONSUMERS: usize = 2;
        const PER_PRODUCER: u64 = 20_000;
        let (tx, rx) = channel::<u64>(64);
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let mut tx = tx.clone();
                std::thread::spawn(move || {
                    let mut next = 0u64;
                    while next < PER_PRODUCER {
                        let hi = (next + 50).min(PER_PRODUCER);
                        tx.enqueue_many((next..hi).map(|i| p * PER_PRODUCER + i));
                        next = hi;
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let mut rx = rx.clone();
                std::thread::spawn(move || {
                    let mut buf = Vec::new();
                    let mut got = Vec::new();
                    loop {
                        if rx.dequeue_batch(&mut buf, 32) > 0 {
                            got.append(&mut buf);
                            continue;
                        }
                        match rx.try_dequeue() {
                            Ok(v) => got.push(v),
                            Err(TryDequeueError::Empty) => std::hint::spin_loop(),
                            Err(TryDequeueError::Disconnected) => return got,
                        }
                    }
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        assert_eq!(all.len() as u64, PRODUCERS * PER_PRODUCER);
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "duplicate items dequeued");
        all.sort_unstable();
        for (i, v) in all.iter().enumerate() {
            let p = i as u64 / PER_PRODUCER;
            let off = i as u64 % PER_PRODUCER;
            assert_eq!(*v, p * PER_PRODUCER + off);
        }
    }

    #[test]
    fn per_producer_fifo_order() {
        // With multiple producers only per-producer order is guaranteed.
        const PER: u64 = 30_000;
        let (tx, mut rx) = channel::<(u8, u64)>(256);
        let mut tx2 = tx.clone();
        let mut tx1 = tx;
        let p1 = std::thread::spawn(move || {
            for i in 0..PER {
                tx1.enqueue((1, i));
            }
        });
        let p2 = std::thread::spawn(move || {
            for i in 0..PER {
                tx2.enqueue((2, i));
            }
        });
        let mut next = [0u64; 3];
        let mut count = 0;
        while count < 2 * PER {
            if let Ok((who, seq)) = rx.dequeue() {
                assert_eq!(seq, next[who as usize], "producer {who} out of order");
                next[who as usize] += 1;
                count += 1;
            }
        }
        p1.join().unwrap();
        p2.join().unwrap();
    }

    #[test]
    fn per_producer_fifo_order_with_batched_enqueue() {
        // enqueue_many must preserve per-producer order even when runs are
        // lost to gaps and re-enter through the per-item path.
        const PER: u64 = 30_000;
        let (tx, mut rx) = channel::<(u8, u64)>(32);
        let mut tx2 = tx.clone();
        let mut tx1 = tx;
        let p1 = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < PER {
                let hi = (next + 20).min(PER);
                tx1.enqueue_many((next..hi).map(|i| (1u8, i)));
                next = hi;
            }
        });
        let p2 = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < PER {
                let hi = (next + 7).min(PER);
                tx2.enqueue_many((next..hi).map(|i| (2u8, i)));
                next = hi;
            }
        });
        let mut next = [0u64; 3];
        let mut count = 0;
        while count < 2 * PER {
            if let Ok((who, seq)) = rx.dequeue() {
                assert_eq!(seq, next[who as usize], "producer {who} out of order");
                next[who as usize] += 1;
                count += 1;
            }
        }
        p1.join().unwrap();
        p2.join().unwrap();
    }

    #[test]
    fn all_layouts_mpmc_stress() {
        fn run<C: CellSlot<u64> + 'static, M: IndexMap>() {
            let (tx, rx) = channel_with::<u64, C, M>(64);
            let mut tx2 = tx.clone();
            let mut tx1 = tx;
            let p1 = std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    tx1.enqueue(i * 2);
                }
            });
            let p2 = std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    tx2.enqueue(i * 2 + 1);
                }
            });
            let mut rx = rx;
            let mut seen = HashSet::new();
            for _ in 0..20_000 {
                let v = rx.dequeue().unwrap();
                assert!(seen.insert(v), "duplicate {v}");
            }
            p1.join().unwrap();
            p2.join().unwrap();
        }
        run::<PaddedCell<u64>, LinearMap>();
        run::<PaddedCell<u64>, RotateMap>();
        run::<CompactCell<u64>, LinearMap>();
        run::<CompactCell<u64>, RotateMap>();
    }

    #[test]
    fn drop_releases_unconsumed_items_mpmc() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (tx, mut rx) = channel::<Counted>(16);
            let mut tx2 = tx.clone();
            let mut tx1 = tx;
            for _ in 0..3 {
                tx1.enqueue(Counted);
                tx2.enqueue(Counted);
            }
            drop(rx.dequeue());
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 6);
    }
}
