//! FFQ-s: the single-producer/multiple-consumer queue (Algorithm 1).
//!
//! This is the paper's primary contribution. The producer owns the `tail`
//! counter privately, so enqueuing needs no atomic read-modify-write at all —
//! it is *wait-free* as long as the queue never fills up (Proposition 1).
//! Consumers claim ranks with a single `fetch_add` on the shared `head` and
//! dequeuing is *lock-free* whenever items are available (Proposition 2).
//!
//! Both sides also expose amortized batch paths: [`Producer::enqueue_many`]
//! publishes runs of cells with one release pass, and
//! [`Consumer::dequeue_batch`] / [`Consumer::claim_batch`] take runs of
//! ranks with one `fetch_add` on the contended head.
//!
//! The handles here are thin wrappers over the raw engines in
//! [`crate::raw`]: they allocate the queue on the heap, pin it with an
//! `Arc`, and handle clone/drop accounting. The protocol itself lives
//! entirely in the raw layer, where `ffq-shm` reuses it over shared memory.
//!
//! ```
//! let (mut tx, rx) = ffq::spmc::channel::<u64>(1024);
//! let consumers: Vec<_> = (0..4).map(|_| rx.clone()).collect();
//! tx.enqueue(7);
//! let mut got = None;
//! for mut rx in consumers {
//!     if let Ok(v) = rx.try_dequeue() {
//!         got = Some(v);
//!     }
//! }
//! assert_eq!(got, Some(7));
//! ```

use ffq_sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::cell::{CellSlot, PaddedCell};
use crate::error::{Disconnected, Full, TryDequeueError};
use crate::layout::{normalize_capacity, IndexMap, LinearMap};
use crate::raw::{RawConsumer, RawProducer};
use crate::shared::Shared;
use crate::stats::{ConsumerStats, ProducerStats};
use crate::WaitConfig;

/// Creates an SPMC queue with the default layout (cache-line aligned cells,
/// linear index mapping) and at least the given capacity (rounded up to a
/// power of two; see [`normalize_capacity`][crate::layout::normalize_capacity]).
///
/// Returns the unique producer and one consumer; clone the consumer for more.
///
/// # Panics
/// If `capacity` is 0 or exceeds [`crate::layout::MAX_CAPACITY`].
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    channel_with::<T, PaddedCell<T>, LinearMap>(capacity)
}

/// Creates a zero-copy bytes-mode SPMC queue: `capacity` cells, each owning
/// a slot buffer of at least `slot_bytes` bytes (both rounded up to powers
/// of two; see [`crate::layout::normalize_slot_bytes`]). Clone the consumer
/// for more workers.
///
/// Payloads up to `slot_bytes` move through their rank's slot buffer with
/// one copy end to end; longer ones spill to a heap allocation handed over
/// through the descriptor ([`crate::bytes::SpillMode::Heap`]) — chains
/// would be split across consumers — never truncated.
pub fn bytes_channel(
    capacity: usize,
    slot_bytes: usize,
) -> Result<(crate::bytes::SpProducer, crate::bytes::McConsumer<false>), crate::CapacityError> {
    crate::bytes::heap_spmc(capacity, slot_bytes)
}

/// Creates an SPMC queue with explicit cell layout `C` and index mapping `M`
/// (see [`crate::cell`] and [`crate::layout`] for the paper's four
/// configurations).
///
/// # Panics
/// If `capacity` is 0 or exceeds [`crate::layout::MAX_CAPACITY`].
pub fn channel_with<T: Send, C: CellSlot<T>, M: IndexMap>(
    capacity: usize,
) -> (Producer<T, C, M>, Consumer<T, C, M>) {
    let cap_log2 =
        normalize_capacity(capacity).unwrap_or_else(|e| panic!("ffq::spmc::channel: {e}"));
    let shared = Arc::new(Shared::<T, C, M>::with_log2(cap_log2, 1));
    let raw = shared.raw();
    // SAFETY: the Arc in each handle keeps the allocation (and thus the raw
    // view) alive and pinned; exactly one producer exists, and the counts
    // were pre-set by `with_log2(_, 1)`.
    let mut raw_tx = unsafe { RawProducer::attach(raw) };
    // Consumers may clone: publish wakes must broadcast so they cannot land
    // on a consumer parked on a different pending rank (the wrong-wakee
    // hazard; see `RawProducer::set_multi_consumer`).
    raw_tx.set_multi_consumer(true);
    let tx = Producer {
        raw: raw_tx,
        _shared: Arc::clone(&shared),
    };
    let rx = Consumer {
        raw: unsafe { RawConsumer::attach(raw) },
        shared,
    };
    (tx, rx)
}

/// The unique producing side of an SPMC queue.
///
/// Not `Clone` and takes `&mut self`: the algorithm's wait-freedom and the
/// unsynchronized `tail` are only sound with exactly one enqueuing thread.
/// Use [`crate::mpmc`] when multiple producers must share a queue.
pub struct Producer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawProducer<T, C, M>,
    /// Keeps the queue allocation alive (the raw view points into it).
    _shared: Arc<Shared<T, C, M>>,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Producer<T, C, M> {
    /// Enqueues `value`, scanning past busy cells (announcing gaps) until a
    /// free cell is found.
    ///
    /// Wait-free under the paper's sizing assumption that some cell is
    /// always free. If the queue is genuinely full, this waits — spinning,
    /// then parking per the configured [`WaitConfig`] — between array scans
    /// until a consumer frees a cell (footnote 2 of the paper).
    pub fn enqueue(&mut self, value: T) {
        self.raw.enqueue(value);
    }

    /// Enqueues `value`, giving up (and returning it back) once `timeout`
    /// has elapsed with the queue still full.
    pub fn enqueue_timeout(&mut self, value: T, timeout: Duration) -> Result<(), Full<T>> {
        self.raw.enqueue_timeout(value, timeout)
    }

    /// Replaces the wait policy used by blocking enqueues; see
    /// [`WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.raw.set_wait_config(cfg);
    }

    /// Attempts to enqueue `value`.
    ///
    /// A counter pre-check rejects a clearly full queue in O(1) without
    /// side effects. If the pre-check passes but the (bounded, one-pass)
    /// scan still finds no free cell, the value is handed back — and that
    /// scan has already skipped (and announced gaps for) every busy cell it
    /// saw, consuming ranks; see [`Full`].
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        self.raw.try_enqueue(value)
    }

    /// Enqueues every item of `iter` (blocking as needed); returns the
    /// count.
    ///
    /// This is the batched enqueue path: payloads are written into runs of
    /// free cells first and all the run's ranks are published afterwards
    /// with one release pass (a single fence followed by plain rank
    /// stores), with the tail mirrored once per run instead of once per
    /// item. Items become visible in order, no later than the call's
    /// return; a gap for a busy cell is still announced immediately.
    pub fn enqueue_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        self.raw.enqueue_many(iter)
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Approximate number of items currently enqueued (see
    /// [`Consumer::len_hint`]).
    pub fn len_hint(&self) -> usize {
        self.raw.len_hint()
    }

    /// Number of live consumer handles.
    pub fn consumers(&self) -> usize {
        self.raw.consumers()
    }

    /// Snapshot of this producer's counters.
    pub fn stats(&self) -> ProducerStats {
        self.raw.stats()
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Drop for Producer<T, C, M> {
    fn drop(&mut self) {
        // SeqCst (cold path): the Release half makes every completed
        // enqueue happen-before a consumer's Acquire load that observes
        // the count at zero; the SC position keeps the death visible in
        // bounded time to wait predicates that spin without parking (see
        // mpmc::Producer::drop).
        let state = self.raw.queue().state();
        state.producers().fetch_sub(1, Ordering::SeqCst);
        // Parked consumers must observe the disconnect promptly rather
        // than after their bounded-park timeout.
        state.wake_all();
    }
}

/// A consuming handle of an SPMC queue. Clone it to add consumers.
///
/// Each handle privately remembers its *pending ranks*: ranks claimed from
/// the shared head whose items have not arrived yet. [`try_dequeue`] parks
/// such a rank instead of abandoning it (an abandoned rank would orphan the
/// item later enqueued with it), [`claim_batch`] parks whole runs, and every
/// dequeue flavor resumes from the oldest parked rank first.
///
/// [`try_dequeue`]: Consumer::try_dequeue
/// [`claim_batch`]: Consumer::claim_batch
pub struct Consumer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawConsumer<T, C, M, false>,
    /// Keeps the queue allocation alive (the raw view points into it).
    shared: Arc<Shared<T, C, M>>,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Consumer<T, C, M> {
    /// Attempts to dequeue one item without blocking.
    ///
    /// `Err(Empty)` means no item is ready *for this consumer's rank*; the
    /// rank is retained and retried on the next call. `Err(Disconnected)`
    /// means the producer is gone and this consumer can never receive
    /// another item.
    ///
    /// Linearizability granularity: the queue's logical dequeue (the
    /// paper's `FFQ_DEQ`) spans from the rank claim to the data read. A
    /// retry loop over `try_dequeue` is therefore *one* FIFO operation
    /// stretching from the first `Empty` of the episode to the eventual
    /// success; individual calls are not independently linearizable
    /// operations (an `Empty` both observes and claims).
    pub fn try_dequeue(&mut self) -> Result<T, TryDequeueError> {
        self.raw.try_dequeue()
    }

    /// Dequeues one item, waiting — spinning, then parking per the
    /// configured [`WaitConfig`] — while the queue is empty.
    ///
    /// Lock-free whenever items are available (Proposition 2 of the paper):
    /// the wait machinery only engages after `try_dequeue` has reported
    /// `Empty`, so the fast path is untouched.
    pub fn dequeue(&mut self) -> Result<T, Disconnected> {
        self.raw.dequeue()
    }

    /// Dequeues one item, giving up after `timeout`.
    ///
    /// While spinning, the deadline is only re-checked every few back-off
    /// rounds (`Instant::now()` costs far more than a spin iteration); once
    /// parked, every sleep is clamped to the remaining time, so the return
    /// lands within about a millisecond of the deadline.
    pub fn dequeue_timeout(&mut self, timeout: Duration) -> Result<T, TryDequeueError> {
        self.raw.dequeue_timeout(timeout)
    }

    /// Replaces the wait policy used by blocking dequeues; see
    /// [`WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.raw.set_wait_config(cfg);
    }

    /// Claims a run of `k` ranks from the shared head with a *single*
    /// `fetch_add(k)` and parks it as pending — one coherence transaction
    /// on the queue's most contended word instead of `k`.
    ///
    /// The run obeys the no-abandoned-rank rule: once claimed it is never
    /// given back, and all subsequent dequeues (batch or per-item) harvest
    /// it in claim order. Claiming past the current tail is allowed — the
    /// surplus ranks wait for future items — but a claim on a queue whose
    /// producer then disconnects is never satisfied, so prefer
    /// [`dequeue_batch`](Self::dequeue_batch), which sizes its claims to
    /// the items actually available.
    pub fn claim_batch(&mut self, k: usize) {
        self.raw.claim_batch(k);
    }

    /// Harvests up to `max` ready items into `buf`; returns the count.
    /// Never blocks.
    ///
    /// Parked ranks (from [`claim_batch`](Self::claim_batch) or earlier
    /// calls) are harvested first, in claim order; when they run out, new
    /// runs are claimed with one `fetch_add` per run, sized to what the
    /// tail reports as available — an empty queue claims nothing. The
    /// harvest stops early at a rank whose item has not been produced yet
    /// (the rank stays parked and is resumed by the next call).
    ///
    /// A return of `0` does not distinguish empty from disconnected; use
    /// [`try_dequeue`](Self::try_dequeue) for that.
    pub fn dequeue_batch(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        self.raw.dequeue_batch(buf, max)
    }

    /// Number of claimed-but-unsatisfied ranks currently parked on this
    /// handle.
    pub fn pending_ranks(&self) -> usize {
        self.raw.pending_ranks()
    }

    /// Drains currently available items into an iterator; stops at the
    /// first `Empty`/`Disconnected` without claiming a rank on an
    /// already-empty queue.
    pub fn try_iter(&mut self) -> TryIter<'_, T, C, M> {
        TryIter { consumer: self }
    }

    /// Moves up to `max` currently available items into `buf`, one rank
    /// claim per item; returns the count. Never blocks, and never claims a
    /// rank on a queue whose tail shows nothing available.
    ///
    /// This is the *per-item* drain — one head RMW per item. Prefer
    /// [`dequeue_batch`](Self::dequeue_batch), which claims rank runs
    /// instead and only falls back to per-item cost at batch size 1.
    pub fn drain_into(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        self.raw.drain_into(buf, max)
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Approximate number of items currently enqueued. Both counters move
    /// concurrently and skipped ranks inflate the estimate; use only as a
    /// hint.
    pub fn len_hint(&self) -> usize {
        self.raw.len_hint()
    }

    /// Snapshot of this consumer's counters.
    pub fn stats(&self) -> ConsumerStats {
        self.raw.stats()
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Clone for Consumer<T, C, M> {
    fn clone(&self) -> Self {
        self.raw
            .queue()
            .state()
            .consumers()
            .fetch_add(1, Ordering::Relaxed);
        Self {
            // SAFETY: same queue, kept alive by the cloned Arc; a fresh
            // shared-head consumer may attach at any time.
            raw: unsafe { RawConsumer::attach(*self.raw.queue()) },
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Drop for Consumer<T, C, M> {
    fn drop(&mut self) {
        // Best effort: if this handle dies holding claimed ranks whose
        // items have already been published, consume and drop them so the
        // cells return to circulation. Items not yet published cannot be
        // waited for — those ranks are forfeited and their slots stay busy
        // once filled, permanently reducing effective capacity (the
        // paper's consumers are immortal worker threads; see README).
        self.raw.recover_pending();
        // SeqCst per the QueueState handle-count rule: the Release half
        // orders the recovery above before anyone observes the drop; the
        // SC position bounds its latency to spinning wait predicates (see
        // mpmc::Producer::drop).
        self.raw
            .queue()
            .state()
            .consumers()
            .fetch_sub(1, Ordering::SeqCst);
    }
}

/// Iterator over currently available items; see [`Consumer::try_iter`].
pub struct TryIter<'a, T: Send, C: CellSlot<T>, M: IndexMap> {
    consumer: &'a mut Consumer<T, C, M>,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Iterator for TryIter<'_, T, C, M> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        // Same claim-free pre-check as drain_into: ending an iteration on
        // an empty queue must not park a rank.
        if self.consumer.raw.pending_is_empty() && self.consumer.raw.queue().looks_empty() {
            return None;
        }
        self.consumer.try_dequeue().ok()
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> IntoIterator for Consumer<T, C, M> {
    type Item = T;
    type IntoIter = IntoIter<T, C, M>;

    /// A blocking iterator: yields items until all producers disconnect
    /// and the queue is drained.
    fn into_iter(self) -> Self::IntoIter {
        IntoIter { consumer: self }
    }
}

/// Blocking consuming iterator; see [`Consumer::into_iter`].
pub struct IntoIter<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    consumer: Consumer<T, C, M>,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Iterator for IntoIter<T, C, M> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.consumer.dequeue().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CompactCell;
    use crate::layout::RotateMap;

    #[test]
    fn fifo_single_thread() {
        let (mut tx, mut rx) = channel::<u32>(16);
        for i in 0..10 {
            tx.enqueue(i);
        }
        for i in 0..10 {
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Empty));
    }

    #[test]
    fn gappy_dead_producer_queue_reports_disconnected() {
        // Regression for the disconnect-detection reset: `try_dequeue` used
        // to clear its disconnect flag after every gap skip, un-doing the
        // "all enqueues are visible now" conclusion mid-call. On a queue
        // whose producer died behind a run of gap announcements, the call
        // must skip the whole run and still report Disconnected.
        let (mut tx, mut rx) = channel::<u64>(4);
        for i in 0..4 {
            tx.try_enqueue(i).unwrap();
        }
        // Park two claimed ranks: the fullness pre-check now passes while
        // every cell still holds an unconsumed item, so the scan below
        // burns one array's worth of ranks as gap announcements.
        rx.claim_batch(2);
        assert!(tx.try_enqueue(99).is_err());
        assert_eq!(tx.stats().gaps_created, 4);
        drop(tx);
        for i in 0..4 {
            assert_eq!(rx.dequeue(), Ok(i));
        }
        // One call: four gap skips, then the sticky disconnect verdict.
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
    }

    #[test]
    fn wraparound_many_times() {
        let (mut tx, mut rx) = channel::<u64>(8);
        for i in 0..1000u64 {
            tx.enqueue(i);
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = channel::<u32>(100);
        assert_eq!(tx.capacity(), 128);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = channel::<u32>(0);
    }

    #[test]
    fn try_enqueue_reports_full() {
        let (mut tx, mut rx) = channel::<u32>(4);
        for i in 0..4 {
            tx.try_enqueue(i).unwrap();
        }
        let err = tx.try_enqueue(99).unwrap_err();
        assert_eq!(err.into_inner(), 99);
        assert_eq!(tx.stats().full_rejections, 1);
        // Rejected by the counter pre-check: all four items remain
        // dequeuable in order.
        for i in 0..4 {
            assert_eq!(rx.dequeue(), Ok(i));
        }
    }

    #[test]
    fn enqueue_after_full_rejection_still_delivers() {
        let (mut tx, mut rx) = channel::<u32>(4);
        for i in 0..4 {
            tx.try_enqueue(i).unwrap();
        }
        assert!(tx.try_enqueue(100).is_err());
        assert_eq!(rx.try_dequeue(), Ok(0));
        // A slot is free again.
        tx.try_enqueue(100).unwrap();
        let mut seen = Vec::new();
        while let Ok(v) = rx.try_dequeue() {
            seen.push(v);
        }
        assert_eq!(seen, vec![1, 2, 3, 100]);
    }

    #[test]
    fn gap_statistics_track_skips() {
        // A gap needs a cell that is busy while the counters say the array
        // is not full — i.e. a slow consumer. The lagger claims rank 0 on
        // the empty queue (parking it as pending) and then stalls, so item
        // 0 sits unconsumed in cell 0 while head moves on.
        let (mut tx, rx) = channel::<u32>(4);
        let mut lagger = rx.clone();
        let mut rx = rx;
        assert!(lagger.try_dequeue().is_err()); // claims rank 0
        for i in 0..4 {
            tx.enqueue(i);
        }
        for expect in 1..4 {
            assert_eq!(rx.try_dequeue(), Ok(expect));
        }
        // tail == 4, head == 4: not full by counters, but cell 0 still
        // holds the lagger's unconsumed item => the enqueue skips it.
        tx.enqueue(4);
        assert!(tx.stats().gaps_created >= 1);
        assert_eq!(rx.try_dequeue(), Ok(4), "skips the announced gap");
        assert!(rx.stats().gaps_skipped >= 1);
        // The lagger's parked rank still delivers its item.
        assert_eq!(lagger.try_dequeue(), Ok(0));
    }

    #[test]
    fn enqueue_many_publishes_batched() {
        let (mut tx, mut rx) = channel::<u64>(128);
        assert_eq!(tx.enqueue_many(0..100), 100);
        let s = tx.stats();
        assert_eq!(s.enqueued, 100);
        assert!(s.batch_enqueues >= 1);
        assert_eq!(s.batch_items, 100);
        // The shadow head keeps the whole batch to at most a couple of
        // shared-head reads.
        assert!(
            s.head_refreshes <= 2,
            "head_refreshes = {}",
            s.head_refreshes
        );
        for i in 0..100 {
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
    }

    #[test]
    fn enqueue_many_larger_than_capacity_blocks_in_runs() {
        // The batch is larger than the array: runs must interleave with
        // the consumer freeing cells. Run the consumer on another thread.
        let (mut tx, mut rx) = channel::<u64>(8);
        let c = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.dequeue() {
                got.push(v);
            }
            got
        });
        assert_eq!(tx.enqueue_many(0..1000), 1000);
        drop(tx);
        let got = c.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn dequeue_batch_amortizes_head_rmws() {
        let (mut tx, mut rx) = channel::<u64>(64);
        tx.enqueue_many(0..32);
        let mut buf = Vec::new();
        assert_eq!(rx.dequeue_batch(&mut buf, 32), 32);
        assert_eq!(buf, (0..32).collect::<Vec<_>>());
        let s = rx.stats();
        assert_eq!(s.ranks_claimed, 32);
        assert_eq!(s.head_rmws, 1, "one fetch_add for the whole run");
        assert_eq!(s.batch_dequeues, 1);
        assert_eq!(s.batch_items, 32);
        // Nothing left, and an empty batch claims nothing.
        assert_eq!(rx.dequeue_batch(&mut buf, 8), 0);
        assert_eq!(rx.stats().head_rmws, 1);
        assert_eq!(rx.pending_ranks(), 0);
    }

    #[test]
    fn claim_batch_resumes_across_calls() {
        let (mut tx, mut rx) = channel::<u64>(16);
        // Claim ahead of production: the run parks.
        rx.claim_batch(4);
        assert_eq!(rx.pending_ranks(), 4);
        assert_eq!(rx.stats().head_rmws, 1);
        let mut buf = Vec::new();
        assert_eq!(rx.dequeue_batch(&mut buf, 4), 0, "nothing produced yet");
        assert_eq!(rx.pending_ranks(), 4, "claimed run is never abandoned");
        tx.enqueue_many(0..6);
        // The parked run is harvested first, then a fresh (single-RMW)
        // claim covers the remaining two items.
        assert_eq!(rx.dequeue_batch(&mut buf, 8), 6);
        assert_eq!(buf, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(rx.stats().head_rmws, 2);
        assert_eq!(rx.pending_ranks(), 0);
    }

    #[test]
    fn consumer_clone_shares_queue() {
        let (mut tx, rx) = channel::<u32>(16);
        let mut rx2 = rx.clone();
        assert_eq!(tx.consumers(), 2);
        tx.enqueue(1);
        assert_eq!(rx2.try_dequeue(), Ok(1));
        drop(rx);
        assert_eq!(tx.consumers(), 1);
    }

    #[test]
    fn disconnect_after_drain() {
        let (mut tx, mut rx) = channel::<u32>(16);
        tx.enqueue(1);
        tx.enqueue(2);
        drop(tx);
        assert_eq!(rx.dequeue(), Ok(1));
        assert_eq!(rx.try_dequeue(), Ok(2));
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
        assert_eq!(rx.dequeue(), Err(Disconnected));
    }

    #[test]
    fn dequeue_timeout_expires_then_recovers() {
        let (mut tx, mut rx) = channel::<u32>(16);
        assert_eq!(
            rx.dequeue_timeout(Duration::from_millis(10)),
            Err(TryDequeueError::Empty)
        );
        // The pending rank is retained: the next enqueue is still received.
        tx.enqueue(7);
        assert_eq!(rx.dequeue_timeout(Duration::from_millis(100)), Ok(7));
    }

    #[test]
    fn try_iter_drains_available() {
        let (mut tx, mut rx) = channel::<u32>(16);
        for i in 0..5 {
            tx.enqueue(i);
        }
        let v: Vec<u32> = rx.try_iter().collect();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
        // Running dry did not park a rank.
        assert_eq!(rx.pending_ranks(), 0);
    }

    #[test]
    fn len_hint_tracks_occupancy() {
        let (mut tx, mut rx) = channel::<u32>(16);
        assert_eq!(tx.len_hint(), 0);
        for i in 0..5 {
            tx.enqueue(i);
        }
        assert_eq!(tx.len_hint(), 5);
        let _ = rx.try_dequeue();
        assert!(rx.len_hint() <= 4);
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (mut tx, mut rx) = channel::<Counted>(16);
            for _ in 0..6 {
                tx.enqueue(Counted);
            }
            drop(rx.dequeue()); // one consumed and dropped here
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn dropped_consumer_recovers_published_pending_run() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, rx) = channel::<Counted>(16);
        {
            let mut doomed = rx.clone();
            doomed.claim_batch(3);
            for _ in 0..3 {
                tx.enqueue(Counted);
            }
            // doomed drops holding 3 published pending ranks: all 3 items
            // must be dropped and their cells freed.
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 3);
        drop(tx);
        drop(rx);
    }

    #[test]
    fn all_layout_combinations_work() {
        fn smoke<C: CellSlot<u64>, M: IndexMap>() {
            // Capacity exceeds the worst-case backlog (500 items, one in
            // three drained eagerly), keeping the single-threaded blocking
            // enqueue from waiting on a consumer that cannot run.
            let (mut tx, mut rx) = channel_with::<u64, C, M>(1024);
            for i in 0..500 {
                tx.enqueue(i);
                if i % 3 == 0 {
                    assert!(rx.try_dequeue().is_ok());
                }
            }
            let mut last = None;
            while let Ok(v) = rx.try_dequeue() {
                if let Some(prev) = last {
                    assert!(v > prev);
                }
                last = Some(v);
            }
        }
        smoke::<PaddedCell<u64>, LinearMap>();
        smoke::<PaddedCell<u64>, RotateMap>();
        smoke::<CompactCell<u64>, LinearMap>();
        smoke::<CompactCell<u64>, RotateMap>();
    }

    #[test]
    fn two_threads_no_loss_no_duplication() {
        const ITEMS: u64 = 100_000;
        let (mut tx, rx) = channel::<u64>(1024);
        let consumers: Vec<_> = (0..3).map(|_| rx.clone()).collect();
        drop(rx);
        let producer = std::thread::spawn(move || {
            for i in 0..ITEMS {
                tx.enqueue(i);
            }
        });
        let handles: Vec<_> = consumers
            .into_iter()
            .map(|mut rx| {
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.dequeue() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        producer.join().unwrap();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..ITEMS).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn per_consumer_order_is_fifo() {
        // Items dequeued by one consumer must respect enqueue order even
        // with a competing consumer claiming interleaved ranks.
        const ITEMS: u64 = 50_000;
        let (mut tx, rx) = channel::<u64>(256);
        let mut rx2 = rx.clone();
        let mut rx1 = rx;
        let producer = std::thread::spawn(move || {
            for i in 0..ITEMS {
                tx.enqueue(i);
            }
        });
        let c2 = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.dequeue() {
                got.push(v);
            }
            got
        });
        let mut got1 = Vec::new();
        while let Ok(v) = rx1.dequeue() {
            got1.push(v);
        }
        producer.join().unwrap();
        let got2 = c2.join().unwrap();
        for w in got1.windows(2) {
            assert!(
                w[0] < w[1],
                "consumer 1 out of order: {} then {}",
                w[0],
                w[1]
            );
        }
        for w in got2.windows(2) {
            assert!(
                w[0] < w[1],
                "consumer 2 out of order: {} then {}",
                w[0],
                w[1]
            );
        }
        assert_eq!(got1.len() + got2.len(), ITEMS as usize);
    }

    #[test]
    fn batched_producer_batched_consumers_cross_thread() {
        // Batch producer + mixed batch sizes across threads: nothing lost,
        // nothing duplicated, per-consumer order preserved.
        const ITEMS: u64 = 120_000;
        let (mut tx, rx) = channel::<u64>(512);
        let consumers: Vec<_> = (0..3).map(|_| rx.clone()).collect();
        drop(rx);
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < ITEMS {
                let run = (next..(next + 64).min(ITEMS)).collect::<Vec<_>>();
                next += run.len() as u64;
                tx.enqueue_many(run);
            }
        });
        let handles: Vec<_> = consumers
            .into_iter()
            .enumerate()
            .map(|(i, mut rx)| {
                std::thread::spawn(move || {
                    let batch = 1 << (2 * i); // 1, 4, 16
                    let mut buf = Vec::new();
                    let mut got = Vec::new();
                    loop {
                        if rx.dequeue_batch(&mut buf, batch) > 0 {
                            got.append(&mut buf);
                            continue;
                        }
                        match rx.try_dequeue() {
                            Ok(v) => got.push(v),
                            Err(TryDequeueError::Empty) => std::hint::spin_loop(),
                            Err(TryDequeueError::Disconnected) => return got,
                        }
                    }
                })
            })
            .collect();
        producer.join().unwrap();
        let per_consumer: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for got in &per_consumer {
            for w in got.windows(2) {
                assert!(w[0] < w[1], "per-consumer order violated");
            }
        }
        let mut all: Vec<u64> = per_consumer.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
    }
}
