//! FFQ-s: the single-producer/multiple-consumer queue (Algorithm 1).
//!
//! This is the paper's primary contribution. The producer owns the `tail`
//! counter privately, so enqueuing needs no atomic read-modify-write at all —
//! it is *wait-free* as long as the queue never fills up (Proposition 1).
//! Consumers claim ranks with a single `fetch_add` on the shared `head` and
//! dequeuing is *lock-free* whenever items are available (Proposition 2).
//!
//! ```
//! let (mut tx, rx) = ffq::spmc::channel::<u64>(1024);
//! let consumers: Vec<_> = (0..4).map(|_| rx.clone()).collect();
//! tx.enqueue(7);
//! let mut got = None;
//! for mut rx in consumers {
//!     if let Ok(v) = rx.try_dequeue() {
//!         got = Some(v);
//!     }
//! }
//! assert_eq!(got, Some(7));
//! ```

use core::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ffq_sync::Backoff;

use crate::cell::{CellSlot, PaddedCell};
use crate::error::{Disconnected, Full, TryDequeueError};
use crate::layout::{IndexMap, LinearMap};
use crate::shared::{dequeue_blocking, dequeue_core, Shared};
use crate::stats::{ConsumerStats, ProducerStats};

/// Creates an SPMC queue with the default layout (cache-line aligned cells,
/// linear index mapping) and the given power-of-two capacity.
///
/// Returns the unique producer and one consumer; clone the consumer for more.
///
/// # Panics
/// If `capacity` is not a power of two >= 2.
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    channel_with::<T, PaddedCell<T>, LinearMap>(capacity)
}

/// Creates an SPMC queue with explicit cell layout `C` and index mapping `M`
/// (see [`crate::cell`] and [`crate::layout`] for the paper's four
/// configurations).
pub fn channel_with<T: Send, C: CellSlot<T>, M: IndexMap>(
    capacity: usize,
) -> (Producer<T, C, M>, Consumer<T, C, M>) {
    let shared = Arc::new(Shared::<T, C, M>::new(capacity, 1));
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            stats: ProducerStats::default(),
        },
        Consumer {
            shared,
            pending: None,
            stats: ConsumerStats::default(),
        },
    )
}

/// The unique producing side of an SPMC queue.
///
/// Not `Clone` and takes `&mut self`: the algorithm's wait-freedom and the
/// unsynchronized `tail` are only sound with exactly one enqueuing thread.
/// Use [`crate::mpmc`] when multiple producers must share a queue.
pub struct Producer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    shared: Arc<Shared<T, C, M>>,
    /// The paper's `tail`: private, monotonically increasing (line 7:
    /// "Tail counter ... not shared").
    tail: i64,
    stats: ProducerStats,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Producer<T, C, M> {
    /// Enqueues `value`, scanning past busy cells (announcing gaps) until a
    /// free cell is found.
    ///
    /// Wait-free under the paper's sizing assumption that some cell is
    /// always free. If the queue is genuinely full, this backs off between
    /// array scans until a consumer frees a cell (footnote 2 of the paper).
    pub fn enqueue(&mut self, value: T) {
        let mut value = value;
        let mut backoff = Backoff::new();
        loop {
            if self.looks_full() {
                backoff.wait();
                continue;
            }
            match self.enqueue_scan(value, self.shared.capacity()) {
                Ok(()) => return,
                Err(Full(v)) => {
                    value = v;
                    backoff.wait();
                }
            }
        }
    }

    /// Cheap fullness pre-check: `tail - head >= N` means at least a full
    /// array's worth of ranks is outstanding, so a scan cannot succeed.
    /// Conservative in the safe direction — head inflated by gap skips or
    /// claims beyond the tail only makes the queue look *emptier*, in which
    /// case we fall through to the (bounded) scan.
    #[inline]
    fn looks_full(&self) -> bool {
        let head = self.shared.head.load(Ordering::Acquire);
        self.tail - head >= self.shared.capacity() as i64
    }

    /// Attempts to enqueue `value`.
    ///
    /// A counter pre-check rejects a clearly full queue in O(1) without
    /// side effects. If the pre-check passes but the (bounded, one-pass)
    /// scan still finds no free cell, the value is handed back — and that
    /// scan has already skipped (and announced gaps for) every busy cell it
    /// saw, consuming ranks; see [`Full`].
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        if self.looks_full() {
            self.stats.full_rejections += 1;
            return Err(Full(value));
        }
        let r = self.enqueue_scan(value, self.shared.capacity());
        if r.is_err() {
            self.stats.full_rejections += 1;
        }
        r
    }

    /// Enqueues every item of `iter` (blocking as needed); returns the
    /// count. Amortizes per-call overhead for bulk submission.
    pub fn enqueue_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        let mut n = 0;
        for item in iter {
            self.enqueue(item);
            n += 1;
        }
        n
    }

    /// The body of `FFQ_ENQ` (Algorithm 1 lines 9–19), bounded to `limit`
    /// cells inspected.
    fn enqueue_scan(&mut self, value: T, limit: usize) -> Result<(), Full<T>> {
        for _ in 0..limit {
            let rank = self.tail;
            debug_assert!(rank >= 0, "tail overflowed i64");
            let cell = self.shared.cell(rank);
            let words = cell.words();

            // Line 13: cell still holds an unconsumed item? The Acquire
            // pairs with the consumer's Release reset, so when we observe
            // rank == -1 the consumer's read of the previous payload
            // happened-before our overwrite below.
            if words.lo_atomic().load(Ordering::Acquire) >= 0 {
                // Line 14: skip it and announce the gap. `gap` only grows:
                // we are the only writer and tail is monotonic. Release so a
                // consumer acting on the announcement also sees every prior
                // producer write (not required for correctness of the skip
                // itself, but keeps the cell words causally consistent).
                words.hi_atomic().store(rank, Ordering::Release);
                self.stats.gaps_created += 1;
                self.advance_tail();
                continue;
            }

            // Lines 16–17: publish. The data write must precede the rank
            // store; Release makes the rank store the linearization point.
            unsafe { (*cell.data()).write(value) };
            words.lo_atomic().store(rank, Ordering::Release);
            self.stats.enqueued += 1;
            self.advance_tail();
            return Ok(());
        }
        Err(Full(value))
    }

    #[inline(always)]
    fn advance_tail(&mut self) {
        self.tail += 1;
        self.stats.ranks_taken += 1;
        // Mirror for len_hint() only — consumers never synchronize on it.
        self.shared.tail.store(self.tail, Ordering::Release);
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Approximate number of items currently enqueued (see
    /// [`Consumer::len_hint`]).
    pub fn len_hint(&self) -> usize {
        self.shared.len_hint()
    }

    /// Number of live consumer handles.
    pub fn consumers(&self) -> usize {
        self.shared.consumers.load(Ordering::Relaxed)
    }

    /// Snapshot of this producer's counters.
    pub fn stats(&self) -> ProducerStats {
        self.stats
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Drop for Producer<T, C, M> {
    fn drop(&mut self) {
        // Release: every completed enqueue happens-before a consumer's
        // Acquire load that observes the count at zero.
        self.shared.producers.fetch_sub(1, Ordering::Release);
    }
}

/// A consuming handle of an SPMC queue. Clone it to add consumers.
///
/// Each handle privately remembers a *pending rank*: a rank claimed from the
/// shared head whose item has not arrived yet. [`try_dequeue`] parks the
/// rank there instead of abandoning it (an abandoned rank would orphan the
/// item later enqueued with it), and the next call resumes from it.
///
/// [`try_dequeue`]: Consumer::try_dequeue
pub struct Consumer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    shared: Arc<Shared<T, C, M>>,
    pending: Option<i64>,
    stats: ConsumerStats,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Consumer<T, C, M> {
    /// Attempts to dequeue one item without blocking.
    ///
    /// `Err(Empty)` means no item is ready *for this consumer's rank*; the
    /// rank is retained and retried on the next call. `Err(Disconnected)`
    /// means the producer is gone and this consumer can never receive
    /// another item.
    ///
    /// Linearizability granularity: the queue's logical dequeue (the
    /// paper's `FFQ_DEQ`) spans from the rank claim to the data read. A
    /// retry loop over `try_dequeue` is therefore *one* FIFO operation
    /// stretching from the first `Empty` of the episode to the eventual
    /// success; individual calls are not independently linearizable
    /// operations (an `Empty` both observes and claims).
    pub fn try_dequeue(&mut self) -> Result<T, TryDequeueError> {
        dequeue_core::<T, C, M, false>(&self.shared, &mut self.pending, &mut self.stats)
    }

    /// Dequeues one item, backing off while the queue is empty.
    ///
    /// Lock-free whenever items are available (Proposition 2 of the paper).
    pub fn dequeue(&mut self) -> Result<T, Disconnected> {
        dequeue_blocking::<T, C, M, false>(&self.shared, &mut self.pending, &mut self.stats)
    }

    /// Dequeues one item, giving up after `timeout`.
    pub fn dequeue_timeout(&mut self, timeout: Duration) -> Result<T, TryDequeueError> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::new();
        loop {
            match self.try_dequeue() {
                Ok(v) => return Ok(v),
                Err(TryDequeueError::Disconnected) => {
                    return Err(TryDequeueError::Disconnected)
                }
                Err(TryDequeueError::Empty) => {
                    if Instant::now() >= deadline {
                        return Err(TryDequeueError::Empty);
                    }
                    backoff.wait();
                }
            }
        }
    }

    /// Drains currently available items into an iterator; stops at the
    /// first `Empty`/`Disconnected`.
    pub fn try_iter(&mut self) -> TryIter<'_, T, C, M> {
        TryIter { consumer: self }
    }

    /// Moves up to `max` currently available items into `buf`; returns the
    /// count. Never blocks.
    pub fn drain_into(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.try_dequeue() {
                Ok(v) => {
                    buf.push(v);
                    n += 1;
                }
                Err(_) => break,
            }
        }
        n
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Approximate number of items currently enqueued. Both counters move
    /// concurrently and skipped ranks inflate the estimate; use only as a
    /// hint.
    pub fn len_hint(&self) -> usize {
        self.shared.len_hint()
    }

    /// Snapshot of this consumer's counters.
    pub fn stats(&self) -> ConsumerStats {
        self.stats
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Clone for Consumer<T, C, M> {
    fn clone(&self) -> Self {
        self.shared.consumers.fetch_add(1, Ordering::Relaxed);
        Self {
            shared: Arc::clone(&self.shared),
            pending: None,
            stats: ConsumerStats::default(),
        }
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Drop for Consumer<T, C, M> {
    fn drop(&mut self) {
        // Best effort: if this handle dies holding a claimed rank whose item
        // has already been published, consume and drop it so the cell
        // returns to circulation. If the item has not been published we
        // cannot wait — the rank is forfeited and that slot stays busy once
        // filled, permanently reducing effective capacity by one (the
        // paper's consumers are immortal worker threads; see README).
        if let Some(rank) = self.pending.take() {
            let cell = self.shared.cell(rank);
            if cell.words().lo_atomic().load(Ordering::Acquire) == rank {
                unsafe { (*cell.data()).assume_init_drop() };
                cell.words()
                    .lo_atomic()
                    .store(crate::cell::RANK_FREE, Ordering::Release);
            }
        }
        self.shared.consumers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Iterator over currently available items; see [`Consumer::try_iter`].
pub struct TryIter<'a, T: Send, C: CellSlot<T>, M: IndexMap> {
    consumer: &'a mut Consumer<T, C, M>,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Iterator for TryIter<'_, T, C, M> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.consumer.try_dequeue().ok()
    }
}


impl<T: Send, C: CellSlot<T>, M: IndexMap> IntoIterator for Consumer<T, C, M> {
    type Item = T;
    type IntoIter = IntoIter<T, C, M>;

    /// A blocking iterator: yields items until all producers disconnect
    /// and the queue is drained.
    fn into_iter(self) -> Self::IntoIter {
        IntoIter { consumer: self }
    }
}

/// Blocking consuming iterator; see [`Consumer::into_iter`].
pub struct IntoIter<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    consumer: Consumer<T, C, M>,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Iterator for IntoIter<T, C, M> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.consumer.dequeue().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CompactCell;
    use crate::layout::RotateMap;

    #[test]
    fn fifo_single_thread() {
        let (mut tx, mut rx) = channel::<u32>(16);
        for i in 0..10 {
            tx.enqueue(i);
        }
        for i in 0..10 {
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Empty));
    }

    #[test]
    fn wraparound_many_times() {
        let (mut tx, mut rx) = channel::<u64>(8);
        for i in 0..1000u64 {
            tx.enqueue(i);
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
    }

    #[test]
    fn try_enqueue_reports_full() {
        let (mut tx, mut rx) = channel::<u32>(4);
        for i in 0..4 {
            tx.try_enqueue(i).unwrap();
        }
        let err = tx.try_enqueue(99).unwrap_err();
        assert_eq!(err.into_inner(), 99);
        assert_eq!(tx.stats().full_rejections, 1);
        // The failed scan advanced tail by N announcing gaps, but all four
        // items remain dequeuable in order.
        for i in 0..4 {
            assert_eq!(rx.dequeue(), Ok(i));
        }
    }

    #[test]
    fn enqueue_after_full_rejection_still_delivers() {
        let (mut tx, mut rx) = channel::<u32>(4);
        for i in 0..4 {
            tx.try_enqueue(i).unwrap();
        }
        assert!(tx.try_enqueue(100).is_err());
        assert_eq!(rx.try_dequeue(), Ok(0));
        // A slot is free again.
        tx.try_enqueue(100).unwrap();
        let mut seen = Vec::new();
        while let Ok(v) = rx.try_dequeue() {
            seen.push(v);
        }
        assert_eq!(seen, vec![1, 2, 3, 100]);
    }

    #[test]
    fn gap_statistics_track_skips() {
        // A gap needs a cell that is busy while the counters say the array
        // is not full — i.e. a slow consumer. The lagger claims rank 0 on
        // the empty queue (parking it as pending) and then stalls, so item
        // 0 sits unconsumed in cell 0 while head moves on.
        let (mut tx, rx) = channel::<u32>(4);
        let mut lagger = rx.clone();
        let mut rx = rx;
        assert!(lagger.try_dequeue().is_err()); // claims rank 0
        for i in 0..4 {
            tx.enqueue(i);
        }
        for expect in 1..4 {
            assert_eq!(rx.try_dequeue(), Ok(expect));
        }
        // tail == 4, head == 4: not full by counters, but cell 0 still
        // holds the lagger's unconsumed item => the enqueue skips it.
        tx.enqueue(4);
        assert!(tx.stats().gaps_created >= 1);
        assert_eq!(rx.try_dequeue(), Ok(4), "skips the announced gap");
        assert!(rx.stats().gaps_skipped >= 1);
        // The lagger's parked rank still delivers its item.
        assert_eq!(lagger.try_dequeue(), Ok(0));
    }

    #[test]
    fn consumer_clone_shares_queue() {
        let (mut tx, rx) = channel::<u32>(16);
        let mut rx2 = rx.clone();
        assert_eq!(tx.consumers(), 2);
        tx.enqueue(1);
        assert_eq!(rx2.try_dequeue(), Ok(1));
        drop(rx);
        assert_eq!(tx.consumers(), 1);
    }

    #[test]
    fn disconnect_after_drain() {
        let (mut tx, mut rx) = channel::<u32>(16);
        tx.enqueue(1);
        tx.enqueue(2);
        drop(tx);
        assert_eq!(rx.dequeue(), Ok(1));
        assert_eq!(rx.try_dequeue(), Ok(2));
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
        assert_eq!(rx.dequeue(), Err(Disconnected));
    }

    #[test]
    fn dequeue_timeout_expires_then_recovers() {
        let (mut tx, mut rx) = channel::<u32>(16);
        assert_eq!(
            rx.dequeue_timeout(Duration::from_millis(10)),
            Err(TryDequeueError::Empty)
        );
        // The pending rank is retained: the next enqueue is still received.
        tx.enqueue(7);
        assert_eq!(rx.dequeue_timeout(Duration::from_millis(100)), Ok(7));
    }

    #[test]
    fn try_iter_drains_available() {
        let (mut tx, mut rx) = channel::<u32>(16);
        for i in 0..5 {
            tx.enqueue(i);
        }
        let v: Vec<u32> = rx.try_iter().collect();
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_hint_tracks_occupancy() {
        let (mut tx, mut rx) = channel::<u32>(16);
        assert_eq!(tx.len_hint(), 0);
        for i in 0..5 {
            tx.enqueue(i);
        }
        assert_eq!(tx.len_hint(), 5);
        let _ = rx.try_dequeue();
        assert!(rx.len_hint() <= 4);
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (mut tx, mut rx) = channel::<Counted>(16);
            for _ in 0..6 {
                tx.enqueue(Counted);
            }
            drop(rx.dequeue()); // one consumed and dropped here
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn all_layout_combinations_work() {
        fn smoke<C: CellSlot<u64>, M: IndexMap>() {
            // Capacity exceeds the worst-case backlog (500 items, one in
            // three drained eagerly), keeping the single-threaded blocking
            // enqueue from waiting on a consumer that cannot run.
            let (mut tx, mut rx) = channel_with::<u64, C, M>(1024);
            for i in 0..500 {
                tx.enqueue(i);
                if i % 3 == 0 {
                    assert!(rx.try_dequeue().is_ok());
                }
            }
            let mut last = None;
            while let Ok(v) = rx.try_dequeue() {
                if let Some(prev) = last {
                    assert!(v > prev);
                }
                last = Some(v);
            }
        }
        smoke::<PaddedCell<u64>, LinearMap>();
        smoke::<PaddedCell<u64>, RotateMap>();
        smoke::<CompactCell<u64>, LinearMap>();
        smoke::<CompactCell<u64>, RotateMap>();
    }

    #[test]
    fn two_threads_no_loss_no_duplication() {
        const ITEMS: u64 = 100_000;
        let (mut tx, rx) = channel::<u64>(1024);
        let consumers: Vec<_> = (0..3).map(|_| rx.clone()).collect();
        drop(rx);
        let producer = std::thread::spawn(move || {
            for i in 0..ITEMS {
                tx.enqueue(i);
            }
        });
        let handles: Vec<_> = consumers
            .into_iter()
            .map(|mut rx| {
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.dequeue() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        producer.join().unwrap();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..ITEMS).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn per_consumer_order_is_fifo() {
        // Items dequeued by one consumer must respect enqueue order even
        // with a competing consumer claiming interleaved ranks.
        const ITEMS: u64 = 50_000;
        let (mut tx, rx) = channel::<u64>(256);
        let mut rx2 = rx.clone();
        let mut rx1 = rx;
        let producer = std::thread::spawn(move || {
            for i in 0..ITEMS {
                tx.enqueue(i);
            }
        });
        let c2 = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.dequeue() {
                got.push(v);
            }
            got
        });
        let mut got1 = Vec::new();
        while let Ok(v) = rx1.dequeue() {
            got1.push(v);
        }
        producer.join().unwrap();
        let got2 = c2.join().unwrap();
        for w in got1.windows(2) {
            assert!(w[0] < w[1], "consumer 1 out of order: {} then {}", w[0], w[1]);
        }
        for w in got2.windows(2) {
            assert!(w[0] < w[1], "consumer 2 out of order: {} then {}", w[0], w[1]);
        }
        assert_eq!(got1.len() + got2.len(), ITEMS as usize);
    }
}
