//! Error types for queue operations.

use core::fmt;

/// The queue had no free cell for the value; returned by `try_enqueue`.
///
/// Carries the rejected value back to the caller so nothing is lost.
///
/// Note that FFQ's fullness is *transient and rank-consuming*: a failed
/// bounded scan has already advanced the tail past (and announced gaps for)
/// the slots it inspected, so repeatedly polling `try_enqueue` on a full
/// queue costs ranks. The paper sidesteps this entirely by sizing the queue
/// so it is never full (§I, "implicit flow control").
pub struct Full<T>(pub T);

impl<T> Full<T> {
    /// Recovers the value that could not be enqueued.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> fmt::Debug for Full<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Full(..)")
    }
}

impl<T> fmt::Display for Full<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("queue is full")
    }
}

impl<T> std::error::Error for Full<T> {}

/// All producer handles were dropped and every remaining item reachable by
/// this consumer has been drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl fmt::Display for Disconnected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("all producers disconnected and queue drained")
    }
}

impl std::error::Error for Disconnected {}

/// A requested queue capacity that no FFQ variant can satisfy.
///
/// Returned by [`crate::layout::normalize_capacity`], the single validation
/// path every constructor — heap `channel()`s and the shared-memory
/// constructors in `ffq-shm` alike — goes through. Valid requests are
/// *rounded up* to a power of two, so this error only reports requests that
/// cannot be rounded: zero and absurdly large values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityError {
    /// A queue with zero cells cannot hold an item; FFQ additionally needs
    /// at least 2 cells for its rank/gap protocol.
    Zero,
    /// The capacity would round up past [`crate::layout::MAX_CAPACITY`]
    /// cells.
    TooLarge {
        /// The capacity that was requested.
        requested: usize,
    },
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapacityError::Zero => f.write_str("queue capacity must be at least 1"),
            CapacityError::TooLarge { requested } => write!(
                f,
                "queue capacity {requested} exceeds the maximum of 2^31 cells"
            ),
        }
    }
}

impl std::error::Error for CapacityError {}

/// Why a `try_dequeue` returned without an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryDequeueError {
    /// No item is currently ready for this consumer; one may arrive later.
    /// The consumer keeps its claimed rank and resumes from it next call.
    Empty,
    /// No item will ever arrive: all producers disconnected.
    Disconnected,
}

impl fmt::Display for TryDequeueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryDequeueError::Empty => f.write_str("queue empty for this consumer"),
            TryDequeueError::Disconnected => Disconnected.fmt(f),
        }
    }
}

impl std::error::Error for TryDequeueError {}

/// Why a non-blocking zero-copy reservation (`try_reserve`) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryReserveError {
    /// No free cell (or, for spilled payloads, no long-enough free run) is
    /// currently available; one may appear once consumers drain. Like
    /// [`Full`], the failed scan may already have consumed ranks.
    Full,
    /// The payload can never fit: it exceeds this queue's spill limit
    /// (`slot_bytes` when the queue refuses spills, `slot_bytes × capacity/2`
    /// for chain spills). Retrying cannot help; nothing is ever truncated.
    TooLarge {
        /// The requested payload length.
        len: usize,
        /// The largest payload this queue accepts.
        max: usize,
    },
}

impl fmt::Display for TryReserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryReserveError::Full => f.write_str("queue is full"),
            TryReserveError::TooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds the queue limit of {max}")
            }
        }
    }
}

impl std::error::Error for TryReserveError {}

/// Why a blocking zero-copy reservation (`reserve`) failed. Fullness is
/// waited out, so only the permanent condition remains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveError {
    /// See [`TryReserveError::TooLarge`].
    TooLarge {
        /// The requested payload length.
        len: usize,
        /// The largest payload this queue accepts.
        max: usize,
    },
}

impl fmt::Display for ReserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ReserveError::TooLarge { len, max } = self;
        write!(f, "payload of {len} bytes exceeds the queue limit of {max}")
    }
}

impl std::error::Error for ReserveError {}

/// Why a non-blocking broadcast receive (`try_recv`) returned no item.
///
/// Unlike the point-to-point lanes, a broadcast subscriber that falls more
/// than one ring behind the producer *loses* items instead of applying
/// backpressure — the producer never blocks. Loss is always reported, never
/// silent: the subscriber's cursor is resynced and the number of skipped
/// items comes back as `Lagged`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastTryRecvError {
    /// The subscriber has seen every published item; more may arrive.
    Empty,
    /// The producer overwrote items this subscriber had not read yet. The
    /// cursor has been moved forward past the loss; the payload is the
    /// number of items skipped. The *next* receive resumes at the oldest
    /// item still retained.
    Lagged(u64),
    /// The producer is gone and every published item has been seen.
    Closed,
}

impl fmt::Display for BroadcastTryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BroadcastTryRecvError::Empty => f.write_str("no new broadcast item"),
            BroadcastTryRecvError::Lagged(n) => {
                write!(f, "subscriber lagged: {n} items overwritten")
            }
            BroadcastTryRecvError::Closed => f.write_str("broadcast channel closed"),
        }
    }
}

impl std::error::Error for BroadcastTryRecvError {}

/// Why a blocking broadcast receive (`recv`) returned no item. Emptiness is
/// waited out, so only lag and closure remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastRecvError {
    /// See [`BroadcastTryRecvError::Lagged`].
    Lagged(u64),
    /// See [`BroadcastTryRecvError::Closed`].
    Closed,
}

impl fmt::Display for BroadcastRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BroadcastRecvError::Lagged(n) => BroadcastTryRecvError::Lagged(*n).fmt(f),
            BroadcastRecvError::Closed => BroadcastTryRecvError::Closed.fmt(f),
        }
    }
}

impl std::error::Error for BroadcastRecvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_returns_value() {
        let e = Full(String::from("payload"));
        assert_eq!(e.into_inner(), "payload");
    }

    #[test]
    fn display_messages() {
        assert_eq!(Full(0u8).to_string(), "queue is full");
        assert_eq!(
            TryDequeueError::Empty.to_string(),
            "queue empty for this consumer"
        );
        assert_eq!(
            TryDequeueError::Disconnected.to_string(),
            Disconnected.to_string()
        );
    }

    #[test]
    fn capacity_error_messages() {
        assert_eq!(
            CapacityError::Zero.to_string(),
            "queue capacity must be at least 1"
        );
        assert!(CapacityError::TooLarge {
            requested: usize::MAX
        }
        .to_string()
        .contains("2^31"));
    }

    #[test]
    fn full_debug_does_not_require_t_debug() {
        struct NoDebug;
        let e = Full(NoDebug);
        assert_eq!(format!("{e:?}"), "Full(..)");
    }
}
