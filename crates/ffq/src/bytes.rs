//! Zero-copy variable-size payload lane over the FFQ cell protocol.
//!
//! The typed queues move fixed-size `T`s *through* the cells; anything
//! variable-size had to be boxed (one allocation + one pointer chase per
//! item) or copied twice (caller buffer → queue → caller buffer). This
//! module adds a bytes mode in which every cell owns a cache-aligned **slot
//! buffer** of `slot_bytes` bytes (sized at construction, see
//! [`crate::layout::normalize_slot_bytes`]) living in a region parallel to
//! the cell array. Payloads move exactly once:
//!
//! * the producer [`reserve`](BytesProducer::reserve)s a length and gets a
//!   [`WriteSlot`] — a mutable borrow of the rank's slot buffer — writes the
//!   payload **in place**, and [`commit`](WriteSlot::commit)s, which
//!   publishes the rank exactly like a typed enqueue;
//! * the consumer [`recv`](BytesConsumer::recv)s a [`PayloadRef`] — a
//!   borrowed view of the same bytes — and the rank is retired (the cell
//!   recycled) only when the `PayloadRef` drops.
//!
//! The rank/gap protocol is reused untouched: the item a cell carries is a
//! 24-byte [`PayloadDesc`] describing where its payload lives, and the
//! Release rank store that publishes the descriptor also orders the payload
//! bytes (written before it into the rank's slot) for the consumer's
//! Acquire claim. A claimed-but-unretired cell looks *busy* to producers,
//! which skip it with a gap announcement if its slot comes around again —
//! holding a `PayloadRef` degrades capacity, never correctness.
//!
//! # Oversize payloads ([`SpillMode`])
//!
//! Nothing is ever truncated. A payload longer than `slot_bytes` takes the
//! queue's spill path:
//!
//! * [`SpillMode::Chain`] (SPSC, including shared memory): the payload is
//!   length-prefix chained across a run of *consecutive* ranks — a
//!   `DESC_CHAIN_HEAD` cell followed by `DESC_CHAIN_CONT` cells, reserved
//!   together so the run is contiguous. Capped at `capacity/2` cells.
//! * [`SpillMode::Heap`] (same-address-space SPMC/MPMC): the payload lives
//!   in a heap allocation owned by the descriptor; the consumer takes the
//!   allocation over. One copy is paid on neither side (the reservation
//!   hands out the heap buffer to write into) — only the drop moves.
//! * [`SpillMode::Refuse`] (shared-memory SPMC): `reserve` fails with
//!   [`TryReserveError::TooLarge`]. Heap pointers cannot cross address
//!   spaces and multiple producers cannot reserve consecutive runs, so the
//!   honest answer is a hard error at reserve time.
//!
//! # Engines
//!
//! [`SpProducer`]/[`SpscConsumer`]/[`McConsumer`]/[`MpProducer`] are
//! non-generic engines fixed to `PaddedCell<PayloadDesc>` + `LinearMap`
//! (cells and slot buffers must agree on the rank→slot mapping, and a
//! padded descriptor cell is what keeps a producer's descriptor write off
//! the consumer's slot-buffer cache lines). The `bytes_channel`
//! constructors in [`crate::spsc`]/[`crate::spmc`]/[`crate::mpmc`] build
//! them on the heap; `ffq-shm` builds them over mapped regions through the
//! `from_raw_parts` constructors.

use core::ops::{Deref, DerefMut};
use core::ptr::NonNull;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ffq_sync::atomic::Ordering;
use ffq_sync::{WaitConfig, WaitRound, WaitStrategy};

use crate::cell::{
    CellSlot, PaddedCell, PayloadDesc, DESC_CHAIN_CONT, DESC_CHAIN_HEAD, DESC_HEAP, DESC_INLINE,
};
use crate::error::{CapacityError, Disconnected, ReserveError, TryDequeueError, TryReserveError};
use crate::layout::{normalize_capacity, normalize_slot_bytes, IndexMap, LinearMap};
use crate::mpmc::{claim_rank_cell, publish_claimed_rank};
use crate::raw::{QueueState, RawConsumer, RawProducer, RawQueue, RawSpscConsumer};
use crate::stats::{ConsumerStats, ProducerStats};

/// The cell type of every bytes-mode queue: one cache line per descriptor.
pub type DescCell = PaddedCell<PayloadDesc>;

/// What a bytes queue does with a payload longer than its `slot_bytes`.
///
/// Chosen at construction per flavor (see the module docs); never a
/// per-send decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpillMode {
    /// Spill across a run of consecutive ranks (single producer only — the
    /// run must be reserved contiguously). Works over shared memory.
    Chain,
    /// Spill to a heap allocation handed over through the descriptor.
    /// Same-address-space queues only.
    Heap,
    /// Refuse at reserve time with [`TryReserveError::TooLarge`].
    Refuse,
}

/// A borrowed view of a queue's slot-buffer region: `capacity` buffers of
/// `slot_bytes` bytes each, indexed by the same `LinearMap` rank→slot
/// mapping as the cell array.
///
/// `Copy` and cheap, like [`RawQueue`]: every bytes engine embeds one. The
/// region itself lives wherever the caller placed it — the heap block of a
/// `bytes_channel`, or a shared-memory mapping in `ffq-shm`.
#[derive(Clone, Copy)]
pub struct SlotRegion {
    base: NonNull<u8>,
    slot_bytes: usize,
    cap_log2: u32,
}

// SAFETY: the region is plain bytes; all access is mediated by the rank/gap
// protocol (the unique owner of a rank's current state transition is the
// only thread touching its slot buffer).
unsafe impl Send for SlotRegion {}
unsafe impl Sync for SlotRegion {}

impl SlotRegion {
    /// Wraps a raw slot-buffer region.
    ///
    /// # Safety
    ///
    /// `base` points to (at least) `(1 << cap_log2) * slot_bytes` bytes of
    /// readable+writable memory, 64-byte aligned, valid and pinned for as
    /// long as any engine embedding this view is alive. `slot_bytes` is the
    /// normalized value every peer of the queue agrees on (a power of two,
    /// at least [`crate::layout::MIN_SLOT_BYTES`]), and `cap_log2` matches
    /// the queue's capacity.
    pub unsafe fn from_raw(base: *mut u8, slot_bytes: usize, cap_log2: u32) -> Self {
        debug_assert!(!base.is_null());
        debug_assert!(slot_bytes.is_power_of_two());
        Self {
            // SAFETY: non-null per the caller's contract.
            base: unsafe { NonNull::new_unchecked(base) },
            slot_bytes,
            cap_log2,
        }
    }

    /// Bytes per slot buffer — the largest payload that avoids the spill
    /// path.
    #[inline(always)]
    pub fn slot_bytes(&self) -> usize {
        self.slot_bytes
    }

    /// The slot buffer assigned to `rank`.
    #[inline(always)]
    fn slot_ptr(&self, rank: i64) -> *mut u8 {
        // SAFETY(index): LinearMap::slot < 2^cap_log2; the region covers
        // 2^cap_log2 buffers per `from_raw`'s contract.
        unsafe {
            self.base
                .as_ptr()
                .add(LinearMap::slot(rank, self.cap_log2) * self.slot_bytes)
        }
    }
}

/// One 64-byte unit of slot-buffer storage; the heap backing allocates the
/// region as `Box<[SlotLine]>` so it is cache-line aligned by construction.
#[repr(C, align(64))]
struct SlotLine([u8; 64]);

/// Heap backing of one bytes queue: counter block + descriptor cells + the
/// slot-buffer region, pinned behind an `Arc` by every handle.
struct BytesShared {
    state: QueueState,
    cells: Box<[DescCell]>,
    slots: Box<[SlotLine]>,
    slot_bytes: usize,
}

impl BytesShared {
    fn new(cap_log2: u32, slot_bytes: usize, producers: u32) -> Arc<Self> {
        let cap = 1usize << cap_log2;
        let cells: Box<[DescCell]> = (0..cap).map(|_| DescCell::empty()).collect();
        let slots: Box<[SlotLine]> = (0..cap * slot_bytes / 64)
            .map(|_| SlotLine([0; 64]))
            .collect();
        Arc::new(Self {
            state: QueueState::new(cap_log2, producers, 1),
            cells,
            slots,
            slot_bytes,
        })
    }

    fn raw(&self) -> RawQueue<PayloadDesc, DescCell, LinearMap> {
        // SAFETY: state and cells live inside the Arc allocation, which
        // outlives every handle embedding the view.
        unsafe { RawQueue::from_raw(&self.state, self.cells.as_ptr()) }
    }

    fn region(&self) -> SlotRegion {
        // SAFETY: the slots box covers exactly capacity * slot_bytes
        // 64-aligned bytes and is pinned by the Arc alongside the cells.
        unsafe {
            SlotRegion::from_raw(
                self.slots.as_ptr() as *mut u8,
                self.slot_bytes,
                self.state.cap_log2(),
            )
        }
    }
}

impl Drop for BytesShared {
    fn drop(&mut self) {
        // Last handle: any still-published descriptor may own a heap spill
        // buffer that was never consumed — free it here. (Slot/chain
        // payloads are plain bytes inside this allocation; nothing to do.)
        for cell in self.cells.iter() {
            if cell.words().load_lo(Ordering::Relaxed) >= 0 {
                // SAFETY: rank >= 0 means the descriptor write completed
                // and no consumer took it over.
                let desc = unsafe { (*cell.data()).assume_init_read() };
                if desc.flags == DESC_HEAP && desc.heap != 0 {
                    // SAFETY: a DESC_HEAP descriptor owns the boxed slice
                    // it points to until a consumer (or this drop) takes it.
                    drop(unsafe { heap_buf_from_desc(&desc) });
                }
            }
        }
    }
}

/// Reconstructs the boxed payload a `DESC_HEAP` descriptor owns.
///
/// # Safety
/// `desc` is a `DESC_HEAP` descriptor whose buffer has not yet been taken
/// over (by a consumer or a previous call).
unsafe fn heap_buf_from_desc(desc: &PayloadDesc) -> Box<[u8]> {
    debug_assert_eq!(desc.flags, DESC_HEAP);
    // SAFETY: per this function's contract the pointer/length pair came
    // from Box::into_raw on exactly this allocation.
    unsafe {
        Box::from_raw(core::ptr::slice_from_raw_parts_mut(
            desc.heap as *mut u8,
            desc.len as usize,
        ))
    }
}

/// A producer-side reservation in flight (reserved, not yet committed).
enum PendingWrite {
    /// The payload fits the rank's slot buffer.
    Inline { rank: i64, len: usize },
    /// Chain spill staged in the producer's scratch buffer, to be scattered
    /// over `cells` consecutive ranks starting at `start` on commit.
    Chain { start: i64, cells: u32, len: usize },
    /// Heap spill: the reservation IS the allocation.
    Heap { rank: i64, buf: Box<[u8]> },
}

/// A consumer-side claim in flight (claimed, not yet released).
enum ClaimedView {
    /// Borrowing the rank's slot buffer; `retire(rank)` on release.
    Inline { rank: i64, len: usize },
    /// Chain spill reassembled into the consumer's scratch buffer; the
    /// ranks were already retired during assembly.
    Spill { len: usize },
    /// Heap spill taken over from the descriptor; freed on release.
    Heap { buf: Box<[u8]> },
}

mod sealed {
    /// The bytes traits are implemented only by this module's engines: the
    /// hidden protocol methods (`pending_parts`, `release_claimed`, …) form
    /// an unsafe-adjacent contract the [`super::WriteSlot`]/
    /// [`super::PayloadRef`] guards rely on.
    pub trait Sealed {}
}

/// The producing half of the zero-copy bytes protocol: reserve a length,
/// write in place, commit to publish.
///
/// Sealed — implemented by [`SpProducer`] and [`MpProducer`]. The provided
/// methods are the API; the `#[doc(hidden)]` required methods are the
/// engine protocol the guards drive.
pub trait BytesProducer: sealed::Sealed + Sized {
    /// The largest payload a `reserve` on this queue can ever satisfy
    /// (`usize::MAX` when heap spill makes it effectively unbounded).
    fn max_payload(&self) -> usize;

    /// Whether an uncommitted reservation is currently held. (Always
    /// `false` outside a [`WriteSlot`]'s lifetime.)
    fn has_pending(&self) -> bool;

    #[doc(hidden)]
    fn try_reserve_pending(&mut self, len: usize) -> Result<(), TryReserveError>;
    #[doc(hidden)]
    fn pending_parts(&mut self) -> (*mut u8, usize);
    #[doc(hidden)]
    fn commit_pending(&mut self);
    #[doc(hidden)]
    fn abort_pending(&mut self);
    #[doc(hidden)]
    fn full_wait_round(
        &mut self,
        len: usize,
        strat: &mut WaitStrategy,
        deadline: Option<Instant>,
    ) -> WaitRound;
    #[doc(hidden)]
    fn wait_config(&self) -> WaitConfig;

    /// Reserves space for a `len`-byte payload without blocking.
    ///
    /// On success the returned [`WriteSlot`] derefs to `len` writable bytes
    /// (zero-initialized only on the spill paths); fill it and
    /// [`commit`](WriteSlot::commit). Dropping it uncommitted aborts the
    /// reservation — consumers never observe it.
    ///
    /// An uncommitted previous reservation (possible only if a `WriteSlot`
    /// was leaked) is aborted first.
    fn try_reserve(&mut self, len: usize) -> Result<WriteSlot<'_, Self>, TryReserveError> {
        self.try_reserve_pending(len)?;
        let (ptr, n) = self.pending_parts();
        debug_assert_eq!(n, len);
        Ok(WriteSlot {
            tx: self,
            ptr,
            len: n,
            committed: false,
        })
    }

    /// Reserves space for a `len`-byte payload, waiting — spinning, then
    /// parking per the configured [`WaitConfig`] — while the queue is full.
    ///
    /// Only the permanent failure remains: a payload no reservation on
    /// this queue can ever satisfy.
    fn reserve(&mut self, len: usize) -> Result<WriteSlot<'_, Self>, ReserveError> {
        let mut strat = WaitStrategy::new(self.wait_config());
        loop {
            match self.try_reserve_pending(len) {
                Ok(()) => break,
                Err(TryReserveError::TooLarge { len, max }) => {
                    return Err(ReserveError::TooLarge { len, max });
                }
                Err(TryReserveError::Full) => {
                    self.full_wait_round(len, &mut strat, None);
                }
            }
        }
        let (ptr, n) = self.pending_parts();
        Ok(WriteSlot {
            tx: self,
            ptr,
            len: n,
            committed: false,
        })
    }

    /// Builds the [`WriteSlot`] guard over a reservation already held via
    /// [`try_reserve_pending`](Self::try_reserve_pending) — for wrappers
    /// (ffq-shm's liveness-probing producers) that drive the claim loop
    /// themselves and only afterwards hand out the guard.
    #[doc(hidden)]
    fn pending_slot(&mut self) -> Option<WriteSlot<'_, Self>> {
        if !self.has_pending() {
            return None;
        }
        let (ptr, n) = self.pending_parts();
        Some(WriteSlot {
            tx: self,
            ptr,
            len: n,
            committed: false,
        })
    }

    /// Copy-in convenience: `reserve(payload.len())`, copy, commit.
    fn send_bytes(&mut self, payload: &[u8]) -> Result<(), ReserveError> {
        let mut slot = self.reserve(payload.len())?;
        slot.copy_from_slice(payload);
        slot.commit();
        Ok(())
    }
}

/// The consuming half of the zero-copy bytes protocol: claim a payload,
/// read it borrowed, release to recycle the cell.
///
/// Sealed — implemented by [`SpscConsumer`] and [`McConsumer`].
pub trait BytesConsumer: sealed::Sealed + Sized {
    /// Whether a claimed-but-unreleased payload is currently held. (Always
    /// `false` outside a [`PayloadRef`]'s lifetime.)
    fn has_claimed(&self) -> bool;

    #[doc(hidden)]
    fn try_claim_payload(&mut self) -> Result<(), TryDequeueError>;
    #[doc(hidden)]
    fn claimed_parts(&self) -> (*const u8, usize);
    #[doc(hidden)]
    fn release_claimed(&mut self);
    #[doc(hidden)]
    fn empty_wait_round(
        &mut self,
        strat: &mut WaitStrategy,
        deadline: Option<Instant>,
    ) -> WaitRound;
    #[doc(hidden)]
    fn wait_config(&self) -> WaitConfig;

    /// Claims the next payload without blocking.
    ///
    /// The returned [`PayloadRef`] borrows the payload bytes in place
    /// (slot buffer, or the reassembled/taken-over spill); the rank is
    /// retired — its cell recycled — when the `PayloadRef` drops.
    fn try_recv(&mut self) -> Result<PayloadRef<'_, Self>, TryDequeueError> {
        self.try_claim_payload()?;
        let (ptr, len) = self.claimed_parts();
        Ok(PayloadRef { rx: self, ptr, len })
    }

    /// Claims the next payload, waiting — spinning, then parking per the
    /// configured [`WaitConfig`] — while the queue is empty.
    fn recv(&mut self) -> Result<PayloadRef<'_, Self>, Disconnected> {
        let mut strat = WaitStrategy::new(self.wait_config());
        loop {
            match self.try_claim_payload() {
                Ok(()) => break,
                Err(TryDequeueError::Disconnected) => return Err(Disconnected),
                Err(TryDequeueError::Empty) => {
                    self.empty_wait_round(&mut strat, None);
                }
            }
        }
        let (ptr, len) = self.claimed_parts();
        Ok(PayloadRef { rx: self, ptr, len })
    }

    /// Claims the next payload, giving up after `timeout`.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<PayloadRef<'_, Self>, TryDequeueError> {
        let mut strat = WaitStrategy::new(self.wait_config());
        let mut deadline = None;
        loop {
            match self.try_claim_payload() {
                Ok(()) => break,
                Err(TryDequeueError::Disconnected) => return Err(TryDequeueError::Disconnected),
                Err(TryDequeueError::Empty) => {
                    let d = *deadline.get_or_insert_with(|| Instant::now() + timeout);
                    if self.empty_wait_round(&mut strat, Some(d)) == WaitRound::Expired {
                        return Err(TryDequeueError::Empty);
                    }
                }
            }
        }
        let (ptr, len) = self.claimed_parts();
        Ok(PayloadRef { rx: self, ptr, len })
    }
}

/// A reserved, writable payload buffer. Derefs to `[u8]`.
///
/// [`commit`](Self::commit) publishes the payload (the typed enqueue's
/// linearization point); dropping uncommitted aborts the reservation and
/// consumers never observe it. The pointee is stable for the guard's whole
/// lifetime: a slot buffer pinned by the queue allocation, or a spill
/// buffer owned by the reservation itself.
pub struct WriteSlot<'a, P: BytesProducer> {
    tx: &'a mut P,
    ptr: *mut u8,
    len: usize,
    committed: bool,
}

impl<P: BytesProducer> WriteSlot<'_, P> {
    /// Publishes the payload; after this call consumers can claim it.
    pub fn commit(mut self) {
        self.committed = true;
        self.tx.commit_pending();
    }

    /// The reserved length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the reservation is for zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<P: BytesProducer> Deref for WriteSlot<'_, P> {
    type Target = [u8];
    #[inline(always)]
    fn deref(&self) -> &[u8] {
        // SAFETY: `ptr` points at `len` bytes the pending reservation owns
        // exclusively (see the struct docs for pointee stability).
        unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<P: BytesProducer> DerefMut for WriteSlot<'_, P> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut [u8] {
        // SAFETY: as in Deref; `&mut self` makes the access unique.
        unsafe { core::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl<P: BytesProducer> Drop for WriteSlot<'_, P> {
    fn drop(&mut self) {
        if !self.committed {
            self.tx.abort_pending();
        }
    }
}

/// A claimed, borrowed payload. Derefs to `[u8]`.
///
/// Dropping it retires the claimed rank, recycling the cell (and its slot
/// buffer) back to the producer side. Holding it long keeps the cell busy —
/// producers skip it via gap announcements, so throughput degrades but
/// nothing corrupts.
pub struct PayloadRef<'a, R: BytesConsumer> {
    rx: &'a mut R,
    ptr: *const u8,
    len: usize,
}

impl<R: BytesConsumer> Deref for PayloadRef<'_, R> {
    type Target = [u8];
    #[inline(always)]
    fn deref(&self) -> &[u8] {
        // SAFETY: `ptr` points at `len` bytes the claim holds: a published
        // slot buffer no producer reuses before the retire in Drop, or a
        // spill buffer the claim owns.
        unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<R: BytesConsumer> Drop for PayloadRef<'_, R> {
    fn drop(&mut self) {
        self.rx.release_claimed();
    }
}

/// Single-producer bytes engine (SPSC and SPMC flavors): the paper's
/// private-tail enqueue with the publish deferred to [`WriteSlot::commit`].
pub struct SpProducer {
    raw: RawProducer<PayloadDesc, DescCell, LinearMap>,
    slots: SlotRegion,
    spill: SpillMode,
    /// Scratch the chain spill stages into between reserve and commit.
    chain_buf: Vec<u8>,
    pending: Option<PendingWrite>,
    /// Pins the heap allocation (None for `from_raw_parts` engines, whose
    /// caller pins the region).
    _keep: Option<Arc<BytesShared>>,
    /// Whether Drop decrements the producer count (heap channels yes, raw
    /// engines defer to their caller's handshake).
    owns_count: bool,
}

impl sealed::Sealed for SpProducer {}

impl SpProducer {
    /// Wraps a raw single-producer handle and its slot region.
    ///
    /// # Safety
    ///
    /// `raw`'s attach contract holds (unique producer, live pinned queue),
    /// `slots` views the slot region every peer of this queue agrees on
    /// (same base, `slot_bytes`, capacity), and the region outlives this
    /// engine. `spill` must be [`SpillMode::Heap`] only if every consumer
    /// shares this address space. The caller manages the producer count.
    pub unsafe fn from_raw_parts(
        mut raw: RawProducer<PayloadDesc, DescCell, LinearMap>,
        slots: SlotRegion,
        spill: SpillMode,
        multi_consumer: bool,
    ) -> Self {
        raw.set_multi_consumer(multi_consumer);
        Self {
            raw,
            slots,
            spill,
            chain_buf: Vec::new(),
            pending: None,
            _keep: None,
            owns_count: false,
        }
    }

    /// Replaces the wait policy used by blocking reserves; see
    /// [`WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.raw.set_wait_config(cfg);
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Bytes per slot buffer — the largest payload that stays inline.
    pub fn slot_bytes(&self) -> usize {
        self.slots.slot_bytes()
    }

    /// Snapshot of this producer's counters.
    pub fn stats(&self) -> ProducerStats {
        self.raw.stats()
    }

    /// How many cells a `len`-byte payload occupies under this spill mode.
    fn cells_for(&self, len: usize) -> usize {
        if len <= self.slots.slot_bytes() || self.spill != SpillMode::Chain {
            1
        } else {
            len.div_ceil(self.slots.slot_bytes())
        }
    }
}

impl BytesProducer for SpProducer {
    fn max_payload(&self) -> usize {
        match self.spill {
            SpillMode::Refuse => self.slots.slot_bytes(),
            SpillMode::Chain => self.slots.slot_bytes() * (self.raw.capacity() / 2),
            SpillMode::Heap => usize::MAX,
        }
    }

    fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    fn try_reserve_pending(&mut self, len: usize) -> Result<(), TryReserveError> {
        if self.pending.is_some() {
            self.abort_pending();
        }
        let slot_bytes = self.slots.slot_bytes();
        if len <= slot_bytes {
            let rank = self.raw.reserve_next().map_err(|_| TryReserveError::Full)?;
            self.pending = Some(PendingWrite::Inline { rank, len });
            return Ok(());
        }
        match self.spill {
            SpillMode::Refuse => Err(TryReserveError::TooLarge {
                len,
                max: slot_bytes,
            }),
            SpillMode::Chain => {
                let cells = len.div_ceil(slot_bytes);
                let max_cells = self.raw.capacity() / 2;
                if cells > max_cells {
                    return Err(TryReserveError::TooLarge {
                        len,
                        max: slot_bytes * max_cells,
                    });
                }
                let start = self
                    .raw
                    .reserve_run(cells)
                    .map_err(|_| TryReserveError::Full)?;
                // The scatter on commit reads back from this scratch; it is
                // sized once here and never reallocated while pending, so
                // the WriteSlot's pointer stays stable.
                self.chain_buf.clear();
                self.chain_buf.resize(len, 0);
                self.pending = Some(PendingWrite::Chain {
                    start,
                    cells: cells as u32,
                    len,
                });
                Ok(())
            }
            SpillMode::Heap => {
                let rank = self.raw.reserve_next().map_err(|_| TryReserveError::Full)?;
                self.pending = Some(PendingWrite::Heap {
                    rank,
                    buf: vec![0u8; len].into_boxed_slice(),
                });
                Ok(())
            }
        }
    }

    fn pending_parts(&mut self) -> (*mut u8, usize) {
        match self.pending.as_mut().expect("no pending reservation") {
            PendingWrite::Inline { rank, len } => (self.slots.slot_ptr(*rank), *len),
            PendingWrite::Chain { len, .. } => (self.chain_buf.as_mut_ptr(), *len),
            PendingWrite::Heap { buf, .. } => (buf.as_mut_ptr(), buf.len()),
        }
    }

    fn commit_pending(&mut self) {
        match self.pending.take().expect("no pending reservation") {
            PendingWrite::Inline { rank, len } => {
                // The payload bytes are already in the rank's slot; the
                // Release publish inside orders them for the claimer.
                self.raw.publish_reserved(rank, PayloadDesc::inline(len));
            }
            PendingWrite::Chain { start, cells, len } => {
                let slot = self.slots.slot_bytes();
                let mut off = 0usize;
                for j in 0..cells as i64 {
                    let rank = start + j;
                    let seg = (len - off).min(slot);
                    // SAFETY: reserve_run made this producer the unique
                    // owner of every cell in [start, start+cells); the
                    // scratch holds `len` bytes.
                    unsafe {
                        core::ptr::copy_nonoverlapping(
                            self.chain_buf.as_ptr().add(off),
                            self.slots.slot_ptr(rank),
                            seg,
                        );
                    }
                    let desc = if j == 0 {
                        PayloadDesc {
                            len: len as u64,
                            flags: DESC_CHAIN_HEAD,
                            seg: cells - 1,
                            heap: 0,
                        }
                    } else {
                        PayloadDesc {
                            len: seg as u64,
                            flags: DESC_CHAIN_CONT,
                            seg: 0,
                            heap: 0,
                        }
                    };
                    // Published in ascending rank order: a consumer that
                    // claims the head may have to wait for the tail of this
                    // very loop, but never observes a continuation before
                    // its head.
                    self.raw.publish_reserved(rank, desc);
                    off += seg;
                }
            }
            PendingWrite::Heap { rank, buf } => {
                let len = buf.len();
                let heap = Box::into_raw(buf) as *mut u8 as u64;
                self.raw.publish_reserved(
                    rank,
                    PayloadDesc {
                        len: len as u64,
                        flags: DESC_HEAP,
                        seg: 0,
                        heap,
                    },
                );
            }
        }
    }

    fn abort_pending(&mut self) {
        // Nothing was published and the private tail never moved: the
        // reservation was invisible, so dropping the bookkeeping (and any
        // heap buffer) is the entire abort.
        self.pending = None;
    }

    fn full_wait_round(
        &mut self,
        len: usize,
        strat: &mut WaitStrategy,
        deadline: Option<Instant>,
    ) -> WaitRound {
        let need = self.cells_for(len) as i64;
        let tail = self.raw.tail_rank();
        let cap = self.raw.capacity() as i64;
        let state = self.raw.queue().state();
        strat.wait_round(
            state.not_full(),
            state.wait_is_shared(),
            deadline,
            &mut || {
                // Ready once consumers have drained far enough that a run of
                // `need` cells *can* be free. (The single producer's tail is
                // frozen while it waits.)
                let head = state.head().load(Ordering::Acquire);
                tail + need - head <= cap
            },
        )
    }

    fn wait_config(&self) -> WaitConfig {
        self.raw.wait_config()
    }
}

impl Drop for SpProducer {
    fn drop(&mut self) {
        self.abort_pending();
        if self.owns_count {
            let state = self.raw.queue().state();
            // SeqCst + broadcast: same disconnect discipline as the typed
            // producers (see spsc::Producer::drop).
            state.producers().fetch_sub(1, Ordering::SeqCst);
            state.wake_all();
        }
    }
}

/// Multi-producer bytes engine (MPMC flavor): Algorithm 2's claim CAS with
/// the publish deferred to [`WriteSlot::commit`].
///
/// A claimed cell *must* be resolved: aborting a reservation publishes a
/// `DESC_ABORT` descriptor (consumers retire it silently) rather than
/// leaving the claimed cell to stall its assigned consumer forever.
pub struct MpProducer {
    queue: RawQueue<PayloadDesc, DescCell, LinearMap>,
    stats: ProducerStats,
    wait: WaitConfig,
    slots: SlotRegion,
    spill: SpillMode,
    pending: Option<PendingWrite>,
    keep: Option<Arc<BytesShared>>,
    owns_count: bool,
}

impl sealed::Sealed for MpProducer {}

impl MpProducer {
    /// Replaces the wait policy used by blocking reserves; see
    /// [`WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.wait = cfg;
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Bytes per slot buffer — the largest payload that stays inline.
    pub fn slot_bytes(&self) -> usize {
        self.slots.slot_bytes()
    }

    /// Snapshot of this producer's counters.
    pub fn stats(&self) -> ProducerStats {
        self.stats
    }

    /// Resolves the pending claim as abandoned (never leaves it claimed).
    fn resolve_pending_abort(&mut self) {
        match self.pending.take() {
            None => {}
            Some(PendingWrite::Inline { rank, .. }) => {
                publish_claimed_rank(&self.queue, &mut self.stats, rank, PayloadDesc::abort());
            }
            Some(PendingWrite::Heap { rank, buf }) => {
                drop(buf);
                publish_claimed_rank(&self.queue, &mut self.stats, rank, PayloadDesc::abort());
            }
            Some(PendingWrite::Chain { .. }) => {
                unreachable!("multi-producer queues never reserve chains")
            }
        }
    }
}

impl BytesProducer for MpProducer {
    fn max_payload(&self) -> usize {
        match self.spill {
            SpillMode::Heap => usize::MAX,
            // Chain is unreachable on MP (multiple producers cannot
            // reserve consecutive runs); treat it as Refuse defensively.
            SpillMode::Refuse | SpillMode::Chain => self.slots.slot_bytes(),
        }
    }

    fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    fn try_reserve_pending(&mut self, len: usize) -> Result<(), TryReserveError> {
        if self.pending.is_some() {
            self.abort_pending();
        }
        let slot_bytes = self.slots.slot_bytes();
        if len > slot_bytes && self.spill != SpillMode::Heap {
            return Err(TryReserveError::TooLarge {
                len,
                max: slot_bytes,
            });
        }
        // Counter pre-check: reject a clearly full queue in O(1) without
        // consuming tail ranks.
        let state = self.queue.state();
        let cap = self.queue.capacity();
        let tail = state.tail().load(Ordering::Relaxed);
        let head = state.head().load(Ordering::Acquire);
        if tail - head >= cap as i64 {
            self.stats.full_rejections += 1;
            return Err(TryReserveError::Full);
        }
        let rank = claim_rank_cell(&self.queue, &mut self.stats, cap)
            .map_err(|_| TryReserveError::Full)?;
        self.pending = Some(if len <= slot_bytes {
            PendingWrite::Inline { rank, len }
        } else {
            PendingWrite::Heap {
                rank,
                buf: vec![0u8; len].into_boxed_slice(),
            }
        });
        Ok(())
    }

    fn pending_parts(&mut self) -> (*mut u8, usize) {
        match self.pending.as_mut().expect("no pending reservation") {
            PendingWrite::Inline { rank, len } => (self.slots.slot_ptr(*rank), *len),
            PendingWrite::Heap { buf, .. } => (buf.as_mut_ptr(), buf.len()),
            PendingWrite::Chain { .. } => {
                unreachable!("multi-producer queues never reserve chains")
            }
        }
    }

    fn commit_pending(&mut self) {
        match self.pending.take().expect("no pending reservation") {
            PendingWrite::Inline { rank, len } => {
                publish_claimed_rank(&self.queue, &mut self.stats, rank, PayloadDesc::inline(len));
            }
            PendingWrite::Heap { rank, buf } => {
                let len = buf.len();
                let heap = Box::into_raw(buf) as *mut u8 as u64;
                publish_claimed_rank(
                    &self.queue,
                    &mut self.stats,
                    rank,
                    PayloadDesc {
                        len: len as u64,
                        flags: DESC_HEAP,
                        seg: 0,
                        heap,
                    },
                );
            }
            PendingWrite::Chain { .. } => {
                unreachable!("multi-producer queues never reserve chains")
            }
        }
    }

    fn abort_pending(&mut self) {
        self.resolve_pending_abort();
    }

    fn full_wait_round(
        &mut self,
        _len: usize,
        strat: &mut WaitStrategy,
        deadline: Option<Instant>,
    ) -> WaitRound {
        let state = self.queue.state();
        let cap = self.queue.capacity() as i64;
        strat.wait_round(
            state.not_full(),
            state.wait_is_shared(),
            deadline,
            &mut || {
                let tail = state.tail().load(Ordering::Acquire);
                let head = state.head().load(Ordering::Acquire);
                tail - head < cap
            },
        )
    }

    fn wait_config(&self) -> WaitConfig {
        self.wait
    }
}

impl Clone for MpProducer {
    /// Adds a producer. Heap-channel handles only.
    fn clone(&self) -> Self {
        let keep = self
            .keep
            .clone()
            .expect("raw-region bytes producers are cloned by the region owner");
        // Relaxed inc per the QueueState handle-count rule: a new handle is
        // handed to its thread through a happens-before edge anyway.
        keep.state.producers().fetch_add(1, Ordering::Relaxed);
        Self {
            queue: keep.raw(),
            stats: ProducerStats::default(),
            wait: self.wait,
            slots: self.slots,
            spill: self.spill,
            pending: None,
            keep: Some(keep),
            owns_count: true,
        }
    }
}

impl Drop for MpProducer {
    fn drop(&mut self) {
        self.resolve_pending_abort();
        if self.owns_count {
            let state = self.queue.state();
            state.producers().fetch_sub(1, Ordering::SeqCst);
            state.wake_all();
        }
    }
}

/// Single-consumer bytes engine (SPSC flavor): private head, and the only
/// engine that reassembles chain spills.
pub struct SpscConsumer {
    raw: RawSpscConsumer<PayloadDesc, DescCell, LinearMap>,
    slots: SlotRegion,
    /// Whether `DESC_HEAP` descriptors may be honored (same-address-space
    /// queues only; over shm a heap pointer from a peer is garbage).
    allow_heap: bool,
    /// Scratch that chain spills are reassembled into.
    spill_buf: Vec<u8>,
    claimed: Option<ClaimedView>,
    _keep: Option<Arc<BytesShared>>,
    owns_count: bool,
}

impl sealed::Sealed for SpscConsumer {}

impl SpscConsumer {
    /// Wraps a raw SPSC consumer handle and its slot region.
    ///
    /// # Safety
    ///
    /// `raw`'s attach contract holds (unique consumer, single-producer
    /// queue, live pinned region), and `slots` views the same slot region
    /// as the producer (same base, `slot_bytes`, capacity), outliving this
    /// engine. `spill` must match the producer's mode; [`SpillMode::Heap`]
    /// additionally requires the producer to share this address space. The
    /// caller manages the consumer count.
    pub unsafe fn from_raw_parts(
        raw: RawSpscConsumer<PayloadDesc, DescCell, LinearMap>,
        slots: SlotRegion,
        spill: SpillMode,
    ) -> Self {
        Self {
            raw,
            slots,
            allow_heap: spill == SpillMode::Heap,
            spill_buf: Vec::new(),
            claimed: None,
            _keep: None,
            owns_count: false,
        }
    }

    /// Replaces the wait policy used by blocking receives; see
    /// [`WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.raw.set_wait_config(cfg);
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Snapshot of this consumer's counters.
    pub fn stats(&self) -> ConsumerStats {
        self.raw.stats()
    }

    /// Reassembles a chain spill into `spill_buf`, retiring every rank of
    /// the run as its segment is copied out.
    ///
    /// Every length is clamped against what the slot geometry can actually
    /// hold, so a corrupt (or hostile shm peer's) descriptor can at worst
    /// deliver wrong *bytes* — never out-of-bounds reads. Continuations are
    /// published by the same commit that published the head, in rank order,
    /// so the waits here are bounded by the producer's memcpy progress.
    fn assemble_chain(&mut self, head_rank: i64, desc: PayloadDesc) -> Result<usize, Disconnected> {
        let slot = self.slots.slot_bytes();
        let total = (desc.len as usize).min(slot * (desc.seg as usize + 1));
        self.spill_buf.clear();
        self.spill_buf.reserve(total);
        let first = total.min(slot);
        // SAFETY: the claim on head_rank gives exclusive read access to its
        // slot buffer; `first <= slot_bytes`.
        unsafe {
            self.spill_buf
                .extend_from_slice(core::slice::from_raw_parts(
                    self.slots.slot_ptr(head_rank),
                    first,
                ));
        }
        self.raw.retire(head_rank);
        let mut copied = first;
        let mut strat = WaitStrategy::new(self.raw.wait_config());
        for _ in 0..desc.seg {
            let (rank, cdesc) = loop {
                match self.raw.try_claim() {
                    Ok(claim) => break claim,
                    Err(TryDequeueError::Empty) => {
                        let state = self.raw.queue().state();
                        strat.wait_round(
                            state.not_empty(),
                            state.wait_is_shared(),
                            None,
                            &mut || self.raw.wake_ready(),
                        );
                    }
                    Err(TryDequeueError::Disconnected) => {
                        // Producer died between head and continuations —
                        // only possible for an shm peer killed mid-commit
                        // (an in-process commit completes before the handle
                        // can drop). Surface a clean disconnect, not a
                        // partial payload.
                        self.spill_buf.clear();
                        return Err(Disconnected);
                    }
                }
            };
            debug_assert_eq!(cdesc.flags, DESC_CHAIN_CONT);
            let seg = (cdesc.len as usize).min(slot).min(total - copied);
            // SAFETY: as for the head segment; `seg <= slot_bytes`.
            unsafe {
                self.spill_buf
                    .extend_from_slice(core::slice::from_raw_parts(self.slots.slot_ptr(rank), seg));
            }
            self.raw.retire(rank);
            copied += seg;
        }
        Ok(copied)
    }
}

impl BytesConsumer for SpscConsumer {
    fn has_claimed(&self) -> bool {
        self.claimed.is_some()
    }

    fn try_claim_payload(&mut self) -> Result<(), TryDequeueError> {
        if self.claimed.is_some() {
            return Ok(());
        }
        loop {
            let (rank, desc) = self.raw.try_claim()?;
            match desc.flags {
                DESC_INLINE => {
                    // Clamp: a corrupt descriptor must not widen the view
                    // past the slot buffer.
                    let len = (desc.len as usize).min(self.slots.slot_bytes());
                    self.claimed = Some(ClaimedView::Inline { rank, len });
                    return Ok(());
                }
                DESC_CHAIN_HEAD => match self.assemble_chain(rank, desc) {
                    Ok(len) => {
                        self.claimed = Some(ClaimedView::Spill { len });
                        return Ok(());
                    }
                    Err(Disconnected) => return Err(TryDequeueError::Disconnected),
                },
                DESC_HEAP if self.allow_heap && desc.heap != 0 => {
                    // Take the allocation over; the cell can recycle now.
                    // SAFETY: allow_heap means the producer shares this
                    // address space and published ownership with the rank.
                    let buf = unsafe { heap_buf_from_desc(&desc) };
                    self.raw.retire(rank);
                    self.claimed = Some(ClaimedView::Heap { buf });
                    return Ok(());
                }
                // DESC_ABORT, disallowed heap, or unknown flags (hostile
                // shm peer): retire and move on — degradation, never UB.
                _ => self.raw.retire(rank),
            }
        }
    }

    fn claimed_parts(&self) -> (*const u8, usize) {
        match self.claimed.as_ref().expect("no claimed payload") {
            ClaimedView::Inline { rank, len } => (self.slots.slot_ptr(*rank) as *const u8, *len),
            ClaimedView::Spill { len } => (self.spill_buf.as_ptr(), *len),
            ClaimedView::Heap { buf } => (buf.as_ptr(), buf.len()),
        }
    }

    fn release_claimed(&mut self) {
        match self.claimed.take() {
            None => {}
            Some(ClaimedView::Inline { rank, .. }) => self.raw.retire(rank),
            // Chain ranks were retired during assembly; the heap buffer
            // frees on drop.
            Some(ClaimedView::Spill { .. }) | Some(ClaimedView::Heap { .. }) => {}
        }
    }

    fn empty_wait_round(
        &mut self,
        strat: &mut WaitStrategy,
        deadline: Option<Instant>,
    ) -> WaitRound {
        let state = self.raw.queue().state();
        strat.wait_round(
            state.not_empty(),
            state.wait_is_shared(),
            deadline,
            &mut || self.raw.wake_ready(),
        )
    }

    fn wait_config(&self) -> WaitConfig {
        self.raw.wait_config()
    }
}

impl Drop for SpscConsumer {
    fn drop(&mut self) {
        self.release_claimed();
        if self.owns_count {
            let state = self.raw.queue().state();
            state.consumers().fetch_sub(1, Ordering::SeqCst);
            state.wake_all();
        }
    }
}

/// Shared-head bytes consumer (SPMC `MP = false`, MPMC `MP = true`):
/// `fetch_add` rank claims with pending-rank semantics, exactly the typed
/// consumers' discipline.
///
/// Never sees chains (multi-consumer queues spill to heap or refuse): a
/// chain run would be split across consumers.
pub struct McConsumer<const MP: bool> {
    raw: RawConsumer<PayloadDesc, DescCell, LinearMap, MP>,
    slots: SlotRegion,
    allow_heap: bool,
    claimed: Option<ClaimedView>,
    keep: Option<Arc<BytesShared>>,
    owns_count: bool,
}

impl<const MP: bool> sealed::Sealed for McConsumer<MP> {}

impl<const MP: bool> McConsumer<MP> {
    /// Wraps a raw shared-head consumer handle and its slot region.
    ///
    /// # Safety
    ///
    /// `raw`'s attach contract holds (MP matches the queue's producer
    /// variant, live pinned region), and `slots` views the same slot
    /// region as every peer (same base, `slot_bytes`, capacity), outliving
    /// this engine. `spill` must match the producers' mode;
    /// [`SpillMode::Heap`] additionally requires all producers to share
    /// this address space. The caller manages the consumer count.
    pub unsafe fn from_raw_parts(
        raw: RawConsumer<PayloadDesc, DescCell, LinearMap, MP>,
        slots: SlotRegion,
        spill: SpillMode,
    ) -> Self {
        Self {
            raw,
            slots,
            allow_heap: spill == SpillMode::Heap,
            claimed: None,
            keep: None,
            owns_count: false,
        }
    }

    /// Replaces the wait policy used by blocking receives; see
    /// [`WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.raw.set_wait_config(cfg);
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Snapshot of this consumer's counters.
    pub fn stats(&self) -> ConsumerStats {
        self.raw.stats()
    }
}

impl<const MP: bool> BytesConsumer for McConsumer<MP> {
    fn has_claimed(&self) -> bool {
        self.claimed.is_some()
    }

    fn try_claim_payload(&mut self) -> Result<(), TryDequeueError> {
        if self.claimed.is_some() {
            return Ok(());
        }
        loop {
            let (rank, desc) = self.raw.try_claim()?;
            match desc.flags {
                DESC_INLINE => {
                    let len = (desc.len as usize).min(self.slots.slot_bytes());
                    self.claimed = Some(ClaimedView::Inline { rank, len });
                    return Ok(());
                }
                DESC_HEAP if self.allow_heap && desc.heap != 0 => {
                    // SAFETY: allow_heap means same-address-space producers
                    // that published ownership with the rank.
                    let buf = unsafe { heap_buf_from_desc(&desc) };
                    self.raw.retire(rank);
                    self.claimed = Some(ClaimedView::Heap { buf });
                    return Ok(());
                }
                // DESC_ABORT (abandoned MP reservation), chain flags (never
                // produced on multi-consumer queues), disallowed heap, or
                // unknown garbage: retire and continue.
                _ => self.raw.retire(rank),
            }
        }
    }

    fn claimed_parts(&self) -> (*const u8, usize) {
        match self.claimed.as_ref().expect("no claimed payload") {
            ClaimedView::Inline { rank, len } => (self.slots.slot_ptr(*rank) as *const u8, *len),
            // Shared-head queues never produce chains; the claim loop
            // retires anything chain-flagged instead of building a Spill.
            ClaimedView::Spill { .. } => unreachable!("no chain spills on shared-head consumers"),
            ClaimedView::Heap { buf } => (buf.as_ptr(), buf.len()),
        }
    }

    fn release_claimed(&mut self) {
        match self.claimed.take() {
            None => {}
            Some(ClaimedView::Inline { rank, .. }) => self.raw.retire(rank),
            Some(ClaimedView::Spill { .. }) | Some(ClaimedView::Heap { .. }) => {}
        }
    }

    fn empty_wait_round(
        &mut self,
        strat: &mut WaitStrategy,
        deadline: Option<Instant>,
    ) -> WaitRound {
        let state = self.raw.queue().state();
        strat.wait_round(
            state.not_empty(),
            state.wait_is_shared(),
            deadline,
            &mut || self.raw.wake_ready(),
        )
    }

    fn wait_config(&self) -> WaitConfig {
        self.raw.wait_config()
    }
}

impl<const MP: bool> Clone for McConsumer<MP> {
    /// Adds a consumer. Heap-channel handles only.
    fn clone(&self) -> Self {
        let keep = self
            .keep
            .clone()
            .expect("raw-region bytes consumers are cloned by the region owner");
        keep.state.consumers().fetch_add(1, Ordering::Relaxed);
        // SAFETY: same pinned queue, matching MP; the count was just added.
        let mut raw = unsafe { RawConsumer::attach(keep.raw()) };
        raw.set_wait_config(self.raw.wait_config());
        Self {
            raw,
            slots: self.slots,
            allow_heap: self.allow_heap,
            claimed: None,
            keep: Some(keep),
            owns_count: true,
        }
    }
}

impl<const MP: bool> Drop for McConsumer<MP> {
    fn drop(&mut self) {
        self.release_claimed();
        // Re-circulate any published item among parked pending ranks.
        self.raw.recover_pending();
        if self.owns_count {
            let state = self.raw.queue().state();
            state.consumers().fetch_sub(1, Ordering::SeqCst);
            state.wake_all();
        }
    }
}

/// Builds the heap-backed SPSC bytes queue (chain spill).
pub(crate) fn heap_spsc(
    capacity: usize,
    slot_bytes: usize,
) -> Result<(SpProducer, SpscConsumer), CapacityError> {
    let cap_log2 = normalize_capacity(capacity)?;
    let slot_bytes = normalize_slot_bytes(slot_bytes)?;
    let shared = BytesShared::new(cap_log2, slot_bytes, 1);
    let slots = shared.region();
    // SAFETY: the Arc in each handle pins the region; exactly one producer
    // and one consumer are created with the counts pre-set to 1/1.
    let tx = SpProducer {
        raw: unsafe { RawProducer::attach(shared.raw()) },
        slots,
        spill: SpillMode::Chain,
        chain_buf: Vec::new(),
        pending: None,
        _keep: Some(Arc::clone(&shared)),
        owns_count: true,
    };
    let rx = SpscConsumer {
        raw: unsafe { RawSpscConsumer::attach(shared.raw()) },
        slots,
        // Chain-spill queue: DESC_HEAP never appears, but honoring it is
        // harmless in-process.
        allow_heap: true,
        spill_buf: Vec::new(),
        claimed: None,
        _keep: Some(shared),
        owns_count: true,
    };
    Ok((tx, rx))
}

/// Builds the heap-backed SPMC bytes queue (heap spill).
pub(crate) fn heap_spmc(
    capacity: usize,
    slot_bytes: usize,
) -> Result<(SpProducer, McConsumer<false>), CapacityError> {
    let cap_log2 = normalize_capacity(capacity)?;
    let slot_bytes = normalize_slot_bytes(slot_bytes)?;
    let shared = BytesShared::new(cap_log2, slot_bytes, 1);
    let slots = shared.region();
    // SAFETY: as in heap_spsc; the producer declares multi-consumer wakes.
    let mut raw_tx = unsafe { RawProducer::attach(shared.raw()) };
    raw_tx.set_multi_consumer(true);
    let tx = SpProducer {
        raw: raw_tx,
        slots,
        spill: SpillMode::Heap,
        chain_buf: Vec::new(),
        pending: None,
        _keep: Some(Arc::clone(&shared)),
        owns_count: true,
    };
    let rx = McConsumer {
        // SAFETY: MP = false matches the single-producer engine.
        raw: unsafe { RawConsumer::attach(shared.raw()) },
        slots,
        allow_heap: true,
        claimed: None,
        keep: Some(shared),
        owns_count: true,
    };
    Ok((tx, rx))
}

/// Builds the heap-backed MPMC bytes queue (heap spill).
pub(crate) fn heap_mpmc(
    capacity: usize,
    slot_bytes: usize,
) -> Result<(MpProducer, McConsumer<true>), CapacityError> {
    let cap_log2 = normalize_capacity(capacity)?;
    let slot_bytes = normalize_slot_bytes(slot_bytes)?;
    let shared = BytesShared::new(cap_log2, slot_bytes, 1);
    let slots = shared.region();
    let tx = MpProducer {
        queue: shared.raw(),
        stats: ProducerStats::default(),
        wait: WaitConfig::default(),
        slots,
        spill: SpillMode::Heap,
        pending: None,
        keep: Some(Arc::clone(&shared)),
        owns_count: true,
    };
    let rx = McConsumer {
        // SAFETY: MP = true matches the fetch_add producer engine; the Arc
        // pins the region and the counts were pre-set to 1/1.
        raw: unsafe { RawConsumer::attach(shared.raw()) },
        slots,
        allow_heap: true,
        claimed: None,
        keep: Some(shared),
        owns_count: true,
    };
    Ok((tx, rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn spsc_inline_round_trip() {
        let (mut tx, mut rx) = heap_spsc(8, 64).unwrap();
        assert_eq!(tx.slot_bytes(), 64);
        let msg = pattern(48, 7);
        let mut slot = tx.try_reserve(48).unwrap();
        slot.copy_from_slice(&msg);
        slot.commit();
        let got = rx.try_recv().unwrap();
        assert_eq!(&*got, &msg[..]);
        drop(got);
        assert!(matches!(rx.try_recv(), Err(TryDequeueError::Empty)));
    }

    #[test]
    fn spsc_zero_len_payload() {
        let (mut tx, mut rx) = heap_spsc(4, 64).unwrap();
        tx.send_bytes(&[]).unwrap();
        let got = rx.try_recv().unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn spsc_chain_spill_round_trip() {
        let (mut tx, mut rx) = heap_spsc(16, 64).unwrap();
        // 3 cells: 64 + 64 + 32.
        let msg = pattern(160, 3);
        tx.send_bytes(&msg).unwrap();
        // A small one behind it: ordering preserved across the chain.
        tx.send_bytes(b"tail").unwrap();
        let got = rx.try_recv().unwrap();
        assert_eq!(&*got, &msg[..]);
        drop(got);
        let got = rx.try_recv().unwrap();
        assert_eq!(&*got, b"tail");
    }

    #[test]
    fn spsc_chain_too_large_is_permanent() {
        let (mut tx, _rx) = heap_spsc(8, 64).unwrap();
        // capacity 8 → max 4 chain cells → 256 bytes.
        assert_eq!(tx.max_payload(), 256);
        match tx.try_reserve(257) {
            Err(TryReserveError::TooLarge { len, max }) => {
                assert_eq!((len, max), (257, 256));
            }
            Err(e) => panic!("expected TooLarge, got {e:?}"),
            Ok(_) => panic!("expected TooLarge, got a reservation"),
        }
        assert!(matches!(
            tx.reserve(257),
            Err(ReserveError::TooLarge { len: 257, max: 256 })
        ));
    }

    #[test]
    fn abort_on_drop_publishes_nothing_spsc() {
        let (mut tx, mut rx) = heap_spsc(8, 64).unwrap();
        {
            let mut slot = tx.try_reserve(10).unwrap();
            slot[..10].copy_from_slice(b"discard me");
            // dropped uncommitted
        }
        assert!(!tx.has_pending());
        assert!(matches!(rx.try_recv(), Err(TryDequeueError::Empty)));
        // The rank was not consumed: a full capacity of sends still fits.
        for i in 0..8u8 {
            tx.send_bytes(&[i]).unwrap();
        }
        for i in 0..8u8 {
            assert_eq!(&*rx.try_recv().unwrap(), &[i]);
        }
    }

    #[test]
    fn payload_ref_holds_cell_busy_until_drop() {
        let (mut tx, mut rx) = heap_spsc(2, 64).unwrap();
        tx.send_bytes(b"a").unwrap();
        tx.send_bytes(b"b").unwrap();
        let held = rx.try_recv().unwrap();
        assert_eq!(&*held, b"a");
        // Queue of 2 with one rank still claimed: rank 2 maps onto the
        // claimed cell, so the reservation must fail rather than overwrite.
        assert!(matches!(tx.try_reserve(1), Err(TryReserveError::Full)));
        drop(held);
        // Retired: the producer can use the recycled cell now.
        tx.send_bytes(b"c").unwrap();
        assert_eq!(&*rx.try_recv().unwrap(), b"b");
        assert_eq!(&*rx.try_recv().unwrap(), b"c");
    }

    #[test]
    fn spmc_heap_spill_round_trip() {
        let (mut tx, mut rx) = heap_spmc(8, 64).unwrap();
        assert_eq!(tx.max_payload(), usize::MAX);
        let big = pattern(1000, 9);
        tx.send_bytes(&big).unwrap();
        let got = rx.try_recv().unwrap();
        assert_eq!(&*got, &big[..]);
    }

    #[test]
    fn spmc_clone_shares_stream() {
        let (mut tx, rx) = heap_spmc(64, 64).unwrap();
        let mut rx2 = rx.clone();
        let mut rx1 = rx;
        for i in 0..10u8 {
            tx.send_bytes(&[i]).unwrap();
        }
        let mut seen = Vec::new();
        loop {
            match rx1.try_recv() {
                Ok(p) => seen.push(p[0]),
                Err(_) => break,
            }
            match rx2.try_recv() {
                Ok(p) => seen.push(p[0]),
                Err(_) => break,
            }
        }
        while let Ok(p) = rx1.try_recv() {
            seen.push(p[0]);
        }
        while let Ok(p) = rx2.try_recv() {
            seen.push(p[0]);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn mpmc_abort_unblocks_consumers() {
        let (tx, mut rx) = heap_mpmc(8, 64).unwrap();
        let mut tx2 = tx.clone();
        let mut tx1 = tx;
        // tx1 claims rank 0 and abandons it; tx2 publishes rank 1. The
        // consumer must skip the aborted rank and deliver tx2's payload.
        let slot = tx1.try_reserve(4).unwrap();
        drop(slot); // abort → DESC_ABORT published at rank 0
        tx2.send_bytes(b"live").unwrap();
        let got = rx.recv().unwrap();
        assert_eq!(&*got, b"live");
    }

    #[test]
    fn mpmc_heap_spill_and_disconnect() {
        let (mut tx, mut rx) = heap_mpmc(8, 64).unwrap();
        let big = pattern(300, 5);
        tx.send_bytes(&big).unwrap();
        drop(tx);
        let got = rx.recv().unwrap();
        assert_eq!(&*got, &big[..]);
        drop(got);
        assert_eq!(rx.recv().err(), Some(Disconnected));
    }

    #[test]
    fn unconsumed_heap_spills_freed_with_queue() {
        // Leak-checked under Miri/ASan: heap descriptors still in cells
        // when the last handle drops must be freed by BytesShared::drop.
        let (mut tx, rx) = heap_spmc(8, 64).unwrap();
        tx.send_bytes(&pattern(500, 1)).unwrap();
        tx.send_bytes(&pattern(700, 2)).unwrap();
        drop(tx);
        drop(rx);
    }

    #[test]
    fn reserve_overwrite_aborts_previous() {
        let (mut tx, mut rx) = heap_spsc(8, 64).unwrap();
        tx.try_reserve_pending(5).unwrap();
        assert!(tx.has_pending());
        // Reserving again abandons the first reservation.
        tx.send_bytes(b"second").unwrap();
        assert_eq!(&*rx.try_recv().unwrap(), b"second");
        assert!(matches!(rx.try_recv(), Err(TryDequeueError::Empty)));
    }

    #[test]
    // The blocking endpoints park on a futex, which Miri cannot run; the
    // CI Miri step covers the single-threaded slot-view tests above.
    #[cfg_attr(miri, ignore)]
    fn cross_thread_spsc_stream_mixed_sizes() {
        const ROUNDS: usize = 2_000;
        let (mut tx, mut rx) = heap_spsc(64, 64).unwrap();
        let t = std::thread::spawn(move || {
            for i in 0..ROUNDS {
                let len = [1usize, 40, 64, 100, 200][i % 5];
                let msg = pattern(len, i as u8);
                tx.send_bytes(&msg).unwrap();
            }
        });
        for i in 0..ROUNDS {
            let len = [1usize, 40, 64, 100, 200][i % 5];
            let want = pattern(len, i as u8);
            let got = rx.recv().unwrap();
            assert_eq!(&*got, &want[..], "round {i}");
        }
        t.join().unwrap();
        assert_eq!(rx.recv().err(), Some(Disconnected));
    }

    #[test]
    // See `cross_thread_spsc_stream_mixed_sizes` on Miri and futexes.
    #[cfg_attr(miri, ignore)]
    fn cross_thread_mpmc_fan_in_out() {
        const PER_PRODUCER: usize = 500;
        let (tx, rx) = heap_mpmc(256, 64).unwrap();
        let producers: Vec<_> = (0..3u8)
            .map(|p| {
                let mut tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let len = 1 + (i % 120);
                        let mut msg = pattern(len, p);
                        msg[0] = p;
                        tx.send_bytes(&msg).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let mut rx = rx.clone();
                std::thread::spawn(move || {
                    let mut n = 0usize;
                    while let Ok(p) = rx.recv() {
                        assert!(!p.is_empty());
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 3 * PER_PRODUCER);
    }
}
