//! The unbounded tier: a lock-free segment list of FFQ rings.
//!
//! FFQ is bounded by design — the paper sizes the ring so it "never fills
//! up". This module removes the sizing obligation without touching the ring
//! protocol: an unbounded queue is a singly-linked list of fixed-capacity
//! [`crate::segment`] rings. Enqueues run the ordinary bounded protocol on
//! the newest segment; when it fills, the producer *rolls* — allocates (or
//! reuses, via a one-slot freelist) a fresh segment, links it, and seals the
//! old one — instead of waiting for consumers. **An unbounded enqueue never
//! blocks and never parks**; its cost beyond the bounded enqueue is one
//! pointer-chase amortized over a whole segment.
//!
//! Consumers drain the segment a handle is positioned on with the unchanged
//! [`crate::raw`] engines and follow the `next` link once a sealed segment
//! is drained. Drained segments are reclaimed through
//! [`ffq_sync::epoch`]: every handle owns an era slot; a retired segment is
//! freed (to the freelist, or the allocator) only once every live handle's
//! era has moved past the segment's. In steady state — consumers keeping up
//! — every roll is a freelist hit and the tier allocates nothing.
//!
//! # Sealing, per flavor
//!
//! *Single-producer* (spsc/spmc): the producer links the successor first,
//! then publishes the final tail as the segment's seal boundary, then drops
//! the segment's inner producer count to 0 (the consumers' disconnect
//! probe) and broadcasts a wake. Because the link precedes the seal, a
//! consumer that observes "disconnected" on a ring always finds either the
//! successor or a genuinely dropped producer.
//!
//! *Multi-producer* (mpmc): any producer that finds the segment full may
//! roll; a CAS on the `next` link elects one winner (losers donate their
//! fresh segment to the freelist). The winner then *poisons* the segment's
//! rank dispenser with a huge addend — claims landing at or past
//! [`POISON_CUTOFF`] abandon the segment — and the dispenser value at
//! poison time becomes the seal boundary: every rank below it was claimed
//! by some producer and will be resolved (published or gap-announced) right
//! there; no rank at or past it ever will be. Consumers prune claimed ranks
//! beyond the boundary ([`crate::raw::RawConsumer::prune_pending_from`])
//! and advance once the head catches up to it.
//!
//! # Linearization at segment boundaries
//!
//! Within a segment, order is the ring's rank order, unchanged. Across
//! segments, every enqueue into segment *k+1* follows the seal of segment
//! *k* (the roll performs both), and every dequeue from *k+1* by a given
//! consumer follows its drain of *k* — so per-producer FIFO composes across
//! the seam exactly as it does across ranks. See ALGORITHM.md §14.
//!
//! # Reclamation is handle-driven
//!
//! A handle's era slot advances only when the handle itself crosses a
//! seam — so a handle that is held but never used (a prototype kept only
//! for `clone`, a standby consumer) keeps pinning the segment it last
//! touched, and every segment retired at or after that era stays in the
//! limbo list for as long as items keep flowing. This is the standard
//! epoch-reclamation trade: pinning is what makes the held pointer safe
//! to dereference later. Drop handles you are done with, or call
//! [`McConsumer::catch_up`] / [`MpProducer::catch_up`] on rarely-used
//! ones to release their pin past segments other handles drained.
//!
//! # Handle limit
//!
//! Era slots are a fixed array: at most [`MAX_HANDLES`] producer+consumer
//! handles may be live on one unbounded queue (constructors and `clone`
//! panic past that). Bounded queues have no such limit.

use core::cell::UnsafeCell;
use core::ptr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ffq_sync::atomic::{spin_loop, AtomicPtr, AtomicU32, AtomicU64, Ordering};
use ffq_sync::{Backoff, DoubleWord, EraRegistry, WaitConfig, WaitRound, WaitStrategy};

use crate::cell::{CellSlot, PaddedCell, RANK_CLAIMED, RANK_FREE};
use crate::error::{Disconnected, Full, TryDequeueError};
use crate::layout::{normalize_capacity, LinearMap};
use crate::raw::{RawConsumer, RawProducer, RawQueue, RawSpscConsumer};
use crate::segment::Segment;
use crate::stats::{ConsumerStats, ProducerStats, SegmentStats};

/// Maximum live handles (producers + consumers) per unbounded queue — the
/// size of its era-slot registry.
pub const MAX_HANDLES: usize = 64;

/// Ranks at or past this value are poisoned: a multi-producer claim that
/// lands here learns the segment was sealed and abandons it. Far above any
/// reachable genuine rank (2^59 ranks at one per nanosecond is 18 years)
/// and far below the poison addend, so poisoned claims cannot wrap into
/// genuine range.
pub(crate) const POISON_CUTOFF: i64 = 1 << 59;

/// The addend the multi-producer seal applies to the rank dispenser.
const POISON: i64 = 1 << 60;

/// The shared control block of one unbounded queue: the segment-list ends,
/// the reclamation machinery, and the outer handle counts. One per queue,
/// behind an `Arc` in every handle.
struct Ctl<T: Send> {
    /// Newest *published* segment — where enqueues land — stored era-tagged
    /// as `(era as i64, ptr as i64)` so publication can be made monotone
    /// without dereferencing whatever pointer is currently stored (eras
    /// along the list strictly increase; see [`Ctl::publish_tail`]). A
    /// plain pointer CAS from the roller's own segment is not enough: a
    /// roller stalled between linking and publishing lets a later roll's
    /// publish fail silently, leaving the tail permanently stale.
    tail_seg: DoubleWord,
    /// Oldest possibly-undrained segment. Not a dequeue cursor (each
    /// consumer keeps its own position) — it elects the one retirer per
    /// segment: the consumer whose advance CASes `head_seg` past a segment
    /// owns putting it on the limbo list.
    head_seg: AtomicPtr<Segment<T>>,
    /// One-slot freelist of quiescent segments. One slot is enough to make
    /// the steady-state roll allocation-free: consumers keeping up retire
    /// segment *k* before the producer outgrows *k+1*.
    free: AtomicPtr<Segment<T>>,
    /// Spin lock over `retired` (cold path: one acquisition per segment
    /// lifetime, never on the enqueue/dequeue fast paths).
    retired_lock: AtomicU32,
    /// Limbo list: retired segments awaiting quiescence, `(ptr, era)`.
    retired: UnsafeCell<Vec<(*mut Segment<T>, u64)>>,
    /// Era dispenser for segment stamping; see [`ffq_sync::epoch`].
    next_seq: AtomicU64,
    /// Per-handle era slots gating reclamation.
    registry: EraRegistry,
    /// Live producer handles (the *outer* count; each segment's inner
    /// count is its seal flag).
    producers: AtomicU32,
    /// Live consumer handles.
    consumers: AtomicU32,
    /// log2 of every segment's cell count.
    cap_log2: u32,
}

// SAFETY: the raw segment pointers are shared-state handles whose access is
// mediated by the seal/epoch protocol; `retired` is guarded by
// `retired_lock`. `T: Send` is required because payloads move across
// threads through the segments.
unsafe impl<T: Send> Send for Ctl<T> {}
unsafe impl<T: Send> Sync for Ctl<T> {}

impl<T: Send> Ctl<T> {
    /// A queue of `1 << cap_log2`-cell segments with one initial producer
    /// and consumer handle (the constructor's pair).
    fn new(cap_log2: u32) -> Arc<Self> {
        let first = Box::into_raw(Segment::<T>::boxed(cap_log2, 0));
        Arc::new(Self {
            tail_seg: DoubleWord::new(0, first as i64),
            head_seg: AtomicPtr::new(first),
            free: AtomicPtr::new(ptr::null_mut()),
            retired_lock: AtomicU32::new(0),
            retired: UnsafeCell::new(Vec::new()),
            next_seq: AtomicU64::new(1),
            registry: EraRegistry::new(MAX_HANDLES),
            producers: AtomicU32::new(1),
            consumers: AtomicU32::new(1),
            cap_log2,
        })
    }

    /// The newest published segment.
    fn tail_ptr(&self) -> *mut Segment<T> {
        self.tail_seg.load_pair_untorn(Ordering::Acquire).1 as *mut Segment<T>
    }

    /// Advances `tail_seg` to `(era, new)` unless it already holds that
    /// era or a newer one. Monotone: the CAS retries from whatever older
    /// pair it finds, so a roller stalled mid-publish cannot hold the
    /// pointer back (a later roll's publish advances past it) and cannot
    /// regress it when it resumes (its stale expected pair no longer
    /// matches, and the era guard stops the retry). The era lives *in*
    /// the word — ordering two publishes never dereferences the stored
    /// pointer, which may belong to a segment this handle does not pin.
    fn publish_tail(&self, new: *mut Segment<T>, era: u64) {
        let era = era as i64;
        loop {
            let cur = self.tail_seg.load_pair_untorn(Ordering::Acquire);
            if cur.0 >= era {
                return;
            }
            if self
                .tail_seg
                .compare_exchange(cur, (era, new as i64))
                .is_ok()
            {
                return;
            }
        }
    }

    /// A fresh open segment for a roll: the freelist slot if it holds one
    /// (recycled under a new era), else a heap allocation.
    fn alloc_segment(&self, stats: &mut SegmentStats) -> *mut Segment<T> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        // Acquire pairs with the Release that parked the segment in the
        // slot: its quiescent state is fully visible before we recycle.
        let cached = self.free.swap(ptr::null_mut(), Ordering::Acquire);
        if !cached.is_null() {
            stats.freelist_hits += 1;
            // SAFETY: only provably unreachable segments enter the slot,
            // and the swap made us their unique owner.
            unsafe { (*cached).recycle(seq) };
            cached
        } else {
            stats.segments_allocated += 1;
            Box::into_raw(Segment::boxed(self.cap_log2, seq))
        }
    }

    /// Returns a never-linked segment (a losing roll's allocation) to the
    /// freelist, or drops it if the slot is taken.
    fn release_unused(&self, seg: *mut Segment<T>) {
        if self
            .free
            .compare_exchange(ptr::null_mut(), seg, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            // SAFETY: never linked — we are the unique owner.
            drop(unsafe { Box::from_raw(seg) });
        }
    }

    /// Puts a drained, unlinked-from-head segment on the limbo list, then
    /// frees every limbo entry whose era the registry proves quiescent
    /// (`era < min_active()`: no live handle can still touch it).
    fn retire(&self, seg: *mut Segment<T>, era: u64, stats: &mut SegmentStats) {
        stats.segments_retired += 1;
        while self
            .retired_lock
            .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            spin_loop();
        }
        // SAFETY: the lock above grants exclusive access.
        let retired = unsafe { &mut *self.retired.get() };
        retired.push((seg, era));
        let min = self.registry.min_active();
        let mut i = 0;
        while i < retired.len() {
            if retired[i].1 < min {
                let (p, _) = retired.swap_remove(i);
                self.free_segment(p);
                stats.segments_freed += 1;
            } else {
                i += 1;
            }
        }
        self.retired_lock.store(0, Ordering::Release);
    }

    /// Frees a quiescent segment: into the freelist slot if empty, else
    /// back to the allocator.
    fn free_segment(&self, seg: *mut Segment<T>) {
        // Release pairs with `alloc_segment`'s Acquire swap.
        if self
            .free
            .compare_exchange(ptr::null_mut(), seg, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            // SAFETY: quiescent — no handle can reach it.
            drop(unsafe { Box::from_raw(seg) });
        }
    }
}

impl<T: Send> Drop for Ctl<T> {
    fn drop(&mut self) {
        // The last handle is gone: exclusive access to everything.
        let retired = self.retired.get_mut();
        for (p, _) in retired.drain(..) {
            // SAFETY: limbo entries are unreachable from the list; sole owner.
            drop(unsafe { Box::from_raw(p) });
        }
        let mut cur = self.head_seg.load(Ordering::Relaxed);
        while !cur.is_null() {
            // SAFETY: walking the live chain as its sole owner.
            let next = unsafe { (*cur).next().load(Ordering::Relaxed) };
            drop(unsafe { Box::from_raw(cur) });
            cur = next;
        }
        let f = self.free.load(Ordering::Relaxed);
        if !f.is_null() {
            // SAFETY: the freelist slot's segment is unreachable; sole owner.
            drop(unsafe { Box::from_raw(f) });
        }
    }
}

fn new_ctl<T: Send>(segment_capacity: usize, flavor: &str) -> Arc<Ctl<T>> {
    let cap_log2 = normalize_capacity(segment_capacity)
        .unwrap_or_else(|e| panic!("ffq::unbounded::{flavor}::channel: {e}"));
    Ctl::new(cap_log2)
}

// ---- producers ----------------------------------------------------------

/// The single-producer side of an unbounded queue (spsc and spmc flavors).
///
/// Runs the ordinary bounded enqueue on the newest segment and rolls to a
/// fresh one instead of ever waiting: enqueues never block, never park
/// (`stats().parks` stays 0 structurally).
pub struct SpProducer<T: Send> {
    ctl: Arc<Ctl<T>>,
    /// Current (newest) segment; protected by this handle's era slot.
    seg: *mut Segment<T>,
    raw: RawProducer<T, PaddedCell<T>, LinearMap>,
    slot: usize,
    mc: bool,
    /// Inner-engine counters accumulated over sealed segments.
    acc: ProducerStats,
    seg_stats: SegmentStats,
}

// SAFETY: the raw segment pointer is protected by the era slot; every
// non-`Sync` part is owned.
unsafe impl<T: Send> Send for SpProducer<T> {}

impl<T: Send> SpProducer<T> {
    fn new(ctl: Arc<Ctl<T>>, mc: bool) -> Self {
        let seg = ctl.tail_ptr();
        // SAFETY: at construction the first segment is alive and stable.
        let slot = ctl.registry.acquire(unsafe { (*seg).seq() });
        let mut raw = unsafe { RawProducer::attach((*seg).raw()) };
        raw.set_multi_consumer(mc);
        Self {
            ctl,
            seg,
            raw,
            slot,
            mc,
            acc: ProducerStats::default(),
            seg_stats: SegmentStats::default(),
        }
    }

    /// Enqueues `value`. Never blocks: a full segment triggers a roll to a
    /// fresh one (amortized allocation-free via the freelist).
    pub fn enqueue(&mut self, value: T) {
        let mut value = value;
        loop {
            match self.raw.try_enqueue(value) {
                Ok(()) => return,
                Err(Full(v)) => {
                    value = v;
                    self.roll();
                }
            }
        }
    }

    /// Enqueues every item of `iter`; returns the count. Never blocks.
    pub fn enqueue_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        let mut n = 0;
        for v in iter {
            self.enqueue(v);
            n += 1;
        }
        n
    }

    /// Seals the current segment and moves to a fresh one.
    fn roll(&mut self) {
        let new = self.ctl.alloc_segment(&mut self.seg_stats);
        // SAFETY: `old` is protected by our era slot; `new` is exclusively
        // ours until the link below publishes it.
        let old_ref = unsafe { &*self.seg };
        let new_seq = unsafe { (*new).seq() };
        // Link before seal: anyone who observes the seal finds the
        // successor. Release publishes the new segment's initialized state.
        old_ref.next().store(new, Ordering::Release);
        self.ctl.publish_tail(new, new_seq);
        // Seal: boundary first, then the inner producer count (the
        // consumers' disconnect probe; SeqCst orders the boundary and the
        // link before it), then the wake that unparks drained consumers.
        let final_tail = old_ref.state().tail().load(Ordering::Relaxed);
        old_ref.set_sealed_tail(final_tail);
        old_ref.state().producers().fetch_sub(1, Ordering::SeqCst);
        old_ref.state().wake_all();
        self.seg_stats.segments_sealed += 1;
        // Move over. Raising the era slot is what releases the old
        // segment for reclamation — nothing after this touches it.
        self.acc = self.acc.merge(self.raw.stats());
        self.ctl.registry.set(self.slot, new_seq);
        self.seg = new;
        // SAFETY: fresh or recycled segment; we are its unique producer.
        let mut raw = unsafe { RawProducer::attach((*new).raw()) };
        raw.set_multi_consumer(self.mc);
        self.raw = raw;
    }

    /// Capacity of one segment (the queue itself is unbounded).
    pub fn segment_capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Approximate number of items in the *current* segment (older sealed
    /// segments may hold more).
    pub fn len_hint(&self) -> usize {
        self.raw.len_hint()
    }

    /// Number of live consumer handles.
    pub fn consumers(&self) -> usize {
        self.ctl.consumers.load(Ordering::Acquire) as usize
    }

    /// Snapshot of this producer's ring-protocol counters, accumulated
    /// across every segment it has written.
    pub fn stats(&self) -> ProducerStats {
        self.acc.merge(self.raw.stats())
    }

    /// Snapshot of this producer's segment-churn counters.
    pub fn seg_stats(&self) -> SegmentStats {
        self.seg_stats
    }
}

impl<T: Send> Drop for SpProducer<T> {
    fn drop(&mut self) {
        // Outer count first, then inner (both SeqCst): a consumer that
        // observes the inner count at 0 with no successor linked is then
        // guaranteed to read the outer count as 0 too — the disconnect is
        // unambiguous.
        self.ctl.producers.fetch_sub(1, Ordering::SeqCst);
        // SAFETY: protected by our era slot until released below.
        let seg = unsafe { &*self.seg };
        seg.state().producers().fetch_sub(1, Ordering::SeqCst);
        seg.state().wake_all();
        self.ctl.registry.release(self.slot);
    }
}

/// The multi-producer side of an unbounded queue (mpmc flavor). `Clone`
/// for more producers.
///
/// Claims ranks with `fetch_add` on the newest segment's dispenser and
/// resolves them with the bounded MPMC double-word-CAS protocol
/// ([`crate::mpmc`]); a full segment triggers an elected roll instead of
/// blocking.
pub struct MpProducer<T: Send> {
    ctl: Arc<Ctl<T>>,
    /// Cached newest segment; may lag `tail_seg` — poisoned claims catch
    /// the handle up. Protected by this handle's era slot.
    seg: *mut Segment<T>,
    slot: usize,
    stats: ProducerStats,
    seg_stats: SegmentStats,
}

// SAFETY: as `SpProducer` — era slot protects the pointer.
unsafe impl<T: Send> Send for MpProducer<T> {}

impl<T: Send> MpProducer<T> {
    fn new(ctl: Arc<Ctl<T>>) -> Self {
        let seg = ctl.tail_ptr();
        // SAFETY: at construction the first segment is alive and stable.
        let slot = ctl.registry.acquire(unsafe { (*seg).seq() });
        Self {
            ctl,
            seg,
            slot,
            stats: ProducerStats::default(),
            seg_stats: SegmentStats::default(),
        }
    }

    /// Enqueues `value`. Lock-free (never parks): a full segment triggers
    /// a roll, a sealed one is skipped via its poisoned dispenser.
    pub fn enqueue(&mut self, value: T) {
        let mut value = value;
        let mut fails = 0usize;
        loop {
            // SAFETY: protected by our era slot.
            let seg = unsafe { &*self.seg };
            let q = seg.raw();
            // Acquire: a poisoned value was produced by the sealer's
            // Release RMW, so observing it also shows us the `next` link
            // the sealer ordered before it.
            let rank = q.state().tail().fetch_add(1, Ordering::Acquire);
            self.stats.tail_rmws += 1;
            if rank >= POISON_CUTOFF {
                // Sealed under us: move to the successor and retry there.
                if !self.advance_seg() {
                    spin_loop(); // link store in flight; re-claim shortly
                }
                fails = 0;
                continue;
            }
            self.stats.ranks_taken += 1;
            match resolve_rank_mp(&q, rank, value, &mut self.stats) {
                Ok(()) => return,
                Err(v) => {
                    // Cell busy: the rank became a gap. A segment's worth
                    // of consecutive gaps means it is effectively full.
                    value = v;
                    fails += 1;
                    if fails >= seg.capacity() {
                        self.roll();
                        fails = 0;
                    }
                }
            }
        }
    }

    /// Enqueues every item of `iter`; returns the count. Never blocks.
    pub fn enqueue_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        let mut n = 0;
        for v in iter {
            self.enqueue(v);
            n += 1;
        }
        n
    }

    /// Elects this producer to seal the current segment and link a fresh
    /// one; losers donate their allocation to the freelist. Either way the
    /// handle moves to the successor.
    fn roll(&mut self) {
        // SAFETY: protected by our era slot.
        let old_ref = unsafe { &*self.seg };
        if old_ref.sealed_tail().is_none() {
            let new = self.ctl.alloc_segment(&mut self.seg_stats);
            // SAFETY: `new` is exclusively ours until the link below
            // publishes it.
            let new_seq = unsafe { (*new).seq() };
            match old_ref.next().compare_exchange(
                ptr::null_mut(),
                new,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.ctl.publish_tail(new, new_seq);
                    // Poison the dispenser (Release: a claim that reads a
                    // poisoned value acquires the link above); its return
                    // value is the seal boundary — every rank below it was
                    // claimed and will be resolved here, none past it ever
                    // will.
                    let pre = old_ref.state().tail().fetch_add(POISON, Ordering::Release);
                    debug_assert!(pre < POISON_CUTOFF, "segment sealed twice");
                    old_ref.set_sealed_tail(pre);
                    old_ref.state().producers().fetch_sub(1, Ordering::SeqCst);
                    old_ref.state().wake_all();
                    self.seg_stats.segments_sealed += 1;
                }
                Err(_) => self.ctl.release_unused(new),
            }
        }
        while !self.advance_seg() {
            spin_loop();
        }
    }

    /// Moves the handle one segment forward; `false` if the successor is
    /// not linked yet (only reachable in the instants between a sealer's
    /// poison landing and its link store becoming visible).
    fn advance_seg(&mut self) -> bool {
        // SAFETY: protected by our era slot.
        let next = unsafe { (*self.seg).next().load(Ordering::Acquire) };
        if next.is_null() {
            return false;
        }
        // SAFETY: `next` is protected transitively (our slot is at the
        // current segment's era, which is below the successor's).
        let next_seq = unsafe { (*next).seq() };
        self.ctl.registry.set(self.slot, next_seq);
        self.seg = next;
        true
    }

    /// Capacity of one segment (the queue itself is unbounded).
    pub fn segment_capacity(&self) -> usize {
        // SAFETY: protected by our era slot.
        unsafe { (*self.seg).capacity() }
    }

    /// Number of live consumer handles.
    pub fn consumers(&self) -> usize {
        self.ctl.consumers.load(Ordering::Acquire) as usize
    }

    /// Follows the segment list to the newest linked segment, releasing
    /// this handle's era pin on everything behind it.
    ///
    /// Reclamation is handle-driven (see the module docs): a producer
    /// handle that rarely enqueues keeps pinning the segment other
    /// producers rolled past. Call this on handles held mostly for
    /// `clone` to let the queue recycle behind them. O(segments skipped);
    /// never blocks.
    pub fn catch_up(&mut self) {
        while self.advance_seg() {}
    }

    /// Snapshot of this producer's ring-protocol counters.
    pub fn stats(&self) -> ProducerStats {
        self.stats
    }

    /// Snapshot of this producer's segment-churn counters.
    pub fn seg_stats(&self) -> SegmentStats {
        self.seg_stats
    }
}

impl<T: Send> Clone for MpProducer<T> {
    fn clone(&self) -> Self {
        // SAFETY: the source handle's era slot protects `seg` throughout
        // (we hold `&self`, so the source cannot advance concurrently).
        let seq = unsafe { (*self.seg).seq() };
        // Acquire the era slot *before* counting the handle: `acquire`
        // panics past MAX_HANDLES, and a count bumped first would survive
        // a caught unwind permanently inflated — the disconnect condition
        // (producers == 0) would then never fire for any peer.
        let slot = self.ctl.registry.acquire(seq);
        // Relaxed per the handle-count rule (increments order nothing).
        self.ctl.producers.fetch_add(1, Ordering::Relaxed);
        Self {
            ctl: Arc::clone(&self.ctl),
            seg: self.seg,
            slot,
            stats: ProducerStats::default(),
            seg_stats: SegmentStats::default(),
        }
    }
}

impl<T: Send> Drop for MpProducer<T> {
    fn drop(&mut self) {
        if self.ctl.producers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last producer: drop the newest segment's inner count so
            // blocked consumers observe disconnection (older segments were
            // sealed, their counts already 0).
            let ts = self.ctl.tail_ptr();
            // SAFETY: we are the last producer, so no roll is in flight —
            // every link winner completed its `publish_tail` before its
            // handle could be dropped, so `ts` is the true newest segment
            // and its era is >= our still-held slot's era; reclamation
            // (era < min_active <= ours) cannot have freed it.
            let ts_ref = unsafe { &*ts };
            ts_ref.state().producers().fetch_sub(1, Ordering::SeqCst);
            ts_ref.state().wake_all();
        }
        self.ctl.registry.release(self.slot);
    }
}

/// The bounded MPMC rank-resolution protocol ([`crate::mpmc`], Algorithm 2
/// lines 6–11), over a raw segment view: publish `value` at `rank`'s cell,
/// or turn the rank into a gap (`Err`) if the cell is unusable.
fn resolve_rank_mp<T: Send>(
    q: &RawQueue<T, PaddedCell<T>, LinearMap>,
    rank: i64,
    value: T,
    stats: &mut ProducerStats,
) -> Result<(), T> {
    let cell = q.cell(rank);
    let words = cell.words();
    let mut backoff = Backoff::new();
    loop {
        let g = words.load_hi(Ordering::Acquire);
        if g >= rank {
            // A later rank already skipped this cell: enqueueing here
            // would be "in the past". The rank is a gap; consumers step
            // over it.
            return Err(value);
        }
        let r = words.load_lo(Ordering::Acquire);
        if r >= 0 {
            // Occupied by an unconsumed item — announce our rank as a gap.
            if words.compare_exchange((r, g), (r, rank)).is_ok() {
                stats.gaps_created += 1;
                // Broadcast: the consumer parked on this rank may not be
                // the one a counted wake lands on.
                q.state().wake_consumers_all();
                return Err(value);
            }
            stats.cas_failures += 1;
            continue;
        }
        if r == RANK_CLAIMED {
            // Another producer is between claim and publish.
            backoff.wait();
            continue;
        }
        debug_assert_eq!(r, RANK_FREE);
        match words.compare_exchange((RANK_FREE, g), (RANK_CLAIMED, g)) {
            Ok(()) => {
                // SAFETY: the claim sentinel gives us exclusive ownership
                // of the cell's data until the rank store below.
                unsafe { (*cell.data()).write(value) };
                words.store_lo(rank, Ordering::Release);
                stats.enqueued += 1;
                // Broadcast — wrong-wakee hazard; see `crate::mpmc`.
                q.state().wake_consumers_all();
                return Ok(());
            }
            Err(_) => {
                stats.cas_failures += 1;
                continue;
            }
        }
    }
}

// ---- consumers ----------------------------------------------------------

/// What a consumer should do after its ring reported `Disconnected`.
enum Step {
    /// Moved to the successor segment — retry there.
    Moved,
    /// Progress is available right now (a resolved front rank or
    /// unclaimed ranks below the seal boundary) — retry immediately.
    Retry,
    /// Sealed segment whose front parked rank awaits a lagging producer:
    /// no progress until that producer publishes or gap-announces.
    /// Blocking callers park on the segment's not-empty cell (both
    /// resolutions broadcast there); non-blocking callers report `Empty`.
    Waiting,
    /// No successor and no producer left anywhere: the queue is dead.
    Dead,
}

/// The unique consumer of an unbounded spsc queue.
///
/// Wraps the private-head [`RawSpscConsumer`] engine per segment and
/// follows the seal/link protocol across seams.
pub struct SpscConsumer<T: Send> {
    ctl: Arc<Ctl<T>>,
    /// Current segment; protected by this handle's era slot.
    seg: *mut Segment<T>,
    raw: RawSpscConsumer<T, PaddedCell<T>, LinearMap>,
    slot: usize,
    wait: WaitConfig,
    acc: ConsumerStats,
    seg_stats: SegmentStats,
}

// SAFETY: era slot protects the pointer; everything else is owned.
unsafe impl<T: Send> Send for SpscConsumer<T> {}

impl<T: Send> SpscConsumer<T> {
    fn new(ctl: Arc<Ctl<T>>) -> Self {
        let seg = ctl.head_seg.load(Ordering::Acquire);
        // SAFETY: at construction the first segment is alive and stable.
        let slot = ctl.registry.acquire(unsafe { (*seg).seq() });
        let raw = unsafe { RawSpscConsumer::attach((*seg).raw()) };
        Self {
            ctl,
            seg,
            raw,
            slot,
            wait: WaitConfig::default(),
            acc: ConsumerStats::default(),
            seg_stats: SegmentStats::default(),
        }
    }

    /// Handles a ring-level `Disconnected`: cross the seam if the segment
    /// was sealed by a roll, report death if the producer is gone.
    fn step(&mut self) -> Step {
        // SAFETY: protected by our era slot.
        let cur_ref = unsafe { &*self.seg };
        let next = cur_ref.next().load(Ordering::Acquire);
        if next.is_null() {
            // Link-before-seal: no successor means the inner count hit 0
            // through the producer's drop, which decremented the outer
            // count first (both SeqCst) — so this load can only see 0.
            return if self.ctl.producers.load(Ordering::Acquire) == 0 {
                Step::Dead
            } else {
                Step::Retry
            };
        }
        self.advance(next);
        Step::Moved
    }

    /// Crosses to `next`: elect the retirer, raise the era slot, retire
    /// the drained segment if this handle won the election, re-attach the
    /// ring engine.
    fn advance(&mut self, next: *mut Segment<T>) {
        let cur = self.seg;
        // SAFETY: both protected — `cur` by our slot, `next` transitively.
        let cur_seq = unsafe { (*cur).seq() };
        let next_seq = unsafe { (*next).seq() };
        self.acc = self.acc.merge(self.raw.stats());
        // Elect the retirer *while our slot still pins `cur`*: the pin
        // keeps `cur` out of the freelist (min_active <= its era), so a
        // recycled-and-relinked segment can never alias `cur` here and
        // this pointer-equality CAS cannot succeed against a recycled
        // tail (the ABA that would retire — and free — a live segment).
        let won = self
            .ctl
            .head_seg
            .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        // Raising the slot releases `cur` for reclamation; nothing below
        // dereferences it.
        self.ctl.registry.set(self.slot, next_seq);
        if won {
            self.ctl.retire(cur, cur_seq, &mut self.seg_stats);
        }
        self.seg = next;
        // SAFETY: `next` is alive (protected by our raised slot).
        let mut raw = unsafe { RawSpscConsumer::attach((*next).raw()) };
        raw.set_wait_config(self.wait);
        self.raw = raw;
        self.seg_stats.segments_advanced += 1;
    }

    /// Attempts to dequeue one item without blocking.
    pub fn try_dequeue(&mut self) -> Result<T, TryDequeueError> {
        loop {
            match self.raw.try_dequeue() {
                Ok(v) => return Ok(v),
                Err(TryDequeueError::Empty) => return Err(TryDequeueError::Empty),
                Err(TryDequeueError::Disconnected) => match self.step() {
                    Step::Moved | Step::Retry => continue,
                    Step::Waiting => return Err(TryDequeueError::Empty),
                    Step::Dead => return Err(TryDequeueError::Disconnected),
                },
            }
        }
    }

    /// Dequeues one item, waiting — per the configured [`WaitConfig`] —
    /// while the queue is empty.
    pub fn dequeue(&mut self) -> Result<T, Disconnected> {
        let mut backoff = Backoff::new();
        loop {
            match self.raw.dequeue() {
                Ok(v) => return Ok(v),
                // The ring reports Disconnected on a seal as well as on a
                // real disconnect; `step` tells them apart.
                Err(Disconnected) => match self.step() {
                    Step::Moved => backoff.reset(),
                    // Defensive only (`step` cannot return these for the
                    // spsc seal/drop orderings): escalate spin → yield
                    // rather than burning a core on a bare spin hint.
                    Step::Retry | Step::Waiting => backoff.wait(),
                    Step::Dead => return Err(Disconnected),
                },
            }
        }
    }

    /// Dequeues one item, giving up after `timeout`.
    pub fn dequeue_timeout(&mut self, timeout: Duration) -> Result<T, TryDequeueError> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::new();
        loop {
            let now = Instant::now();
            if now >= deadline {
                return self.try_dequeue();
            }
            match self.raw.dequeue_timeout(deadline - now) {
                Ok(v) => return Ok(v),
                Err(TryDequeueError::Empty) => return Err(TryDequeueError::Empty),
                Err(TryDequeueError::Disconnected) => match self.step() {
                    Step::Moved => backoff.reset(),
                    Step::Retry | Step::Waiting => backoff.wait(),
                    Step::Dead => return Err(TryDequeueError::Disconnected),
                },
            }
        }
    }

    /// Harvests up to `max` ready items into `buf`, crossing segment seams
    /// as needed; returns the count. Never blocks.
    pub fn dequeue_batch(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            n += self.raw.dequeue_batch(buf, max - n);
            if n >= max {
                break;
            }
            // The ring came up short: empty, or a seam to cross.
            match self.raw.try_dequeue() {
                Ok(v) => {
                    buf.push(v);
                    n += 1;
                }
                Err(TryDequeueError::Empty) => break,
                Err(TryDequeueError::Disconnected) => match self.step() {
                    Step::Moved | Step::Retry => continue,
                    Step::Waiting | Step::Dead => break,
                },
            }
        }
        n
    }

    /// Replaces the wait policy used by blocking dequeues.
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.wait = cfg;
        self.raw.set_wait_config(cfg);
    }

    /// Capacity of one segment (the queue itself is unbounded).
    pub fn segment_capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Snapshot of this consumer's ring-protocol counters, accumulated
    /// across every segment it has drained.
    pub fn stats(&self) -> ConsumerStats {
        self.acc.merge(self.raw.stats())
    }

    /// Snapshot of this consumer's segment-churn counters.
    pub fn seg_stats(&self) -> SegmentStats {
        self.seg_stats
    }
}

impl<T: Send> Drop for SpscConsumer<T> {
    fn drop(&mut self) {
        self.ctl.consumers.fetch_sub(1, Ordering::SeqCst);
        self.ctl.registry.release(self.slot);
    }
}

/// A shared-head consumer of an unbounded spmc (`MP = false`) or mpmc
/// (`MP = true`) queue. `Clone` for more consumers.
pub struct McConsumer<T: Send, const MP: bool> {
    ctl: Arc<Ctl<T>>,
    /// Current segment; protected by this handle's era slot.
    seg: *mut Segment<T>,
    raw: RawConsumer<T, PaddedCell<T>, LinearMap, MP>,
    slot: usize,
    wait: WaitConfig,
    acc: ConsumerStats,
    seg_stats: SegmentStats,
}

// SAFETY: as `SpscConsumer`.
unsafe impl<T: Send, const MP: bool> Send for McConsumer<T, MP> {}

impl<T: Send, const MP: bool> McConsumer<T, MP> {
    fn new(ctl: Arc<Ctl<T>>) -> Self {
        let seg = ctl.head_seg.load(Ordering::Acquire);
        // SAFETY: at construction the first segment is alive and stable.
        let slot = ctl.registry.acquire(unsafe { (*seg).seq() });
        let raw = unsafe { RawConsumer::attach((*seg).raw()) };
        Self {
            ctl,
            seg,
            raw,
            slot,
            wait: WaitConfig::default(),
            acc: ConsumerStats::default(),
            seg_stats: SegmentStats::default(),
        }
    }

    /// Handles a ring-level `Disconnected`: prune unpublishable claims
    /// against the seal boundary, drain what remains, cross the seam once
    /// the segment is exhausted — or report death.
    fn step(&mut self) -> Step {
        // SAFETY: protected by our era slot.
        let cur_ref = unsafe { &*self.seg };
        let Some(bound) = cur_ref.sealed_tail() else {
            // No seal: the producers are genuinely gone. Forfeit parked
            // ranks (publishing them is impossible) and report death.
            self.raw.recover_pending();
            return Step::Dead;
        };
        // Claims at or past the boundary can never be published here.
        self.raw.prune_pending_from(bound);
        if !self.raw.pending_is_empty() {
            // The front parked rank is below the boundary, so the seal
            // guarantees it resolves (published or gap) — for mpmc,
            // possibly only after a lagging producer gets scheduled
            // again. Resolved already: retry consumes or skips it.
            // Unresolved: wait (a bare retry loop would burn 100% CPU
            // for as long as that producer stays descheduled).
            return if self.raw.wake_ready_items() {
                Step::Retry
            } else {
                Step::Waiting
            };
        }
        if cur_ref.state().head().load(Ordering::Acquire) < bound {
            // Unclaimed resolvable ranks remain — retry claims them.
            return Step::Retry;
        }
        // Every rank below the boundary is claimed and this handle holds
        // none: the segment is exhausted for us. Cross the seam (the
        // seal's link-before-seal invariant makes `next` non-null).
        let next = cur_ref.next().load(Ordering::Acquire);
        debug_assert!(!next.is_null(), "sealed segment without successor");
        if next.is_null() {
            return Step::Retry;
        }
        self.advance(next);
        Step::Moved
    }

    fn advance(&mut self, next: *mut Segment<T>) {
        let cur = self.seg;
        // SAFETY: both protected — `cur` by our slot, `next` transitively.
        let cur_seq = unsafe { (*cur).seq() };
        let next_seq = unsafe { (*next).seq() };
        self.acc = self.acc.merge(self.raw.stats());
        // Elect before raising the slot: the pin rules out the ABA where
        // `cur` is freed, recycled, relinked as the tail, and walked back
        // to this very pointer while we stall — which would let the CAS
        // succeed spuriously and `retire` free a live segment (see
        // `SpscConsumer::advance`).
        let won = self
            .ctl
            .head_seg
            .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        self.ctl.registry.set(self.slot, next_seq);
        if won {
            self.ctl.retire(cur, cur_seq, &mut self.seg_stats);
        }
        self.seg = next;
        // SAFETY: `next` is alive (protected by our raised slot).
        let mut raw = unsafe { RawConsumer::attach((*next).raw()) };
        raw.set_wait_config(self.wait);
        self.raw = raw;
        self.seg_stats.segments_advanced += 1;
    }

    /// Attempts to dequeue one item without blocking (pending-rank
    /// semantics within the current segment; see
    /// [`crate::spmc::Consumer::try_dequeue`]).
    pub fn try_dequeue(&mut self) -> Result<T, TryDequeueError> {
        loop {
            match self.raw.try_dequeue() {
                Ok(v) => return Ok(v),
                Err(TryDequeueError::Empty) => return Err(TryDequeueError::Empty),
                Err(TryDequeueError::Disconnected) => match self.step() {
                    Step::Moved | Step::Retry => continue,
                    // The front rank's enqueue is still in flight — the
                    // queue-level answer is "nothing ready yet", not a
                    // retry loop that spins until that producer runs.
                    Step::Waiting => return Err(TryDequeueError::Empty),
                    Step::Dead => return Err(TryDequeueError::Disconnected),
                },
            }
        }
    }

    /// Dequeues one item, waiting — per the configured [`WaitConfig`] —
    /// while the queue is empty.
    pub fn dequeue(&mut self) -> Result<T, Disconnected> {
        let mut strat = WaitStrategy::new(self.wait);
        let res = loop {
            match self.raw.dequeue() {
                Ok(v) => break Ok(v),
                Err(Disconnected) => match self.step() {
                    Step::Moved => strat.reset(),
                    Step::Retry => {}
                    Step::Waiting => {
                        // Park on the sealed segment's not-empty cell
                        // until the lagging producer resolves the front
                        // rank — publish and gap-announce both broadcast
                        // there.
                        let state = unsafe { &*self.seg }.state();
                        strat.wait_round(
                            state.not_empty(),
                            state.wait_is_shared(),
                            None,
                            &mut || self.raw.wake_ready_items(),
                        );
                    }
                    Step::Dead => break Err(Disconnected),
                },
            }
        };
        self.acc.parks += strat.parks();
        res
    }

    /// Dequeues one item, giving up after `timeout`.
    pub fn dequeue_timeout(&mut self, timeout: Duration) -> Result<T, TryDequeueError> {
        let deadline = Instant::now() + timeout;
        let mut strat = WaitStrategy::new(self.wait);
        let res = loop {
            let now = Instant::now();
            if now >= deadline {
                break self.try_dequeue();
            }
            match self.raw.dequeue_timeout(deadline - now) {
                Ok(v) => break Ok(v),
                Err(TryDequeueError::Empty) => break Err(TryDequeueError::Empty),
                Err(TryDequeueError::Disconnected) => match self.step() {
                    Step::Moved => strat.reset(),
                    Step::Retry => {}
                    Step::Waiting => {
                        // As in `dequeue`, but deadline-clamped.
                        let state = unsafe { &*self.seg }.state();
                        let round = strat.wait_round(
                            state.not_empty(),
                            state.wait_is_shared(),
                            Some(deadline),
                            &mut || self.raw.wake_ready_items(),
                        );
                        if round == WaitRound::Expired {
                            break self.try_dequeue();
                        }
                    }
                    Step::Dead => break Err(TryDequeueError::Disconnected),
                },
            }
        };
        self.acc.parks += strat.parks();
        res
    }

    /// Harvests up to `max` ready items into `buf`, crossing segment seams
    /// as needed; returns the count. Never blocks.
    pub fn dequeue_batch(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            n += self.raw.dequeue_batch(buf, max - n);
            if n >= max {
                break;
            }
            match self.raw.try_dequeue() {
                Ok(v) => {
                    buf.push(v);
                    n += 1;
                }
                Err(TryDequeueError::Empty) => break,
                Err(TryDequeueError::Disconnected) => match self.step() {
                    Step::Moved | Step::Retry => continue,
                    Step::Waiting | Step::Dead => break,
                },
            }
        }
        n
    }

    /// Replaces the wait policy used by blocking dequeues.
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.wait = cfg;
        self.raw.set_wait_config(cfg);
    }

    /// Capacity of one segment (the queue itself is unbounded).
    pub fn segment_capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Advances this handle past segments other consumers already
    /// drained — without dequeuing anything — releasing its era pin on
    /// them.
    ///
    /// Reclamation is handle-driven (see the module docs): a consumer
    /// handle that never dequeues keeps pinning the segment it last
    /// touched, and the limbo list grows behind it for as long as items
    /// keep flowing. Call this on handles held mostly for `clone` or as
    /// standbys. Stops at the first segment still open, not yet drained,
    /// or holding one of this handle's own parked claims. O(segments
    /// skipped); never blocks, never consumes.
    pub fn catch_up(&mut self) {
        loop {
            // SAFETY: protected by our era slot.
            let cur_ref = unsafe { &*self.seg };
            // `step()` minus the death verdict and minus `recover_pending`
            // (which consumes published items — only sound when the
            // producers are gone and the caller is detaching).
            let Some(bound) = cur_ref.sealed_tail() else {
                return;
            };
            self.raw.prune_pending_from(bound);
            if !self.raw.pending_is_empty() {
                return;
            }
            if cur_ref.state().head().load(Ordering::Acquire) < bound {
                return;
            }
            let next = cur_ref.next().load(Ordering::Acquire);
            if next.is_null() {
                return;
            }
            self.advance(next);
        }
    }

    /// Snapshot of this consumer's ring-protocol counters, accumulated
    /// across every segment it has drained.
    pub fn stats(&self) -> ConsumerStats {
        self.acc.merge(self.raw.stats())
    }

    /// Snapshot of this consumer's segment-churn counters.
    pub fn seg_stats(&self) -> SegmentStats {
        self.seg_stats
    }
}

impl<T: Send, const MP: bool> Clone for McConsumer<T, MP> {
    fn clone(&self) -> Self {
        // SAFETY: the source handle's era slot protects `seg` throughout
        // (`&self` excludes a concurrent advance by the source).
        let seq = unsafe { (*self.seg).seq() };
        // Slot before count — `acquire` can panic on MAX_HANDLES, and the
        // count must not stay inflated past a caught unwind (see
        // `MpProducer::clone`).
        let slot = self.ctl.registry.acquire(seq);
        self.ctl.consumers.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `seg` is alive per the source's slot; the new slot set
        // above keeps it so for the clone.
        let mut raw = unsafe { RawConsumer::attach((*self.seg).raw()) };
        raw.set_wait_config(self.wait);
        Self {
            ctl: Arc::clone(&self.ctl),
            seg: self.seg,
            raw,
            slot,
            wait: self.wait,
            acc: ConsumerStats::default(),
            seg_stats: SegmentStats::default(),
        }
    }
}

impl<T: Send, const MP: bool> Drop for McConsumer<T, MP> {
    fn drop(&mut self) {
        // Return published payloads among parked ranks to circulation
        // (same best-effort recovery as the bounded variants).
        self.raw.recover_pending();
        self.ctl.consumers.fetch_sub(1, Ordering::SeqCst);
        self.ctl.registry.release(self.slot);
    }
}

// ---- flavors ------------------------------------------------------------

/// Unbounded single-producer/single-consumer queues.
pub mod spsc {
    use super::*;

    /// The producing side; see [`SpProducer`].
    pub type Producer<T> = SpProducer<T>;
    /// The unique consuming side; see [`SpscConsumer`].
    pub type Consumer<T> = SpscConsumer<T>;

    /// Creates an unbounded SPSC queue built from segments of at least
    /// `segment_capacity` cells (rounded up to a power of two).
    ///
    /// # Panics
    /// If `segment_capacity` is 0 or exceeds
    /// [`crate::layout::MAX_CAPACITY`].
    pub fn channel<T: Send>(segment_capacity: usize) -> (Producer<T>, Consumer<T>) {
        let ctl = new_ctl::<T>(segment_capacity, "spsc");
        let tx = SpProducer::new(Arc::clone(&ctl), false);
        let rx = SpscConsumer::new(ctl);
        (tx, rx)
    }
}

/// Unbounded single-producer/multiple-consumer queues.
pub mod spmc {
    use super::*;

    /// The producing side; see [`SpProducer`].
    pub type Producer<T> = SpProducer<T>;
    /// A consuming side; see [`McConsumer`]. `Clone` for more consumers.
    pub type Consumer<T> = McConsumer<T, false>;

    /// Creates an unbounded SPMC queue built from segments of at least
    /// `segment_capacity` cells (rounded up to a power of two).
    ///
    /// # Panics
    /// If `segment_capacity` is 0 or exceeds
    /// [`crate::layout::MAX_CAPACITY`].
    pub fn channel<T: Send>(segment_capacity: usize) -> (Producer<T>, Consumer<T>) {
        let ctl = new_ctl::<T>(segment_capacity, "spmc");
        let tx = SpProducer::new(Arc::clone(&ctl), true);
        let rx = McConsumer::new(ctl);
        (tx, rx)
    }
}

/// Unbounded multiple-producer/multiple-consumer queues.
pub mod mpmc {
    use super::*;

    /// A producing side; see [`MpProducer`]. `Clone` for more producers.
    pub type Producer<T> = MpProducer<T>;
    /// A consuming side; see [`McConsumer`]. `Clone` for more consumers.
    pub type Consumer<T> = McConsumer<T, true>;

    /// Creates an unbounded MPMC queue built from segments of at least
    /// `segment_capacity` cells (rounded up to a power of two).
    ///
    /// # Panics
    /// If `segment_capacity` is 0 or exceeds
    /// [`crate::layout::MAX_CAPACITY`].
    pub fn channel<T: Send>(segment_capacity: usize) -> (Producer<T>, Consumer<T>) {
        let ctl = new_ctl::<T>(segment_capacity, "mpmc");
        let tx = MpProducer::new(Arc::clone(&ctl));
        let rx = McConsumer::new(ctl);
        (tx, rx)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn spsc_rolls_across_segments_in_order() {
        let (mut tx, mut rx) = spsc::channel::<u64>(4);
        for i in 0..40 {
            tx.enqueue(i);
        }
        // 40 items through 4-cell segments: many rolls, zero parks.
        assert!(tx.seg_stats().segments_sealed >= 9);
        assert_eq!(tx.stats().parks, 0);
        for i in 0..40 {
            assert_eq!(rx.try_dequeue(), Ok(i), "FIFO across seams");
        }
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Empty));
        assert!(rx.seg_stats().segments_advanced >= 9);
        assert!(rx.seg_stats().segments_retired >= 1);
    }

    #[test]
    fn spsc_steady_state_hits_the_freelist() {
        let (mut tx, mut rx) = spsc::channel::<u64>(4);
        // Burst past one segment, drain, repeat: the consumer keeps up
        // between rolls, so after the first roll every new segment comes
        // from the freelist.
        let mut next = 0u64;
        for _ in 0..50 {
            for _ in 0..6 {
                tx.enqueue(next);
                next += 1;
            }
            for want in next - 6..next {
                assert_eq!(rx.try_dequeue(), Ok(want));
            }
        }
        let s = tx.seg_stats();
        assert!(
            s.freelist_hits > 0,
            "steady state must recycle: {s:?} / rx {:?}",
            rx.seg_stats()
        );
        assert!(s.freelist_hits + s.segments_allocated >= s.segments_sealed);
    }

    #[test]
    fn spsc_disconnect_after_drain() {
        let (mut tx, mut rx) = spsc::channel::<u64>(4);
        for i in 0..10 {
            tx.enqueue(i);
        }
        drop(tx);
        for i in 0..10 {
            assert_eq!(rx.dequeue(), Ok(i));
        }
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
        assert_eq!(rx.dequeue(), Err(Disconnected));
    }

    #[test]
    fn spsc_blocking_stream_cross_thread() {
        const ITEMS: u64 = 100_000;
        let (mut tx, mut rx) = spsc::channel::<u64>(256);
        let t = std::thread::spawn(move || {
            for i in 0..ITEMS {
                tx.enqueue(i);
            }
            tx.stats().parks
        });
        for i in 0..ITEMS {
            assert_eq!(rx.dequeue(), Ok(i));
        }
        assert_eq!(t.join().unwrap(), 0, "unbounded enqueue never parks");
        assert_eq!(rx.dequeue(), Err(Disconnected));
    }

    #[test]
    fn spsc_dequeue_batch_crosses_seams() {
        let (mut tx, mut rx) = spsc::channel::<u64>(4);
        for i in 0..30 {
            tx.enqueue(i);
        }
        let mut buf = Vec::new();
        assert_eq!(rx.dequeue_batch(&mut buf, 64), 30);
        assert_eq!(buf, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn spsc_timeout_expires_and_recovers() {
        let (mut tx, mut rx) = spsc::channel::<u64>(4);
        assert_eq!(
            rx.dequeue_timeout(Duration::from_millis(5)),
            Err(TryDequeueError::Empty)
        );
        tx.enqueue(7);
        assert_eq!(rx.dequeue_timeout(Duration::from_millis(100)), Ok(7));
    }

    #[test]
    fn spmc_burst_then_workers_drain_exactly_once() {
        let (mut tx, rx) = spmc::channel::<u64>(64);
        const ITEMS: u64 = 20_000;
        for i in 0..ITEMS {
            tx.enqueue(i);
        }
        assert_eq!(tx.stats().parks, 0);
        drop(tx);
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let mut rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.dequeue() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        let mut all: Vec<u64> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>(), "exactly once");
    }

    #[test]
    fn spmc_per_consumer_order_is_fifo_across_seams() {
        // One consumer on a multi-consumer channel must still see global
        // FIFO (it claims every rank itself).
        let (mut tx, mut rx) = spmc::channel::<u64>(8);
        for i in 0..100 {
            tx.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(rx.dequeue(), Ok(i));
        }
    }

    #[test]
    fn mpmc_many_producers_many_consumers_exactly_once() {
        const PER: u64 = 5_000;
        const TXS: u64 = 3;
        let (tx, rx) = mpmc::channel::<u64>(64);
        let producers: Vec<_> = (0..TXS)
            .map(|p| {
                let mut tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..PER {
                        tx.enqueue(p * PER + i);
                    }
                    tx.stats().parks
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let mut rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.dequeue() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            assert_eq!(p.join().unwrap(), 0, "unbounded enqueue never parks");
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len() as u64, TXS * PER);
        assert_eq!(all, (0..TXS * PER).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_single_thread_roundtrip_with_rolls() {
        let (mut tx, mut rx) = mpmc::channel::<u64>(4);
        for i in 0..50 {
            tx.enqueue(i);
        }
        assert!(tx.seg_stats().segments_sealed >= 9);
        let mut got = Vec::new();
        while let Ok(v) = rx.try_dequeue() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn catch_up_releases_an_idle_consumer_pin() {
        let (mut tx, mut c1) = spmc::channel::<u64>(4);
        let mut c2 = c1.clone();
        let mut next = 0u64;
        // Burst two segments' worth at a time and drain on c1 only: the
        // idle clone c2 stays at era 0, pinning every retired segment.
        for _ in 0..3 {
            for _ in 0..8 {
                tx.enqueue(next);
                next += 1;
            }
            for want in next - 8..next {
                assert_eq!(c1.dequeue(), Ok(want));
            }
        }
        assert!(c1.seg_stats().segments_retired > 0);
        assert_eq!(
            c1.seg_stats().segments_freed,
            0,
            "an idle handle must pin retired segments: {:?}",
            c1.seg_stats()
        );
        // Releasing the pin lets subsequent retire scans free the limbo
        // backlog (and the freelist start serving rolls).
        c2.catch_up();
        assert!(c2.seg_stats().segments_advanced > 0);
        for _ in 0..2 {
            for _ in 0..8 {
                tx.enqueue(next);
                next += 1;
            }
            for want in next - 8..next {
                assert_eq!(c1.dequeue(), Ok(want));
            }
        }
        assert!(
            c1.seg_stats().segments_freed + c2.seg_stats().segments_freed > 0,
            "catch_up must unpin: c1 {:?} c2 {:?}",
            c1.seg_stats(),
            c2.seg_stats()
        );
    }

    #[test]
    fn mp_producer_catch_up_follows_rolls() {
        let (tx1, mut rx) = mpmc::channel::<u64>(4);
        let mut tx2 = tx1.clone();
        let mut tx1 = tx1;
        // tx1 rolls twice; the idle tx2 stays behind on era 0.
        for i in 0..10u64 {
            tx1.enqueue(i);
        }
        tx2.catch_up();
        // After catching up, tx2 enqueues into the *newest* segment —
        // its items land after tx1's in the single consumer's order.
        tx2.enqueue(100);
        let mut got = Vec::new();
        while let Ok(v) = rx.try_dequeue() {
            got.push(v);
        }
        assert_eq!(got, (0..10u64).chain([100]).collect::<Vec<_>>());
    }

    #[test]
    fn boxed_payloads_dropped_with_undrained_segments() {
        // Items left across several sealed segments must be dropped with
        // the queue (segment Drop + Ctl Drop walk).
        let (mut tx, rx) = spsc::channel::<Box<u64>>(4);
        for i in 0..20 {
            tx.enqueue(Box::new(i));
        }
        drop(tx);
        drop(rx); // leak check runs under the tier-1 sanitizer job
    }

    #[test]
    fn handle_limit_is_enforced() {
        let (tx, rx) = mpmc::channel::<u64>(4);
        let mut keep: Vec<mpmc::Producer<u64>> = Vec::new();
        // 2 live handles exist; fill the registry to the brim, then one
        // more must panic.
        for _ in 0..MAX_HANDLES - 2 {
            keep.push(tx.clone());
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _boom = tx.clone();
        }));
        assert!(r.is_err(), "handle 65 must be refused");
        drop(keep);
        drop(tx);
        drop(rx);
    }

    #[test]
    fn failed_clone_does_not_wedge_disconnect() {
        // A clone refused at the handle limit must leave the producer
        // count untouched: were it bumped before the panicking era-slot
        // acquire, the count would stay inflated past the caught unwind
        // and consumers would wait for a 65th producer that never existed.
        let (tx, mut rx) = mpmc::channel::<u64>(4);
        let mut keep: Vec<mpmc::Producer<u64>> = Vec::new();
        for _ in 0..MAX_HANDLES - 2 {
            keep.push(tx.clone());
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _boom = tx.clone();
        }));
        assert!(r.is_err(), "handle 65 must be refused");
        let mut tx = tx;
        tx.enqueue(1);
        drop(tx);
        drop(keep);
        assert_eq!(rx.dequeue_timeout(Duration::from_secs(2)), Ok(1));
        // Timed rather than unbounded so an inflated count fails the
        // assertion instead of hanging the test.
        assert_eq!(
            rx.dequeue_timeout(Duration::from_secs(2)),
            Err(TryDequeueError::Disconnected)
        );
    }
}
