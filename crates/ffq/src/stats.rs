//! Per-handle operation statistics.
//!
//! Counters live inside each producer/consumer handle — never in shared
//! state — so keeping them costs a register increment, not a contended cache
//! line (the evaluation of §V-B is precisely about such lines). Aggregate
//! across handles by summing snapshots.

/// Statistics kept by a producer handle.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProducerStats {
    /// Items successfully enqueued.
    pub enqueued: u64,
    /// Cells skipped because a slow consumer still held them
    /// (Algorithm 1 line 14 / Algorithm 2 line 8) — each created a gap.
    pub gaps_created: u64,
    /// `try_enqueue` calls that gave up after a full bounded scan.
    pub full_rejections: u64,
    /// Ranks consumed from the tail counter (equals `enqueued +
    /// gaps_created` for the single-producer variant).
    pub ranks_taken: u64,
    /// Failed double-word CAS attempts (multi-producer variant only).
    pub cas_failures: u64,
    /// Atomic RMWs performed on the shared tail (multi-producer variant
    /// only — the single-producer tail is private). Batched enqueues take
    /// whole rank runs per RMW, so `ranks_taken / tail_rmws` measures the
    /// amortization.
    pub tail_rmws: u64,
    /// Shadow-head refreshes: how often the fullness pre-check actually
    /// read the shared head (single-producer variants). The per-item
    /// `Acquire` loads this replaces show up as the gap between this and
    /// `ranks_taken`.
    pub head_refreshes: u64,
    /// Batched enqueue runs published (one release pass each).
    pub batch_enqueues: u64,
    /// Items published across those runs; `batch_items / batch_enqueues`
    /// is the mean run occupancy.
    pub batch_items: u64,
    /// Futex parks taken by blocking enqueues — zero for a producer that
    /// never saw a sustained full queue (or runs a spin-only wait config).
    pub parks: u64,
}

impl ProducerStats {
    /// Sums two snapshots field-wise.
    pub fn merge(self, other: Self) -> Self {
        Self {
            enqueued: self.enqueued + other.enqueued,
            gaps_created: self.gaps_created + other.gaps_created,
            full_rejections: self.full_rejections + other.full_rejections,
            ranks_taken: self.ranks_taken + other.ranks_taken,
            cas_failures: self.cas_failures + other.cas_failures,
            tail_rmws: self.tail_rmws + other.tail_rmws,
            head_refreshes: self.head_refreshes + other.head_refreshes,
            batch_enqueues: self.batch_enqueues + other.batch_enqueues,
            batch_items: self.batch_items + other.batch_items,
            parks: self.parks + other.parks,
        }
    }

    /// Mean ranks obtained per shared-tail RMW, or `None` if this handle
    /// never performed one (single-producer variants never do).
    pub fn ranks_per_rmw(&self) -> Option<f64> {
        (self.tail_rmws > 0).then(|| self.ranks_taken as f64 / self.tail_rmws as f64)
    }

    /// Mean items published per batched enqueue run, or `None` if no run
    /// was published.
    pub fn batch_occupancy(&self) -> Option<f64> {
        (self.batch_enqueues > 0).then(|| self.batch_items as f64 / self.batch_enqueues as f64)
    }
}

/// Statistics kept by a consumer handle.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ConsumerStats {
    /// Items successfully dequeued.
    pub dequeued: u64,
    /// Ranks abandoned because the producer had announced them as gaps
    /// (Algorithm 1 lines 29–31).
    pub gaps_skipped: u64,
    /// Dequeue attempts that found the assigned cell not yet written
    /// (the back-off case, Algorithm 1 line 32).
    pub not_ready: u64,
    /// Ranks claimed from the head counter.
    pub ranks_claimed: u64,
    /// Atomic RMWs performed on the shared head. Per-item dequeues pay one
    /// per rank; `claim_batch`/`dequeue_batch` take whole runs per RMW, so
    /// `ranks_claimed / head_rmws` measures the amortization. Zero for the
    /// SPSC consumer, whose head is private.
    pub head_rmws: u64,
    /// `dequeue_batch` calls completed.
    pub batch_dequeues: u64,
    /// Items harvested across those calls; `batch_items / batch_dequeues`
    /// is the mean batch occupancy.
    pub batch_items: u64,
    /// Futex parks taken by blocking dequeues — zero for a consumer that
    /// never waited past the spin/yield phases (or runs spin-only).
    pub parks: u64,
}

impl ConsumerStats {
    /// Sums two snapshots field-wise.
    pub fn merge(self, other: Self) -> Self {
        Self {
            dequeued: self.dequeued + other.dequeued,
            gaps_skipped: self.gaps_skipped + other.gaps_skipped,
            not_ready: self.not_ready + other.not_ready,
            ranks_claimed: self.ranks_claimed + other.ranks_claimed,
            head_rmws: self.head_rmws + other.head_rmws,
            batch_dequeues: self.batch_dequeues + other.batch_dequeues,
            batch_items: self.batch_items + other.batch_items,
            parks: self.parks + other.parks,
        }
    }

    /// Mean ranks claimed per shared-head RMW, or `None` if this handle
    /// never performed one (the SPSC consumer never does).
    pub fn ranks_per_rmw(&self) -> Option<f64> {
        (self.head_rmws > 0).then(|| self.ranks_claimed as f64 / self.head_rmws as f64)
    }

    /// Mean items harvested per `dequeue_batch` call, or `None` if none
    /// was made.
    pub fn batch_occupancy(&self) -> Option<f64> {
        (self.batch_dequeues > 0).then(|| self.batch_items as f64 / self.batch_dequeues as f64)
    }
}

/// Statistics kept by a sharded handle ([`crate::shard`]) about its shard
/// *selection*, on top of the per-shard [`ProducerStats`]/[`ConsumerStats`]
/// its inner handles keep. Same discipline: handle-local, never shared.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard drains (consumer) or block rotations (producer) performed.
    pub shard_visits: u64,
    /// Consumer drains satisfied by the work-stealing scan after both
    /// c-choices occupancy samples came up dry.
    pub steals: u64,
    /// Shard occupancy estimates read for c-choices selection (two per
    /// multi-shard drain).
    pub occupancy_samples: u64,
}

impl ShardStats {
    /// Sums two snapshots field-wise.
    pub fn merge(self, other: Self) -> Self {
        Self {
            shard_visits: self.shard_visits + other.shard_visits,
            steals: self.steals + other.steals,
            occupancy_samples: self.occupancy_samples + other.occupancy_samples,
        }
    }
}

/// Statistics kept by an unbounded-tier handle ([`crate::unbounded`]) about
/// its segment churn, on top of the per-segment [`ProducerStats`]/
/// [`ConsumerStats`] its inner engines keep. Same discipline: handle-local,
/// never shared. Producer handles move the first three counters; consumer
/// handles the last three.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Fresh segments heap-allocated by this handle's rolls.
    pub segments_allocated: u64,
    /// Rolls served from the one-slot freelist instead of the allocator —
    /// in steady state (consumers keeping up) every roll is a hit and the
    /// unbounded tier allocates nothing.
    pub freelist_hits: u64,
    /// Segments this handle sealed (closed to further enqueues).
    pub segments_sealed: u64,
    /// Segment boundaries this consumer crossed.
    pub segments_advanced: u64,
    /// Drained segments this handle retired into the epoch limbo list.
    pub segments_retired: u64,
    /// Retired segments this handle proved quiescent and freed (to the
    /// freelist or the allocator).
    pub segments_freed: u64,
}

impl SegmentStats {
    /// Sums two snapshots field-wise.
    pub fn merge(self, other: Self) -> Self {
        Self {
            segments_allocated: self.segments_allocated + other.segments_allocated,
            freelist_hits: self.freelist_hits + other.freelist_hits,
            segments_sealed: self.segments_sealed + other.segments_sealed,
            segments_advanced: self.segments_advanced + other.segments_advanced,
            segments_retired: self.segments_retired + other.segments_retired,
            segments_freed: self.segments_freed + other.segments_freed,
        }
    }
}

/// Statistics kept by a broadcast subscriber handle ([`crate::broadcast`]).
/// Same discipline as the other stats blocks: handle-local, never shared.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberStats {
    /// Items successfully received.
    pub received: u64,
    /// Items lost to producer overwrites across all lag events (the sum of
    /// every `Lagged(n)` payload this handle returned).
    pub lagged_items: u64,
    /// Lag events (each one `Lagged` error, covering one cursor resync).
    pub lag_events: u64,
    /// Copies discarded because the seqlock version changed across the
    /// payload read (a writer overwrote the cell mid-copy).
    pub torn_retries: u64,
    /// Receives that found nothing published past the cursor.
    pub not_ready: u64,
    /// Futex parks taken by blocking receives.
    pub parks: u64,
}

impl SubscriberStats {
    /// Sums two snapshots field-wise.
    pub fn merge(self, other: Self) -> Self {
        Self {
            received: self.received + other.received,
            lagged_items: self.lagged_items + other.lagged_items,
            lag_events: self.lag_events + other.lag_events,
            torn_retries: self.torn_retries + other.torn_retries,
            not_ready: self.not_ready + other.not_ready,
            parks: self.parks + other.parks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_stats_merge_sums_fields() {
        let a = ShardStats {
            shard_visits: 3,
            steals: 1,
            occupancy_samples: 6,
        };
        assert_eq!(
            a.merge(a),
            ShardStats {
                shard_visits: 6,
                steals: 2,
                occupancy_samples: 12,
            }
        );
    }

    #[test]
    fn segment_stats_merge_sums_fields() {
        let a = SegmentStats {
            segments_allocated: 1,
            freelist_hits: 2,
            segments_sealed: 3,
            segments_advanced: 4,
            segments_retired: 5,
            segments_freed: 6,
        };
        assert_eq!(
            a.merge(a),
            SegmentStats {
                segments_allocated: 2,
                freelist_hits: 4,
                segments_sealed: 6,
                segments_advanced: 8,
                segments_retired: 10,
                segments_freed: 12,
            }
        );
        assert_eq!(a.merge(SegmentStats::default()), a);
    }

    #[test]
    fn merge_sums_fields() {
        let a = ProducerStats {
            enqueued: 1,
            gaps_created: 2,
            full_rejections: 3,
            ranks_taken: 4,
            cas_failures: 5,
            tail_rmws: 6,
            head_refreshes: 7,
            batch_enqueues: 8,
            batch_items: 9,
            parks: 10,
        };
        let b = a;
        let m = a.merge(b);
        assert_eq!(
            m,
            ProducerStats {
                enqueued: 2,
                gaps_created: 4,
                full_rejections: 6,
                ranks_taken: 8,
                cas_failures: 10,
                tail_rmws: 12,
                head_refreshes: 14,
                batch_enqueues: 16,
                batch_items: 18,
                parks: 20,
            }
        );

        let c = ConsumerStats {
            dequeued: 7,
            gaps_skipped: 1,
            not_ready: 2,
            ranks_claimed: 9,
            head_rmws: 3,
            batch_dequeues: 4,
            batch_items: 5,
            parks: 6,
        };
        assert_eq!(c.merge(ConsumerStats::default()), c);
    }

    #[test]
    fn amortization_ratios() {
        let c = ConsumerStats {
            ranks_claimed: 64,
            head_rmws: 2,
            batch_dequeues: 4,
            batch_items: 60,
            ..Default::default()
        };
        assert_eq!(c.ranks_per_rmw(), Some(32.0));
        assert_eq!(c.batch_occupancy(), Some(15.0));
        assert_eq!(ConsumerStats::default().ranks_per_rmw(), None);
        assert_eq!(ProducerStats::default().ranks_per_rmw(), None);
        assert_eq!(ProducerStats::default().batch_occupancy(), None);
    }
}
