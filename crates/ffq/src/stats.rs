//! Per-handle operation statistics.
//!
//! Counters live inside each producer/consumer handle — never in shared
//! state — so keeping them costs a register increment, not a contended cache
//! line (the evaluation of §V-B is precisely about such lines). Aggregate
//! across handles by summing snapshots.

/// Statistics kept by a producer handle.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProducerStats {
    /// Items successfully enqueued.
    pub enqueued: u64,
    /// Cells skipped because a slow consumer still held them
    /// (Algorithm 1 line 14 / Algorithm 2 line 8) — each created a gap.
    pub gaps_created: u64,
    /// `try_enqueue` calls that gave up after a full bounded scan.
    pub full_rejections: u64,
    /// Ranks consumed from the tail counter (equals `enqueued +
    /// gaps_created` for the single-producer variant).
    pub ranks_taken: u64,
    /// Failed double-word CAS attempts (multi-producer variant only).
    pub cas_failures: u64,
}

impl ProducerStats {
    /// Sums two snapshots field-wise.
    pub fn merge(self, other: Self) -> Self {
        Self {
            enqueued: self.enqueued + other.enqueued,
            gaps_created: self.gaps_created + other.gaps_created,
            full_rejections: self.full_rejections + other.full_rejections,
            ranks_taken: self.ranks_taken + other.ranks_taken,
            cas_failures: self.cas_failures + other.cas_failures,
        }
    }
}

/// Statistics kept by a consumer handle.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ConsumerStats {
    /// Items successfully dequeued.
    pub dequeued: u64,
    /// Ranks abandoned because the producer had announced them as gaps
    /// (Algorithm 1 lines 29–31).
    pub gaps_skipped: u64,
    /// Dequeue attempts that found the assigned cell not yet written
    /// (the back-off case, Algorithm 1 line 32).
    pub not_ready: u64,
    /// Ranks claimed from the head counter.
    pub ranks_claimed: u64,
}

impl ConsumerStats {
    /// Sums two snapshots field-wise.
    pub fn merge(self, other: Self) -> Self {
        Self {
            dequeued: self.dequeued + other.dequeued,
            gaps_skipped: self.gaps_skipped + other.gaps_skipped,
            not_ready: self.not_ready + other.not_ready,
            ranks_claimed: self.ranks_claimed + other.ranks_claimed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let a = ProducerStats {
            enqueued: 1,
            gaps_created: 2,
            full_rejections: 3,
            ranks_taken: 4,
            cas_failures: 5,
        };
        let b = a;
        let m = a.merge(b);
        assert_eq!(
            m,
            ProducerStats {
                enqueued: 2,
                gaps_created: 4,
                full_rejections: 6,
                ranks_taken: 8,
                cas_failures: 10,
            }
        );

        let c = ConsumerStats {
            dequeued: 7,
            gaps_skipped: 1,
            not_ready: 2,
            ranks_claimed: 9,
        };
        assert_eq!(c.merge(ConsumerStats::default()), c);
    }
}
