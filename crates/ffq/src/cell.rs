//! Queue cells and their memory layouts (Fig. 1 and §IV-A of the paper).
//!
//! A cell holds three fields: `data` (the enqueued item), `rank` (the
//! insertion number currently stored, or a negative sentinel), and `gap`
//! (the highest rank announced as skipped at this slot). `rank` and `gap`
//! live adjacently in one 16-byte aligned [`DoubleWord`] so the
//! multi-producer variant can update them with a single 128-bit CAS —
//! exactly the paper's "placing the rank and gap fields consecutively in
//! the same cache line".
//!
//! Two layouts implement the paper's Figure 2 configurations:
//!
//! * [`CompactCell`] — "not aligned": cells packed back-to-back
//!   (32 bytes for a word-sized payload; the paper's C struct is 24, the
//!   extra 8 come from the 16-byte alignment the 128-bit CAS requires).
//! * [`PaddedCell`] — "aligned": each cell owns a full 64-byte cache line,
//!   so a producer and a consumer touching *neighbouring* cells never
//!   false-share.

use core::cell::UnsafeCell;
use core::mem::MaybeUninit;

use ffq_sync::DoubleWord;

/// Sentinel rank: the cell is free (empty, reusable by the producer).
pub const RANK_FREE: i64 = -1;
/// Sentinel rank: a producer has claimed the cell but not yet published its
/// rank (multi-producer variant only, Algorithm 2 line 9).
pub const RANK_CLAIMED: i64 = -2;
/// Initial `gap` value: no rank has ever been skipped at this slot.
pub const GAP_NONE: i64 = -1;

/// The payload carried through a cell is entirely inside its slot buffer.
pub const DESC_INLINE: u32 = 0;
/// First cell of an oversize payload spilled across a run of consecutive
/// ranks: `len` is the *total* payload length, `seg` the number of
/// continuation cells that follow.
pub const DESC_CHAIN_HEAD: u32 = 1;
/// Continuation cell of an oversize chain: `len` is this segment's length.
pub const DESC_CHAIN_CONT: u32 = 2;
/// Oversize payload spilled to a heap allocation (same-address-space queues
/// only): `heap` is the allocation's base pointer, `len` its length.
pub const DESC_HEAP: u32 = 3;
/// A multi-producer reservation that was abandoned after its cell was
/// claimed: carries no payload; consumers retire it and move on.
pub const DESC_ABORT: u32 = 4;

/// The fixed-size item the zero-copy bytes lane moves through the cell
/// protocol: a descriptor of where the variable-size payload lives.
///
/// The payload bytes themselves live in the queue's slot-buffer region (or,
/// for oversize spills on heap queues, in a heap allocation the descriptor
/// points to) — only this 24-byte descriptor is copied through the cell, so
/// the rank/gap protocol is reused untouched while payloads move exactly
/// once: producer's in-place write, consumer's borrowed read.
///
/// `repr(C)` with a defined, hole-free layout (`seg` fills what would be a
/// padding hole), so it crosses address spaces in `ffq-shm` regions (the
/// `heap` variant is never produced there; see `ffq::bytes::SpillMode`).
#[repr(C)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PayloadDesc {
    /// Payload length in bytes (total length on `DESC_CHAIN_HEAD`, segment
    /// length on `DESC_CHAIN_CONT`, 0 on `DESC_ABORT`).
    pub len: u64,
    /// One of the `DESC_*` discriminants.
    pub flags: u32,
    /// `DESC_CHAIN_HEAD`: number of continuation cells following this one.
    pub seg: u32,
    /// `DESC_HEAP`: base pointer of the heap allocation, as an integer.
    pub heap: u64,
}

impl PayloadDesc {
    /// An inline descriptor for a payload of `len` bytes in the slot.
    pub fn inline(len: usize) -> Self {
        Self {
            len: len as u64,
            flags: DESC_INLINE,
            seg: 0,
            heap: 0,
        }
    }

    /// An abandoned-reservation descriptor.
    pub fn abort() -> Self {
        Self {
            len: 0,
            flags: DESC_ABORT,
            seg: 0,
            heap: 0,
        }
    }
}

/// Storage layout strategy for one queue slot.
///
/// # Safety
/// Implementations must return, from [`words`](Self::words) and
/// [`data`](Self::data), references/pointers into `self` that remain valid
/// for `self`'s lifetime, and `data` must point to properly aligned storage
/// for `T`. The queue upholds the data-race discipline (a cell's data is
/// only accessed by the unique thread that owns the cell's current state
/// transition); implementations just provide the memory.
pub unsafe trait CellSlot<T>: Send + Sync {
    /// Creates a free cell (`rank = -1`, `gap = -1`, data uninitialized).
    fn empty() -> Self;

    /// The adjacent `(rank, gap)` pair.
    fn words(&self) -> &DoubleWord;

    /// Raw pointer to the payload storage.
    fn data(&self) -> *mut MaybeUninit<T>;

    /// Layout name used by benchmark reports.
    const NAME: &'static str;
}

/// Unpadded cell: `(rank, gap)` pair plus payload, packed at 16-byte
/// alignment. Several cells share a cache line (the paper's "not aligned"
/// configuration).
///
/// `repr(C)`: cell arrays can live in shared memory mapped by separately
/// compiled processes (`ffq-shm`), so the field order must not depend on
/// rustc's layout choices.
#[repr(C)]
pub struct CompactCell<T> {
    words: DoubleWord,
    data: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: the queue protocols guarantee exclusive access to `data` during
// writes (producer owns a free/claimed cell, the consumer holding the
// matching rank owns a published cell), so sharing references across threads
// is sound for Send payloads.
unsafe impl<T: Send> Send for CompactCell<T> {}
unsafe impl<T: Send> Sync for CompactCell<T> {}

// SAFETY: `words`/`data` return pointers into `self`; `UnsafeCell` storage is
// aligned for `T` by construction.
unsafe impl<T: Send> CellSlot<T> for CompactCell<T> {
    fn empty() -> Self {
        Self {
            words: DoubleWord::new(RANK_FREE, GAP_NONE),
            data: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    #[inline(always)]
    fn words(&self) -> &DoubleWord {
        &self.words
    }

    #[inline(always)]
    fn data(&self) -> *mut MaybeUninit<T> {
        self.data.get()
    }

    const NAME: &'static str = "compact";
}

/// Cache-line-aligned cell: one cell per 64-byte line (the paper's
/// "aligned" configuration, enforced there with compiler annotations).
#[repr(C, align(64))]
pub struct PaddedCell<T> {
    inner: CompactCell<T>,
}

// SAFETY: delegates to CompactCell.
unsafe impl<T: Send> CellSlot<T> for PaddedCell<T> {
    fn empty() -> Self {
        Self {
            inner: CompactCell::empty(),
        }
    }

    #[inline(always)]
    fn words(&self) -> &DoubleWord {
        &self.inner.words
    }

    #[inline(always)]
    fn data(&self) -> *mut MaybeUninit<T> {
        self.inner.data.get()
    }

    const NAME: &'static str = "padded";
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::Ordering;

    #[test]
    fn compact_cell_is_small() {
        // 16 (rank+gap) + 8 (u64 payload) rounded to 16-byte alignment.
        assert_eq!(core::mem::size_of::<CompactCell<u64>>(), 32);
        assert_eq!(core::mem::align_of::<CompactCell<u64>>(), 16);
    }

    #[test]
    fn padded_cell_owns_a_cache_line() {
        assert_eq!(core::mem::align_of::<PaddedCell<u64>>(), 64);
        assert_eq!(core::mem::size_of::<PaddedCell<u64>>(), 64);
        // Large payloads round up to whole lines.
        assert_eq!(core::mem::size_of::<PaddedCell<[u64; 9]>>() % 64, 0);
    }

    #[test]
    fn empty_cell_sentinels() {
        let c = CompactCell::<u64>::empty();
        assert_eq!(c.words().load_lo(Ordering::Relaxed), RANK_FREE);
        assert_eq!(c.words().load_hi(Ordering::Relaxed), GAP_NONE);
        let p = PaddedCell::<u64>::empty();
        assert_eq!(p.words().load_lo(Ordering::Relaxed), RANK_FREE);
        assert_eq!(p.words().load_hi(Ordering::Relaxed), GAP_NONE);
    }

    #[test]
    fn payload_desc_is_pod_sized() {
        // Crosses shm boundaries: layout must be the repr(C) prediction
        // with no padding holes (the `seg` field fills the would-be hole).
        assert_eq!(core::mem::size_of::<PayloadDesc>(), 24);
        assert_eq!(core::mem::align_of::<PayloadDesc>(), 8);
        let d = PayloadDesc::inline(7);
        assert_eq!((d.len, d.flags, d.seg, d.heap), (7, DESC_INLINE, 0, 0));
        assert_eq!(PayloadDesc::abort().flags, DESC_ABORT);
    }

    #[test]
    fn data_pointer_is_aligned_for_t() {
        #[repr(align(32))]
        struct Big(#[allow(dead_code)] [u8; 32]);
        let c = CompactCell::<Big>::empty();
        assert_eq!(c.data() as usize % core::mem::align_of::<Big>(), 0);
    }
}
