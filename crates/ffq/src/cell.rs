//! Queue cells and their memory layouts (Fig. 1 and §IV-A of the paper).
//!
//! A cell holds three fields: `data` (the enqueued item), `rank` (the
//! insertion number currently stored, or a negative sentinel), and `gap`
//! (the highest rank announced as skipped at this slot). `rank` and `gap`
//! live adjacently in one 16-byte aligned [`DoubleWord`] so the
//! multi-producer variant can update them with a single 128-bit CAS —
//! exactly the paper's "placing the rank and gap fields consecutively in
//! the same cache line".
//!
//! Two layouts implement the paper's Figure 2 configurations:
//!
//! * [`CompactCell`] — "not aligned": cells packed back-to-back
//!   (32 bytes for a word-sized payload; the paper's C struct is 24, the
//!   extra 8 come from the 16-byte alignment the 128-bit CAS requires).
//! * [`PaddedCell`] — "aligned": each cell owns a full 64-byte cache line,
//!   so a producer and a consumer touching *neighbouring* cells never
//!   false-share.

use core::cell::UnsafeCell;
use core::mem::MaybeUninit;

use ffq_sync::DoubleWord;

/// Sentinel rank: the cell is free (empty, reusable by the producer).
pub const RANK_FREE: i64 = -1;
/// Sentinel rank: a producer has claimed the cell but not yet published its
/// rank (multi-producer variant only, Algorithm 2 line 9).
pub const RANK_CLAIMED: i64 = -2;
/// Initial `gap` value: no rank has ever been skipped at this slot.
pub const GAP_NONE: i64 = -1;

/// Storage layout strategy for one queue slot.
///
/// # Safety
/// Implementations must return, from [`words`](Self::words) and
/// [`data`](Self::data), references/pointers into `self` that remain valid
/// for `self`'s lifetime, and `data` must point to properly aligned storage
/// for `T`. The queue upholds the data-race discipline (a cell's data is
/// only accessed by the unique thread that owns the cell's current state
/// transition); implementations just provide the memory.
pub unsafe trait CellSlot<T>: Send + Sync {
    /// Creates a free cell (`rank = -1`, `gap = -1`, data uninitialized).
    fn empty() -> Self;

    /// The adjacent `(rank, gap)` pair.
    fn words(&self) -> &DoubleWord;

    /// Raw pointer to the payload storage.
    fn data(&self) -> *mut MaybeUninit<T>;

    /// Layout name used by benchmark reports.
    const NAME: &'static str;
}

/// Unpadded cell: `(rank, gap)` pair plus payload, packed at 16-byte
/// alignment. Several cells share a cache line (the paper's "not aligned"
/// configuration).
///
/// `repr(C)`: cell arrays can live in shared memory mapped by separately
/// compiled processes (`ffq-shm`), so the field order must not depend on
/// rustc's layout choices.
#[repr(C)]
pub struct CompactCell<T> {
    words: DoubleWord,
    data: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: the queue protocols guarantee exclusive access to `data` during
// writes (producer owns a free/claimed cell, the consumer holding the
// matching rank owns a published cell), so sharing references across threads
// is sound for Send payloads.
unsafe impl<T: Send> Send for CompactCell<T> {}
unsafe impl<T: Send> Sync for CompactCell<T> {}

// SAFETY: `words`/`data` return pointers into `self`; `UnsafeCell` storage is
// aligned for `T` by construction.
unsafe impl<T: Send> CellSlot<T> for CompactCell<T> {
    fn empty() -> Self {
        Self {
            words: DoubleWord::new(RANK_FREE, GAP_NONE),
            data: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    #[inline(always)]
    fn words(&self) -> &DoubleWord {
        &self.words
    }

    #[inline(always)]
    fn data(&self) -> *mut MaybeUninit<T> {
        self.data.get()
    }

    const NAME: &'static str = "compact";
}

/// Cache-line-aligned cell: one cell per 64-byte line (the paper's
/// "aligned" configuration, enforced there with compiler annotations).
#[repr(C, align(64))]
pub struct PaddedCell<T> {
    inner: CompactCell<T>,
}

// SAFETY: delegates to CompactCell.
unsafe impl<T: Send> CellSlot<T> for PaddedCell<T> {
    fn empty() -> Self {
        Self {
            inner: CompactCell::empty(),
        }
    }

    #[inline(always)]
    fn words(&self) -> &DoubleWord {
        &self.inner.words
    }

    #[inline(always)]
    fn data(&self) -> *mut MaybeUninit<T> {
        self.inner.data.get()
    }

    const NAME: &'static str = "padded";
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::Ordering;

    #[test]
    fn compact_cell_is_small() {
        // 16 (rank+gap) + 8 (u64 payload) rounded to 16-byte alignment.
        assert_eq!(core::mem::size_of::<CompactCell<u64>>(), 32);
        assert_eq!(core::mem::align_of::<CompactCell<u64>>(), 16);
    }

    #[test]
    fn padded_cell_owns_a_cache_line() {
        assert_eq!(core::mem::align_of::<PaddedCell<u64>>(), 64);
        assert_eq!(core::mem::size_of::<PaddedCell<u64>>(), 64);
        // Large payloads round up to whole lines.
        assert_eq!(core::mem::size_of::<PaddedCell<[u64; 9]>>() % 64, 0);
    }

    #[test]
    fn empty_cell_sentinels() {
        let c = CompactCell::<u64>::empty();
        assert_eq!(c.words().load_lo(Ordering::Relaxed), RANK_FREE);
        assert_eq!(c.words().load_hi(Ordering::Relaxed), GAP_NONE);
        let p = PaddedCell::<u64>::empty();
        assert_eq!(p.words().load_lo(Ordering::Relaxed), RANK_FREE);
        assert_eq!(p.words().load_hi(Ordering::Relaxed), GAP_NONE);
    }

    #[test]
    fn data_pointer_is_aligned_for_t() {
        #[repr(align(32))]
        struct Big(#[allow(dead_code)] [u8; 32]);
        let c = CompactCell::<Big>::empty();
        assert_eq!(c.data() as usize % core::mem::align_of::<Big>(), 0);
    }
}
