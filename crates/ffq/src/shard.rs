//! Block-granular sharded MPMC frontend with a k-relaxed FIFO contract.
//!
//! A [`ShardedQueue`](self) spreads one logical queue over `N` independent
//! FFQ-m shards so that producers and consumers touching different shards
//! share no cache lines at all — the multi-shard analogue of the paper's
//! "one contended word is one coherence transaction" argument (§V-B). The
//! price is ordering: items on different shards may be delivered out of
//! enqueue order. This module makes that price *explicit and bounded*:
//!
//! - Producers fill shards in **blocks** of `B` consecutive items
//!   (`ShardedProducer` rotates shards on a block credit; `enqueue_many`
//!   reuses the staged-run publish of the batch API, so a block is one
//!   release pass). Per-shard FIFO is exact; cross-shard skew from the
//!   rotation is at most one block.
//! - Consumers pick shards by **c-choices load estimation** — sample two
//!   shards' occupancy, drain the fuller — with a work-stealing scan as
//!   fallback, and drain at most one block per shard visit.
//! - Every *fresh* rank claim is **capped** at `m + 2B`, where `m` is the
//!   smallest head rank over shards with visible items (the laggard).
//!   Heads are monotone, so a stale `m` only tightens the cap; the claim
//!   itself is a CAS, so the cap holds under any consumer race
//!   ([`crate::mpmc::Consumer::dequeue_batch_capped`]).
//!
//! Together these bound the reordering window: an item can be overtaken by
//! at most `k = 3 · (N − 1) · B` items enqueued after it
//! ([`relaxation_bound`]; derivation in ALGORITHM.md §13). The
//! [`Ordering`] contract names the two operating points: `Strict` degrades
//! to a single shard (`k = 0`, plain FFQ-m), `Relaxed(k)` picks the widest
//! shard count whose realized bound stays within `k`.
//!
//! The bound is stated for frontends with a single [`ShardedProducer`]
//! handle. Additional producer handles rotate independently, adding a
//! phase-skew term of up to `(P − 1) · B` per shard; per-producer FIFO is
//! still bounded, but by the larger window (§13 spells this out).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ffq_sync::atomic::{AtomicU64, Ordering as MemOrder};
use ffq_sync::{WaitCell, WaitConfig, WaitRound, WaitStrategy};

use crate::error::{Disconnected, Full, TryDequeueError};
use crate::mpmc;
use crate::stats::{ConsumerStats, ProducerStats, ShardStats};

/// Block size used by [`channel`]: items per shard visit. 64 × 8-byte
/// items is one block per 8 cache lines of payload — large enough to
/// amortize the rotation, small enough to keep the reordering window and
/// per-visit latency low.
pub const DEFAULT_BLOCK: usize = 64;

/// Upper limit on the shard count [`channel`] will derive from a
/// relaxation budget (explicit geometries may not exceed it either).
pub const MAX_SHARDS: usize = 64;

/// The FIFO contract of a sharded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// Exact FIFO: the queue degrades to a single shard and behaves as a
    /// plain FFQ-m MPMC queue (reordering bound 0, no sharding benefit).
    Strict,
    /// k-relaxed FIFO: an item may be overtaken by at most `k` items
    /// enqueued after it. [`channel`] picks the widest geometry whose
    /// realized bound ([`relaxation_bound`]) does not exceed the budget,
    /// so `Relaxed(0)` equals `Strict`.
    Relaxed(usize),
}

/// The realized reordering bound of an `(shards, block)` geometry:
/// `k = 3 · (shards − 1) · block`.
///
/// Per non-laggard shard, overtakers fit in the claim window
/// `[head, m + 2B)` of width at most `2B`, plus up to `B` of producer
/// rotation skew — `3B` per other shard. Single shard ⇒ `0`. Full
/// derivation: ALGORITHM.md §13.
pub const fn relaxation_bound(shards: usize, block: usize) -> usize {
    3 * (shards - 1) * block
}

/// Shared control block of one sharded queue: the aggregate eventcounts
/// (the per-shard `QueueState` cells stay in use for intra-shard waits,
/// but sharded handles park *here*, where one wake covers every shard)
/// and the immutable geometry.
struct ShardCtl {
    /// Parked sharded consumers; notified on every publish to any shard.
    not_empty: WaitCell,
    /// Parked sharded producers (all shards full); notified per harvest.
    not_full: WaitCell,
    /// Items per shard visit (the block size `B`).
    block: usize,
    /// Realized reordering bound `3 · (N − 1) · B`.
    bound: usize,
    /// The contract handed to [`channel`] (normalized: single shard ⇒
    /// `Strict`).
    ordering: Ordering,
}

/// Seed source for the consumers' xorshift generators: a counter stepped
/// by a large odd constant, so clones and fresh handles never share a
/// stream. No clock involved (loom-safe, deterministic under test).
static RNG_SEEDS: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);

fn next_seed() -> u64 {
    RNG_SEEDS.fetch_add(0x9E37_79B9_7F4A_7C15, MemOrder::Relaxed) | 1
}

/// Creates a sharded MPMC channel with the given total capacity and FIFO
/// contract, using [`DEFAULT_BLOCK`]-item blocks. `Relaxed(k)` yields
/// `k / (3 · B) + 1` shards (clamped to `[1, MAX_SHARDS]`) — the widest
/// geometry whose realized bound stays within the budget.
///
/// Both handles are [`Clone`]; capacity is split evenly across shards
/// (each shard gets at least one block, then rounds up to a power of
/// two, so the realized total can exceed the request).
pub fn channel<T: Send>(
    capacity: usize,
    ordering: Ordering,
) -> (ShardedProducer<T>, ShardedConsumer<T>) {
    let shards = match ordering {
        Ordering::Strict => 1,
        Ordering::Relaxed(k) => (k / (3 * DEFAULT_BLOCK) + 1).clamp(1, MAX_SHARDS),
    };
    channel_with_geometry(capacity, shards, DEFAULT_BLOCK)
}

/// [`channel`] with an explicit `(shards, block)` geometry. The realized
/// contract is `Relaxed(`[`relaxation_bound`]`(shards, block))`, or
/// `Strict` for a single shard.
pub fn channel_with_geometry<T: Send>(
    capacity: usize,
    shards: usize,
    block: usize,
) -> (ShardedProducer<T>, ShardedConsumer<T>) {
    assert!(
        (1..=MAX_SHARDS).contains(&shards),
        "shard count must be in 1..={MAX_SHARDS}"
    );
    assert!(block >= 1, "block size must be at least 1");
    let per_shard = (capacity / shards).max(block).max(2);
    let mut txs = Vec::with_capacity(shards);
    let mut rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = mpmc::channel::<T>(per_shard);
        txs.push(tx);
        rxs.push(rx);
    }
    let bound = relaxation_bound(shards, block);
    let ctl = Arc::new(ShardCtl {
        not_empty: WaitCell::new(),
        not_full: WaitCell::new(),
        block,
        bound,
        ordering: if shards == 1 {
            Ordering::Strict
        } else {
            Ordering::Relaxed(bound)
        },
    });
    let tx = ShardedProducer {
        shards: txs,
        ctl: Arc::clone(&ctl),
        cur: 0,
        credit: block,
        wait: WaitConfig::default(),
        shard_stats: ShardStats::default(),
    };
    let rx = ShardedConsumer {
        shards: rxs,
        ctl,
        stash: VecDeque::new(),
        rng: next_seed(),
        wait: WaitConfig::default(),
        shard_stats: ShardStats::default(),
    };
    (tx, rx)
}

/// `true` when a sharded consumer has anything to act on: visible items
/// or parked claims on any shard, or no producer left (disconnect must
/// wake parked consumers).
fn consumer_ready<T: Send>(shards: &[mpmc::Consumer<T>]) -> bool {
    // Precision is load-bearing: `wait_round` skips the park when the
    // predicate holds, so a coarse condition (say "any pending rank")
    // would busy-spin while that rank is still unpublished. Per-shard
    // `wake_ready_items` is `true` only when a retry can harvest — the
    // front pending cell resolved or unclaimed items are visible.
    //
    // The disconnect term aggregates with `all()`, NOT inside the
    // `any()`: a sharded producer's drop zeroes the per-shard handle
    // counts one at a time, so "any shard's producers gone" turns true
    // at the first decrement while `try_dequeue` keeps reporting `Empty`
    // until the last — a busy-poll window (unbounded if the dropping
    // thread is preempted) that the `loom_shard_claim_steal` model
    // caught as a livelock.
    shards.iter().any(|c| c.wake_ready_items()) || shards.iter().all(|c| c.producers() == 0)
}

/// A producing handle of a sharded queue. Clone it to add producers (see
/// the module docs for the multi-producer bound caveat).
pub struct ShardedProducer<T: Send> {
    shards: Vec<mpmc::Producer<T>>,
    ctl: Arc<ShardCtl>,
    /// Shard currently being filled.
    cur: usize,
    /// Items left in the current block before rotating to the next shard.
    credit: usize,
    wait: WaitConfig,
    shard_stats: ShardStats,
}

impl<T: Send> ShardedProducer<T> {
    /// Advances to the next shard with a fresh block credit.
    fn rotate(&mut self) {
        self.cur = (self.cur + 1) % self.shards.len();
        self.credit = self.ctl.block;
        self.shard_stats.shard_visits += 1;
    }

    /// Attempts to enqueue without blocking. Stays on the current shard
    /// until its block credit is spent, then rotates.
    ///
    /// A full *current* shard fails the call — the rotation never skips a
    /// shard. Skipping would let shard phases drift apart (a
    /// systematically full shard would receive ever fewer items at ever
    /// lower shard-local ranks), and the consumers' head cap compares
    /// shard-local ranks: the k-bound holds precisely *because* strict
    /// rotation keeps every shard's tail rank within one block of the
    /// others. Progress is safe regardless: a full shard has visible
    /// items, is the eventual laggard, and the cap forces consumers onto
    /// it.
    ///
    /// For the same reason the inner call is the *gapless* variant: the
    /// stock FFQ-m `try_enqueue` burns tail ranks as gaps while probing a
    /// full shard, which silently advances that shard's rank phase past
    /// the others' and voids the cross-shard comparison. Gapless enqueues
    /// keep ranks taken equal to items enqueued on every shard.
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        let gaps_before = self.shards[self.cur].stats().gaps_created;
        match self.shards[self.cur].try_enqueue_gapless(value) {
            Ok(()) => {
                self.ctl.not_empty.notify(1, false);
                self.credit -= 1;
                if self.credit == 0 {
                    self.rotate();
                }
                Ok(())
            }
            Err(full) => {
                // A clone race can burn the claimed rank as a gap. The
                // inner announce broadcasts on the per-shard eventcount,
                // but sharded consumers park *here* — re-announce on the
                // aggregate cell or a consumer parked on that rank is
                // never woken.
                if self.shards[self.cur].stats().gaps_created > gaps_before {
                    self.ctl.not_empty.notify_all(false);
                }
                Err(full)
            }
        }
    }

    /// Enqueues one item, waiting — spinning, then parking on the
    /// aggregate not-full eventcount — while the current shard is full.
    pub fn enqueue(&mut self, value: T) {
        let mut value = value;
        let mut strat = WaitStrategy::new(self.wait);
        loop {
            match self.try_enqueue(value) {
                Ok(()) => return,
                Err(Full(v)) => {
                    value = v;
                    let ctl = Arc::clone(&self.ctl);
                    let cur = &self.shards[self.cur];
                    strat.wait_round(&ctl.not_full, false, None, &mut || {
                        cur.len_hint() < cur.capacity()
                    });
                }
            }
        }
    }

    /// Enqueues every item of `iter`, splitting it into at-most-one-block
    /// runs per shard visit; each run goes through the inner
    /// [`enqueue_run_gapless`](mpmc::Producer::enqueue_run_gapless)
    /// staged publish (one tail RMW per run, no burned ranks — see
    /// [`try_enqueue`](Self::try_enqueue) for why gapless is load-bearing
    /// here). Blocks while the current shard is full, like `enqueue`.
    /// Returns the count (always the iterator's length).
    pub fn enqueue_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        let mut iter = iter.into_iter();
        let mut chunk: VecDeque<T> = VecDeque::new();
        let mut n = 0usize;
        let mut strat = WaitStrategy::new(self.wait);
        loop {
            if chunk.is_empty() {
                chunk.extend(iter.by_ref().take(self.credit));
                if chunk.is_empty() {
                    break;
                }
            }
            let gaps_before = self.shards[self.cur].stats().gaps_created;
            let got = self.shards[self.cur].enqueue_run_gapless(&mut chunk, self.credit);
            if self.shards[self.cur].stats().gaps_created > gaps_before {
                // Clone-race fallback burned ranks as gaps; see
                // `try_enqueue` for why the aggregate broadcast is needed.
                self.ctl.not_empty.notify_all(false);
            }
            if got > 0 {
                strat.reset();
                n += got;
                self.ctl.not_empty.notify(got, false);
                self.credit -= got;
                if self.credit == 0 {
                    self.rotate();
                }
            } else {
                // Current shard full: wait for a harvest to free cells.
                // Strict rotation never skips it (see `try_enqueue`).
                let ctl = Arc::clone(&self.ctl);
                let cur = &self.shards[self.cur];
                strat.wait_round(&ctl.not_full, false, None, &mut || {
                    cur.len_hint() < cur.capacity()
                });
            }
        }
        n
    }

    /// Replaces the wait policy used by blocking enqueues.
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.wait = cfg;
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|p| p.capacity()).sum()
    }

    /// Approximate total number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.shards.iter().map(|p| p.len_hint()).sum()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Items per shard visit (the block size `B`).
    pub fn block_size(&self) -> usize {
        self.ctl.block
    }

    /// The realized reordering bound `k` of this queue's geometry.
    pub fn relaxation_bound(&self) -> usize {
        self.ctl.bound
    }

    /// The realized FIFO contract.
    pub fn ordering(&self) -> Ordering {
        self.ctl.ordering
    }

    /// Number of live consumer handles (sharded handles count once per
    /// shard on each inner queue; this reports the sharded-handle count).
    pub fn consumers(&self) -> usize {
        self.shards.first().map_or(0, |p| p.consumers())
    }

    /// Per-shard producer counters of this handle, merged.
    pub fn stats(&self) -> ProducerStats {
        self.shards
            .iter()
            .fold(ProducerStats::default(), |acc, p| acc.merge(p.stats()))
    }

    /// This handle's shard-selection counters.
    pub fn shard_stats(&self) -> ShardStats {
        self.shard_stats
    }
}

impl<T: Send> Clone for ShardedProducer<T> {
    fn clone(&self) -> Self {
        Self {
            shards: self.shards.clone(),
            ctl: Arc::clone(&self.ctl),
            // Fresh handles start on shard 0 with a full block credit;
            // their rotation phase is independent by design.
            cur: 0,
            credit: self.ctl.block,
            wait: self.wait,
            shard_stats: ShardStats::default(),
        }
    }
}

impl<T: Send> Drop for ShardedProducer<T> {
    fn drop(&mut self) {
        // Release the per-shard handles first, then broadcast on the
        // aggregate cells: a parked sharded consumer re-checks
        // `producers()` and must be able to observe the decrements this
        // drop performed. (The inner drops broadcast on the per-shard
        // cells, but sharded handles never park there.)
        self.shards.clear();
        self.ctl.not_empty.notify_all(false);
        self.ctl.not_full.notify_all(false);
    }
}

/// A consuming handle of a sharded queue. Clone it to add consumers.
///
/// Items are drained one block per shard visit and served through a
/// handle-local stash, so per-item calls cost a deque pop between visits.
pub struct ShardedConsumer<T: Send> {
    shards: Vec<mpmc::Consumer<T>>,
    ctl: Arc<ShardCtl>,
    /// Items drained in block units but not yet handed out one-at-a-time.
    stash: VecDeque<T>,
    /// xorshift64* state for c-choices sampling and steal-scan offsets.
    rng: u64,
    wait: WaitConfig,
    shard_stats: ShardStats,
}

impl<T: Send> ShardedConsumer<T> {
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// `true` when no producer handle is left on any shard (Acquire per
    /// the handle-count rule: observing zero makes every completed
    /// enqueue visible).
    fn producers_gone(&self) -> bool {
        self.shards.iter().all(|c| c.producers() == 0)
    }

    /// One block-granular drain pass: harvest parked claims first, then
    /// pick a shard by c-choices (fall back to a stealing scan) and drain
    /// at most one block from it under the `m + 2B` claim cap. Returns
    /// items appended to `buf`; `0` means nothing was ready *this pass* —
    /// a cap race with other consumers can under-report, so blocking
    /// paths re-poll via [`consumer_ready`].
    fn drain_block(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        let n = self.shards.len();
        let block = self.ctl.block;
        let want = max.min(block).max(1);

        // Parked runs are this handle's oldest claims; harvest them
        // before claiming anything new. `head_cap == 0` makes fresh
        // claims impossible (ranks are non-negative), so this pass is
        // harvest-only.
        for i in 0..n {
            if self.shards[i].pending_ranks() > 0 {
                let got = self.shards[i].dequeue_batch_capped(buf, want, 0);
                if got > 0 {
                    self.shard_stats.shard_visits += 1;
                    self.ctl.not_full.notify(got, false);
                    return got;
                }
            }
        }

        // Laggard bound: `m` = min head over shards with visible items.
        // Heads are monotone, so by the time a claim uses the cap a stale
        // `m` can only have *tightened* it — the k-bound never loosens.
        let mut m = i64::MAX;
        let mut active = 0usize;
        for c in &self.shards {
            if c.len_hint() > 0 {
                m = m.min(c.head_rank());
                active += 1;
            }
        }
        if active == 0 {
            return 0;
        }
        let cap = if n == 1 {
            i64::MAX // Strict mode: plain FFQ-m, no cap.
        } else {
            m.saturating_add(2 * block as i64)
        };
        let eligible = |c: &mpmc::Consumer<T>| c.len_hint() > 0 && (n == 1 || c.head_rank() < cap);

        // c-choices: sample two shards' occupancy, drain the fuller of
        // the eligible ones. Two uniform samples track the most loaded
        // shard exponentially better than one (power of two choices).
        let r = self.next_rand();
        let (a, b) = ((r as usize) % n, ((r >> 32) as usize) % n);
        self.shard_stats.occupancy_samples += if n > 1 { 2 } else { 1 };
        let choice = match (eligible(&self.shards[a]), eligible(&self.shards[b])) {
            (true, true) => {
                if self.shards[a].len_hint() >= self.shards[b].len_hint() {
                    Some(a)
                } else {
                    Some(b)
                }
            }
            (true, false) => Some(a),
            (false, true) => Some(b),
            (false, false) => None,
        };
        if let Some(i) = choice {
            let got = self.shards[i].dequeue_batch_capped(buf, want, cap);
            if got > 0 {
                self.shard_stats.shard_visits += 1;
                self.ctl.not_full.notify(got, false);
                return got;
            }
        }

        // Work-stealing fallback: both samples dry. Scan every shard from
        // a random offset; the laggard (head == m) is always eligible, so
        // a scan with items visible normally succeeds — it can still
        // return 0 when racing consumers out-drained us.
        let start = (self.next_rand() as usize) % n;
        for off in 0..n {
            let i = (start + off) % n;
            if Some(i) == choice || !eligible(&self.shards[i]) {
                continue;
            }
            let got = self.shards[i].dequeue_batch_capped(buf, want, cap);
            if got > 0 {
                self.shard_stats.shard_visits += 1;
                self.shard_stats.steals += 1;
                self.ctl.not_full.notify(got, false);
                return got;
            }
        }
        0
    }

    /// Attempts to dequeue one item without blocking.
    ///
    /// Best-effort like the underlying queues: a cap race with other
    /// consumers can report `Empty` while items are visible (the racing
    /// consumer claimed them). `Disconnected` is reported only after
    /// observing every producer gone *and* a full re-scan that turned up
    /// nothing — the Acquire producer-count loads guarantee every
    /// completed enqueue was visible to that re-scan.
    pub fn try_dequeue(&mut self) -> Result<T, TryDequeueError> {
        if let Some(v) = self.stash.pop_front() {
            return Ok(v);
        }
        let mut scratch = Vec::new();
        let mut got = self.drain_block(&mut scratch, self.ctl.block);
        // The disconnect verdict reuses the observation that gated the
        // re-scan: sampling the producer counts again at verdict time
        // would be a time-of-check/time-of-use hole — the fresh Acquire
        // load could observe a disconnect whose enqueues the drain above
        // never saw, reporting `Disconnected` over undelivered items.
        let mut gone = false;
        if got == 0 && self.producers_gone() {
            // Disconnect re-scan: the Acquire producer-count loads made
            // every completed enqueue visible, and with producers gone all
            // claims resolve — so one more pass either finds the leftovers
            // or proves the queue drained.
            gone = true;
            got = self.drain_block(&mut scratch, self.ctl.block);
        }
        self.stash.extend(scratch);
        match self.stash.pop_front() {
            Some(v) => Ok(v),
            None if got == 0 && gone => Err(TryDequeueError::Disconnected),
            None => Err(TryDequeueError::Empty),
        }
    }

    /// Dequeues one item, waiting — spinning, then parking on the
    /// aggregate not-empty eventcount — while every shard is empty.
    pub fn dequeue(&mut self) -> Result<T, Disconnected> {
        let mut strat = WaitStrategy::new(self.wait);
        loop {
            match self.try_dequeue() {
                Ok(v) => return Ok(v),
                Err(TryDequeueError::Disconnected) => return Err(Disconnected),
                Err(TryDequeueError::Empty) => {
                    let ctl = Arc::clone(&self.ctl);
                    let shards = &self.shards;
                    strat.wait_round(&ctl.not_empty, false, None, &mut || consumer_ready(shards));
                }
            }
        }
    }

    /// Dequeues one item, giving up after `timeout` (same deadline
    /// discipline as [`mpmc::Consumer::dequeue_timeout`]).
    pub fn dequeue_timeout(&mut self, timeout: Duration) -> Result<T, TryDequeueError> {
        let mut deadline = None;
        let mut strat = WaitStrategy::new(self.wait);
        loop {
            match self.try_dequeue() {
                Ok(v) => return Ok(v),
                e @ Err(TryDequeueError::Disconnected) => return e,
                e @ Err(TryDequeueError::Empty) => {
                    let d = *deadline.get_or_insert_with(|| Instant::now() + timeout);
                    let ctl = Arc::clone(&self.ctl);
                    let shards = &self.shards;
                    let round = strat.wait_round(&ctl.not_empty, false, Some(d), &mut || {
                        consumer_ready(shards)
                    });
                    if round == WaitRound::Expired {
                        return e;
                    }
                }
            }
        }
    }

    /// Harvests up to `max` items into `buf`; returns the count. Never
    /// blocks. Serves the handle stash first, then drains block-by-block.
    pub fn dequeue_batch(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0usize;
        while n < max {
            match self.stash.pop_front() {
                Some(v) => {
                    buf.push(v);
                    n += 1;
                }
                None => break,
            }
        }
        while n < max {
            let got = self.drain_block(buf, max - n);
            if got == 0 {
                break;
            }
            n += got;
        }
        n
    }

    /// Replaces the wait policy used by blocking dequeues.
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.wait = cfg;
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|c| c.capacity()).sum()
    }

    /// Approximate total number of items currently enqueued, including
    /// this handle's stash.
    pub fn len_hint(&self) -> usize {
        self.stash.len() + self.shards.iter().map(|c| c.len_hint()).sum::<usize>()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Items per shard visit (the block size `B`).
    pub fn block_size(&self) -> usize {
        self.ctl.block
    }

    /// The realized reordering bound `k` of this queue's geometry.
    pub fn relaxation_bound(&self) -> usize {
        self.ctl.bound
    }

    /// The realized FIFO contract.
    pub fn ordering(&self) -> Ordering {
        self.ctl.ordering
    }

    /// Number of live producer handles.
    pub fn producers(&self) -> usize {
        self.shards.first().map_or(0, |c| c.producers())
    }

    /// Per-shard consumer counters of this handle, merged.
    pub fn stats(&self) -> ConsumerStats {
        self.shards
            .iter()
            .fold(ConsumerStats::default(), |acc, c| acc.merge(c.stats()))
    }

    /// This handle's shard-selection counters.
    pub fn shard_stats(&self) -> ShardStats {
        self.shard_stats
    }
}

impl<T: Send> Clone for ShardedConsumer<T> {
    fn clone(&self) -> Self {
        Self {
            shards: self.shards.clone(),
            ctl: Arc::clone(&self.ctl),
            stash: VecDeque::new(),
            rng: next_seed(),
            wait: self.wait,
            shard_stats: ShardStats::default(),
        }
    }
}

impl<T: Send> Drop for ShardedConsumer<T> {
    fn drop(&mut self) {
        // Inner drops recover published pending ranks; afterwards,
        // broadcast so parked producers re-check for freed space. The
        // stash is simply dropped — same forfeit semantics as the base
        // queues' pending recovery.
        self.shards.clear();
        self.ctl.not_full.notify_all(false);
        self.ctl.not_empty.notify_all(false);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn strict_mode_is_single_shard_exact_fifo() {
        let (mut tx, mut rx) = channel::<u64>(128, Ordering::Strict);
        assert_eq!(tx.shards(), 1);
        assert_eq!(tx.relaxation_bound(), 0);
        assert_eq!(rx.ordering(), Ordering::Strict);
        for i in 0..100 {
            tx.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Empty));
    }

    #[test]
    fn relaxed_budget_picks_widest_geometry_within_bound() {
        let (tx, _rx) = channel::<u64>(1024, Ordering::Relaxed(0));
        assert_eq!(tx.shards(), 1); // Relaxed(0) == Strict
        let (tx, _rx) = channel::<u64>(1024, Ordering::Relaxed(3 * DEFAULT_BLOCK));
        assert_eq!(tx.shards(), 2);
        assert!(tx.relaxation_bound() <= 3 * DEFAULT_BLOCK);
        let (tx, _rx) = channel::<u64>(8192, Ordering::Relaxed(usize::MAX));
        assert_eq!(tx.shards(), MAX_SHARDS);
    }

    #[test]
    fn geometry_bound_formula() {
        assert_eq!(relaxation_bound(1, 64), 0);
        assert_eq!(relaxation_bound(4, 8), 72);
        let (tx, _rx) = channel_with_geometry::<u64>(256, 4, 8);
        assert_eq!(tx.relaxation_bound(), 72);
        assert_eq!(tx.ordering(), Ordering::Relaxed(72));
    }

    #[test]
    fn single_consumer_drains_all_with_per_shard_fifo() {
        let shards = 4;
        let block = 8;
        let total = 4000u64;
        let (mut tx, mut rx) = channel_with_geometry::<u64>(2048, shards, block);
        let producer = std::thread::spawn(move || {
            assert_eq!(tx.enqueue_many(0..total), total as usize);
        });
        let mut got = Vec::new();
        while got.len() < total as usize {
            match rx.dequeue() {
                Ok(v) => got.push(v),
                Err(Disconnected) => break,
            }
        }
        producer.join().unwrap();
        assert_eq!(got.len(), total as usize);
        // Exactly once.
        let set: HashSet<u64> = got.iter().copied().collect();
        assert_eq!(set.len(), total as usize);
        // Per-shard FIFO: with an unfull queue the producer rotates
        // strictly, so an item's shard is (v / block) % shards; each
        // shard's subsequence must arrive in order.
        let mut last = vec![None::<u64>; shards];
        for &v in &got {
            let s = (v / block as u64) as usize % shards;
            if let Some(prev) = last[s] {
                assert!(prev < v, "shard {s} reordered: {prev} after {v}");
            }
            last[s] = Some(v);
        }
    }

    #[test]
    fn displacement_stays_within_documented_bound() {
        // Single producer, single consumer: every delivery displacement
        // must stay within k = 3(N-1)B plus one in-flight block per shard
        // of slack (the stash and the block the producer is mid-way
        // through are delivery-side buffers the interval-based overtake
        // measure does not count).
        let shards = 4;
        let block = 8;
        let k = relaxation_bound(shards, block);
        let total = 20_000u64;
        let (mut tx, mut rx) = channel_with_geometry::<u64>(512, shards, block);
        let producer = std::thread::spawn(move || {
            for v in 0..total {
                tx.enqueue(v);
            }
            tx.stats()
        });
        let mut pos = vec![0u64; total as usize];
        for p in 0..total {
            let v = rx.dequeue().expect("producer still alive");
            pos[v as usize] = p;
        }
        let prod = producer.join().unwrap();
        // The bound only holds while rank phases stay aligned, which the
        // gapless enqueue path guarantees for a single producer handle:
        // no burned ranks, ever.
        assert_eq!(prod.gaps_created, 0, "single-handle producer burned ranks");
        assert_eq!(prod.ranks_taken, prod.enqueued, "rank/item parity broken");
        let max_disp = pos
            .iter()
            .enumerate()
            .map(|(v, &p)| (p as i64 - v as i64).unsigned_abs())
            .max()
            .unwrap();
        let slack = shards * block;
        assert!(
            max_disp <= (k + slack) as u64,
            "displacement {max_disp} exceeds bound {k} + slack {slack}"
        );
    }

    #[test]
    fn consumer_sees_disconnect_after_drain() {
        let (mut tx, mut rx) = channel_with_geometry::<u32>(64, 2, 4);
        tx.enqueue_many(0..10u32);
        drop(tx);
        let mut seen = HashSet::new();
        for _ in 0..10 {
            seen.insert(rx.dequeue().unwrap());
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(rx.dequeue(), Err(Disconnected));
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
    }

    #[test]
    fn mpmc_clones_partition_items() {
        let producers = 2;
        let consumers = 3;
        let per_producer = 5000u64;
        let (tx, rx) = channel_with_geometry::<u64>(1024, 4, 16);
        let mut handles = Vec::new();
        for p in 0..producers {
            let mut tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                let base = p as u64 * per_producer;
                tx.enqueue_many(base..base + per_producer);
            }));
        }
        drop(tx);
        let mut drains = Vec::new();
        for _ in 0..consumers {
            let mut rx = rx.clone();
            drains.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut buf = Vec::new();
                loop {
                    buf.clear();
                    if rx.dequeue_batch(&mut buf, 64) > 0 {
                        got.append(&mut buf);
                        continue;
                    }
                    match rx.dequeue() {
                        Ok(v) => got.push(v),
                        Err(Disconnected) => break,
                    }
                }
                got
            }));
        }
        drop(rx);
        for h in handles {
            h.join().unwrap();
        }
        let mut all = Vec::new();
        for d in drains {
            all.extend(d.join().unwrap());
        }
        assert_eq!(all.len(), (producers as u64 * per_producer) as usize);
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "duplicate delivery");
    }

    #[test]
    fn shard_stats_count_visits_and_samples() {
        let (mut tx, mut rx) = channel_with_geometry::<u64>(512, 4, 8);
        tx.enqueue_many(0..256u64);
        let mut buf = Vec::new();
        while rx.dequeue_batch(&mut buf, 64) > 0 {}
        assert_eq!(buf.len(), 256);
        let s = rx.shard_stats();
        assert!(s.shard_visits >= (256 / 8) as u64);
        assert!(s.occupancy_samples >= 2);
        assert!(tx.shard_stats().shard_visits >= (256 / 8 - 1) as u64);
        // Inner counters aggregate across shards.
        assert_eq!(rx.stats().dequeued, 256);
        assert_eq!(tx.stats().enqueued, 256);
    }

    #[test]
    fn blocking_enqueue_unblocks_on_harvest() {
        let (mut tx, mut rx) = channel_with_geometry::<u64>(8, 2, 2);
        let cap = tx.capacity() as u64;
        let producer = std::thread::spawn(move || {
            for v in 0..cap + 16 {
                tx.enqueue(v);
            }
        });
        let mut got = 0u64;
        while got < cap + 16 {
            if rx.dequeue().is_ok() {
                got += 1;
            }
        }
        producer.join().unwrap();
    }
}
