//! Construction split from allocation: queues over caller-provided memory.
//!
//! Every FFQ variant in this crate is the same two pieces of data — a
//! [`QueueState`] counter block and a cell array — plus per-handle private
//! state. This module separates *where that data lives* from *how it is
//! operated on*: a [`RawQueue`] is a pointer-pair view over state and cells
//! placed anywhere the caller likes (a heap allocation, a static, a mapped
//! shared-memory region), and the raw handle types ([`RawProducer`],
//! [`RawConsumer`], [`RawSpscConsumer`]) run the full FFQ protocol over such
//! a view. The heap-backed `channel()` constructors in [`crate::spsc`],
//! [`crate::spmc`] and [`crate::mpmc`] are thin wrappers: they allocate the
//! two pieces, build a `RawQueue` over them, and tie its lifetime to an
//! `Arc`.
//!
//! Everything reachable from a `RawQueue` is offset-based and `#[repr(C)]`:
//! no field of [`QueueState`] or of a cell is a pointer, ranks and gap
//! announcements are array-relative, and the counter block's layout is
//! independent of rustc's layout randomization. That is what makes the view
//! meaningful across *address spaces*, not just across threads — two
//! processes mapping the same region at different base addresses each build
//! their own `RawQueue` from their own mapping and interoperate through the
//! rank/gap protocol alone (see `ffq-shm`).
//!
//! # Safety model
//!
//! Constructing a view or handle from raw memory is `unsafe`: the caller
//! asserts the memory is valid, correctly initialized, and outlives the
//! handle, and that the handle-cardinality rules of the variant are upheld
//! (one `RawProducer` per single-producer queue, one `RawSpscConsumer` per
//! SPSC queue). Once constructed, all methods are safe — the protocol takes
//! care of cross-thread (and cross-process) synchronization.

use core::marker::PhantomData;
use core::ptr::NonNull;
use std::time::{Duration, Instant};

use ffq_sync::atomic::{AtomicI64, AtomicU32, Ordering};

use ffq_sync::{CachePadded, WaitCell, WaitConfig, WaitRound, WaitStrategy};

use crate::cell::{CellSlot, PaddedCell, RANK_FREE};
use crate::error::{Disconnected, Full, TryDequeueError};
use crate::layout::{IndexMap, LinearMap};
use crate::shared::{
    claim_batch_core, dequeue_batch_capped_core, dequeue_batch_core, dequeue_blocking,
    dequeue_claim_core, dequeue_core, enqueue_many_sp, looks_full_sp, recover_pending, wake_ready,
    wake_ready_items, PendingRanks,
};
use crate::stats::{ConsumerStats, ProducerStats};

/// Marker for types whose bytes may cross an address-space boundary.
///
/// A shared-memory queue cell is read and written by processes that share
/// nothing but the mapped bytes, so the element type must be meaningful as
/// *pure data*: no pointers, no references, no destructor obligations, no
/// uninitialized padding semantics the receiving side could misread. This is
/// the usual "plain old data" contract (cf. `bytemuck::Pod`), kept local so
/// the core crate stays dependency-free.
///
/// Heap-backed queues do **not** require it — `ffq::spmc::channel::<Box<u64>>`
/// stays legal; only the `ffq-shm` constructors bound their element types by
/// this trait.
///
/// # Safety
///
/// Implementors must guarantee all of:
/// * `Self: Copy` (already in the bounds) with no drop glue anywhere inside;
/// * every bit pattern of `size_of::<Self>()` bytes is a valid `Self` (so a
///   value written by a crashed or hostile peer is at worst *wrong*, never
///   undefined behavior to read) — this rules out `bool`, `char`, enums and
///   padded structs;
/// * the layout is defined (`repr(C)` / `repr(transparent)` / primitive),
///   not left to rustc's field reordering.
pub unsafe trait ShmSafe: Copy + Send + Sync + 'static {}

macro_rules! shm_safe_prims {
    ($($t:ty),* $(,)?) => {
        $(
            // SAFETY: primitive integers/floats have defined layout, no
            // padding, no drop glue, and accept every bit pattern.
            unsafe impl ShmSafe for $t {}
        )*
    };
}

shm_safe_prims!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

// SAFETY: an array of ShmSafe elements has no padding beyond its elements'
// and inherits their guarantees element-wise.
unsafe impl<T: ShmSafe, const N: usize> ShmSafe for [T; N] {}

// SAFETY: repr(C) with all-integer fields and no padding (8+4+4+8 at align
// 8): defined layout, no drop glue, every bit pattern is a valid value. A
// hostile peer can write a *wrong* descriptor — the bytes-lane consumers
// clamp every length and refuse heap pointers on shared-memory queues — but
// never an undefined one.
unsafe impl ShmSafe for crate::cell::PayloadDesc {}

/// The shared counter block of one queue, `#[repr(C)]` so its layout is
/// identical in every binary that maps it.
///
/// This is everything two handles need to agree on besides the cell array:
/// the rank dispensers and the liveness counts. It contains **no pointers**
/// and no lengths-in-disguise — the capacity is stored as its log2 so a
/// corrupt value cannot index out of bounds undetected (`ffq-shm` validates
/// it against the region size before building a view).
///
/// # Handle-count ordering rule
///
/// The `producers`/`consumers` counts follow one discipline everywhere:
/// **increments are `Relaxed`, decrements are `Release`, loads are
/// `Acquire`.** A decrement is the only transition callers draw
/// happens-before conclusions from ("this handle's last operation completed
/// before the count I read"), so it releases; the matching loads acquire —
/// including purely informational accessors, which costs nothing on x86 and
/// keeps every site greppably uniform. Increments order nothing (a new
/// handle synchronizes through the queue protocol itself, never through the
/// count), so they stay relaxed.
#[repr(C)]
pub struct QueueState {
    /// Head counter: monotonically increasing rank dispenser for consumers.
    /// Cache-padded — the single most contended word in the queue.
    head: CachePadded<AtomicI64>,
    /// Tail counter. Single-producer variants keep the authoritative tail
    /// privately in the producer handle (the paper's "tail is not shared")
    /// and mirror it here; the multi-producer variant fetch-and-adds it.
    tail: CachePadded<AtomicI64>,
    /// Eventcount consumers park on while the queue is empty; producers
    /// notify it after publishing ranks or announcing gaps. Padded so
    /// parked-side traffic never bounces the counter lines.
    not_empty: CachePadded<WaitCell>,
    /// Eventcount producers park on while the queue is full; consumers
    /// notify it after advancing the head.
    not_full: CachePadded<WaitCell>,
    /// Live producer handles; 0 means disconnected. `u32` (not `usize`) so
    /// the field width does not depend on the target's pointer size.
    producers: AtomicU32,
    /// Live consumer handles (informational).
    consumers: AtomicU32,
    /// log2 of the cell count.
    cap_log2: u32,
    /// 1 when futex waits must be visible across processes (the state block
    /// lives in a shared mapping). Plain data, written at format time
    /// before the queue is ever shared.
    wait_shared: u32,
}

impl QueueState {
    /// A fresh counter block for an empty queue of `1 << cap_log2` cells.
    pub fn new(cap_log2: u32, producers: u32, consumers: u32) -> Self {
        Self {
            head: CachePadded::new(AtomicI64::new(0)),
            tail: CachePadded::new(AtomicI64::new(0)),
            not_empty: CachePadded::new(WaitCell::new()),
            not_full: CachePadded::new(WaitCell::new()),
            producers: AtomicU32::new(producers),
            consumers: AtomicU32::new(consumers),
            cap_log2,
            wait_shared: 0,
        }
    }

    /// Marks the wait cells as cross-process: parks and wakes go through
    /// process-shared futexes. Call at format time, before any handle
    /// attaches — the flag is plain data and must never change while the
    /// queue is live.
    #[must_use]
    pub fn with_shared_wait(mut self) -> Self {
        self.wait_shared = 1;
        self
    }

    /// The shared head counter (consumer rank dispenser / SPSC head mirror).
    #[inline(always)]
    pub fn head(&self) -> &AtomicI64 {
        &self.head
    }

    /// The shared tail counter (mirror for single-producer variants).
    #[inline(always)]
    pub fn tail(&self) -> &AtomicI64 {
        &self.tail
    }

    /// Live producer-handle count.
    #[inline(always)]
    pub fn producers(&self) -> &AtomicU32 {
        &self.producers
    }

    /// Live consumer-handle count.
    #[inline(always)]
    pub fn consumers(&self) -> &AtomicU32 {
        &self.consumers
    }

    /// log2 of the cell count.
    #[inline(always)]
    pub fn cap_log2(&self) -> u32 {
        self.cap_log2
    }

    /// The eventcount consumers park on while the queue is empty.
    #[inline(always)]
    pub fn not_empty(&self) -> &WaitCell {
        &self.not_empty
    }

    /// The eventcount producers park on while the queue is full.
    #[inline(always)]
    pub fn not_full(&self) -> &WaitCell {
        &self.not_full
    }

    /// Whether parks/wakes use process-shared futexes.
    #[inline(always)]
    pub fn wait_is_shared(&self) -> bool {
        self.wait_shared != 0
    }

    /// Wakes up to `n` consumers parked on the not-empty eventcount. One
    /// relaxed load and a predicted-untaken branch when nobody is parked.
    ///
    /// Counted consumer wakes are sound only when *any* parked consumer
    /// can use the event — which shared-head consumers, who own the ranks
    /// they claimed, violate. Queue code therefore never calls this;
    /// publish paths go through [`wake_consumers_published`] and gap
    /// announcements through [`wake_consumers_all`]. It remains available
    /// for raw-layer embedders whose consumers are structurally
    /// interchangeable.
    ///
    /// [`wake_consumers_published`]: Self::wake_consumers_published
    /// [`wake_consumers_all`]: Self::wake_consumers_all
    #[inline]
    pub fn wake_consumers(&self, n: usize) {
        self.not_empty.notify(n, self.wait_is_shared());
    }

    /// Wakes up to `n` producers parked on the not-full eventcount.
    #[inline]
    pub fn wake_producers(&self, n: usize) {
        self.not_full.notify(n, self.wait_is_shared());
    }

    /// Wakes *every* consumer parked on the not-empty eventcount.
    ///
    /// Gap announcements must use this, not [`wake_consumers`]`(1)`: a
    /// parked consumer re-checks only its own front pending rank, so a
    /// single-wake may land on a consumer whose rank the gap does not
    /// cover — it re-parks, and the consumer actually blocked on the
    /// announced rank keeps sleeping until its bounded-park timeout (the
    /// wrong-wakee window, ALGORITHM.md §12). Normal publications wake one
    /// consumer, because any consumer can claim a fresh rank; only gaps
    /// unblock a *specific* rank.
    ///
    /// [`wake_consumers`]: Self::wake_consumers
    #[inline]
    pub fn wake_consumers_all(&self) {
        self.not_empty.notify_all(self.wait_is_shared());
    }

    /// Publish-time consumer wake. Always broadcasts.
    ///
    /// A counted wake is only sound when any parked consumer can use the
    /// published rank, which requires there to be at most one parked
    /// consumer — shared-head consumers own the ranks they claimed, so
    /// with two of them parked a single wake can land on the one whose
    /// pending rank the publication does not resolve while the right
    /// wakee sleeps forever (the wrong-wakee window, ALGORITHM.md §12).
    ///
    /// An earlier revision gated the broadcast on `consumers > 1`, but
    /// the handle count cannot prove soleness: its increment is relaxed,
    /// and a second consumer can attach, claim a rank, and park entirely
    /// *after* the count was loaded — the counted wake then lands on the
    /// late parker and strands the claimant the publication was for.
    /// Broadcasting costs exactly the same syscall as a counted wake
    /// whenever at most one waiter is parked (the only sound case for
    /// counting), and `WaitCell::notify`'s no-waiter early-out is shared
    /// by both, so the unconditional broadcast gives up nothing.
    #[inline]
    pub fn wake_consumers_published(&self) {
        self.wake_consumers_all();
    }

    /// Wakes everyone parked on either eventcount (disconnects, poisoning).
    #[inline]
    pub fn wake_all(&self) {
        let shared = self.wait_is_shared();
        self.not_empty.notify_all(shared);
        self.not_full.notify_all(shared);
    }
}

/// A borrowed, address-space-local view of one queue: a pointer to its
/// [`QueueState`] and a pointer to its cell array.
///
/// `Copy` and cheap — every handle embeds one. The view itself does nothing;
/// it only gives the protocol code a uniform way to reach state and cells
/// wherever they live.
pub struct RawQueue<T, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    state: NonNull<QueueState>,
    cells: NonNull<C>,
    /// Cached copy of `state.cap_log2` — hot in `cell()`, and immutable for
    /// the queue's lifetime.
    cap_log2: u32,
    _marker: PhantomData<(fn() -> T, M)>,
}

impl<T, C: CellSlot<T>, M: IndexMap> Clone for RawQueue<T, C, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T, C: CellSlot<T>, M: IndexMap> Copy for RawQueue<T, C, M> {}

// SAFETY: the view only dereferences into `QueueState` atomics and cell
// slots, both of which are `Sync` (CellSlot requires it); payload access is
// mediated by the rank/gap protocol, which demands `T: Send` to move items
// across threads.
unsafe impl<T: Send, C: CellSlot<T>, M: IndexMap> Send for RawQueue<T, C, M> {}
unsafe impl<T: Send, C: CellSlot<T>, M: IndexMap> Sync for RawQueue<T, C, M> {}

impl<T, C: CellSlot<T>, M: IndexMap> RawQueue<T, C, M> {
    /// Builds a view over an existing state block and cell array.
    ///
    /// # Safety
    ///
    /// * `state` points to an initialized [`QueueState`] and `cells` to an
    ///   array of `1 << state.cap_log2()` initialized `C` cells;
    /// * both stay valid (not moved, not freed, not unmapped) for as long
    ///   as this view or any copy of it is used;
    /// * all other handles on the same queue agree on `T`, `C` and `M`.
    pub unsafe fn from_raw(state: *const QueueState, cells: *const C) -> Self {
        let cap_log2 = unsafe { (*state).cap_log2 };
        Self {
            state: unsafe { NonNull::new_unchecked(state as *mut QueueState) },
            cells: unsafe { NonNull::new_unchecked(cells as *mut C) },
            cap_log2,
            _marker: PhantomData,
        }
    }

    /// The shared counter block.
    #[inline(always)]
    pub fn state(&self) -> &QueueState {
        // SAFETY: valid for the view's lifetime per `from_raw`'s contract.
        unsafe { self.state.as_ref() }
    }

    /// Capacity of the cell array.
    #[inline(always)]
    pub fn capacity(&self) -> usize {
        1usize << self.cap_log2
    }

    /// The cell assigned to `rank` under this queue's index mapping.
    #[inline(always)]
    pub(crate) fn cell(&self, rank: i64) -> &C {
        debug_assert!(rank >= 0);
        // SAFETY(index): IndexMap::slot returns a value < 2^cap_log2 = len;
        // the array is valid per `from_raw`'s contract.
        unsafe { &*self.cells.as_ptr().add(M::slot(rank, self.cap_log2)) }
    }

    /// Approximate number of items currently in the queue.
    ///
    /// Both counters move concurrently and gaps inflate the difference, so
    /// this is a hint, not a linearizable size — the paper's queue has no
    /// size operation at all.
    pub fn len_hint(&self) -> usize {
        let tail = self.state().tail.load(Ordering::Acquire);
        let head = self.state().head.load(Ordering::Acquire);
        usize::try_from((tail - head).max(0)).unwrap_or(0)
    }

    /// Consumer-side emptiness pre-check: `true` when the mirrored tail has
    /// no rank past the head. Conservative in the safe direction — an item
    /// whose tail mirror has not landed yet may be missed for one call, but
    /// a `true` result never claims anything.
    #[inline]
    pub fn looks_empty(&self) -> bool {
        let head = self.state().head.load(Ordering::Relaxed);
        let tail = self.state().tail.load(Ordering::Acquire);
        tail <= head
    }
}

/// The single-producer enqueue engine (SPSC and SPMC variants share it).
///
/// Owns the paper's private tail, the shadow head cache, and the staging
/// scratch of the batched release pass. `crate::spsc::Producer` and
/// `crate::spmc::Producer` are thin wrappers adding only heap keep-alive and
/// drop-time disconnection.
pub struct RawProducer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    queue: RawQueue<T, C, M>,
    /// The paper's `tail`: private, monotonically increasing (line 7:
    /// "Tail counter ... not shared").
    tail: i64,
    /// Shadow of the consumers' head (MCRingBuffer-style): the fullness
    /// pre-check reads this cached bound and touches the shared counter
    /// only when the bound is exhausted.
    head_cache: i64,
    /// Ranks staged by the current `enqueue_many` run, awaiting the single
    /// release pass. Empty between calls.
    staged: Vec<i64>,
    /// `true` when more than one consumer handle may exist (SPMC): publish
    /// wakes must then broadcast, not count — see
    /// [`set_multi_consumer`](Self::set_multi_consumer).
    mc: bool,
    /// Waiting profile for full-queue blocking; see
    /// [`set_wait_config`](Self::set_wait_config).
    wait: WaitConfig,
    stats: ProducerStats,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> RawProducer<T, C, M> {
    /// Attaches the unique producer to `queue`, resuming from the mirrored
    /// tail (0 on a fresh queue; the last published rank boundary on a
    /// queue a previous producer detached from cleanly).
    ///
    /// # Safety
    ///
    /// `queue` upholds [`RawQueue::from_raw`]'s contract for this handle's
    /// lifetime, and no other producer handle exists on the same queue
    /// while this one does. The caller is responsible for the
    /// `producers` count in [`QueueState`] (this constructor does not touch
    /// it — heap channels pre-set it, shared-memory attach manages it
    /// through its own handshake).
    pub unsafe fn attach(queue: RawQueue<T, C, M>) -> Self {
        let tail = queue.state().tail().load(Ordering::Acquire);
        let head_cache = queue.state().head().load(Ordering::Acquire);
        Self {
            queue,
            tail,
            head_cache,
            staged: Vec::new(),
            mc: false,
            wait: WaitConfig::default(),
            stats: ProducerStats::default(),
        }
    }

    /// Declares whether this queue may have more than one consumer handle
    /// (SPMC mode). Default `false` (SPSC).
    ///
    /// In multi-consumer mode every publish wake **broadcasts** instead of
    /// waking one parked consumer. The counted wake is only sound when any
    /// parked consumer can use the published rank — true for SPSC (there is
    /// just one) but not for SPMC: consumers own the ranks they claimed, so
    /// a single wake can land on a consumer parked on a *different* pending
    /// rank, which re-parks while the published rank's owner sleeps until
    /// its park timeout (the wrong-wakee hazard the gap path always
    /// broadcast around; ALGORITHM.md §12). Broadcast costs the same fenced
    /// relaxed load when nobody is parked, and when consumers *are* parked
    /// a spurious wake is one re-check — a bounded price for closing an
    /// unbounded stall.
    pub fn set_multi_consumer(&mut self, mc: bool) {
        self.mc = mc;
    }

    /// The underlying view.
    #[inline(always)]
    pub fn queue(&self) -> &RawQueue<T, C, M> {
        &self.queue
    }

    /// Replaces the waiting profile used by the blocking enqueue paths
    /// (default: [`WaitConfig::adaptive`]). Per-handle — two handles on one
    /// queue may use different profiles.
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.wait = cfg;
    }

    /// Enqueues `value`, scanning past busy cells (announcing gaps) until a
    /// free cell is found.
    ///
    /// Wait-free under the paper's sizing assumption that some cell is
    /// always free. If the queue is genuinely full, this waits — spinning,
    /// then parking on the not-full eventcount per the configured
    /// [`WaitConfig`] — until a consumer advances the head (footnote 2 of
    /// the paper).
    pub fn enqueue(&mut self, value: T) {
        let mut value = value;
        let mut strat = WaitStrategy::new(self.wait);
        let q = self.queue;
        loop {
            if !self.looks_full() {
                match self.enqueue_scan(value, self.queue.capacity()) {
                    Ok(()) => break,
                    Err(Full(v)) => value = v,
                }
            }
            let (tail, cap) = (self.tail, q.capacity() as i64);
            let state = q.state();
            // Ready = the head moved past our fullness bound. Fresh Acquire
            // load on purpose — the shadow cache is what we are waiting to
            // be able to refresh.
            strat.wait_round(state.not_full(), state.wait_is_shared(), None, &mut || {
                state.head().load(Ordering::Acquire) > tail - cap
            });
        }
        self.stats.parks += strat.parks();
    }

    /// Enqueues `value`, giving up (and handing the value back) if the
    /// queue stays full past `timeout`. The wait escalates from spinning to
    /// parking exactly like [`enqueue`](Self::enqueue).
    pub fn enqueue_timeout(&mut self, value: T, timeout: Duration) -> Result<(), Full<T>> {
        // Deadline materializes on the first full round: a successful
        // enqueue must not pay a clock read (`ffq-shm` routes every
        // blocking enqueue through here in bounded slices).
        let mut deadline = None;
        let mut strat = WaitStrategy::new(self.wait);
        let q = self.queue;
        let mut value = value;
        let res = loop {
            if !self.looks_full() {
                match self.enqueue_scan(value, self.queue.capacity()) {
                    Ok(()) => break Ok(()),
                    Err(Full(v)) => value = v,
                }
            }
            let d = *deadline.get_or_insert_with(|| Instant::now() + timeout);
            let (tail, cap) = (self.tail, q.capacity() as i64);
            let state = q.state();
            let round = strat.wait_round(
                state.not_full(),
                state.wait_is_shared(),
                Some(d),
                &mut || state.head().load(Ordering::Acquire) > tail - cap,
            );
            if round == WaitRound::Expired {
                self.stats.full_rejections += 1;
                break Err(Full(value));
            }
        };
        self.stats.parks += strat.parks();
        res
    }

    /// Cheap fullness pre-check: `tail - head >= N` means at least a full
    /// array's worth of ranks is outstanding, so a scan cannot succeed.
    /// Checked against the shadow head first — the shared counter is read
    /// (one Acquire load) only when the cached bound is exhausted.
    /// Conservative in the safe direction — head inflated by gap skips or
    /// claims beyond the tail only makes the queue look *emptier*, in which
    /// case we fall through to the (bounded) scan.
    #[inline]
    pub fn looks_full(&mut self) -> bool {
        looks_full_sp(
            &self.queue,
            self.tail,
            &mut self.head_cache,
            &mut self.stats,
        )
    }

    /// Attempts to enqueue `value`.
    ///
    /// A counter pre-check rejects a clearly full queue in O(1) without
    /// side effects. If the pre-check passes but the (bounded, one-pass)
    /// scan still finds no free cell, the value is handed back — and that
    /// scan has already skipped (and announced gaps for) every busy cell it
    /// saw, consuming ranks; see [`Full`].
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        if self.looks_full() {
            self.stats.full_rejections += 1;
            return Err(Full(value));
        }
        let r = self.enqueue_scan(value, self.queue.capacity());
        if r.is_err() {
            self.stats.full_rejections += 1;
        }
        r
    }

    /// Enqueues every item of `iter` (blocking as needed); returns the
    /// count.
    ///
    /// The batched enqueue path: payloads are written into runs of free
    /// cells first and all the run's ranks are published afterwards with
    /// one release pass (a single fence followed by plain rank stores),
    /// with the tail mirrored once per run instead of once per item. Items
    /// become visible in order, no later than the call's return; a gap for
    /// a busy cell is still announced immediately.
    pub fn enqueue_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        enqueue_many_sp(
            &self.queue,
            &mut self.tail,
            &mut self.head_cache,
            &mut self.staged,
            &mut self.stats,
            self.wait,
            self.mc,
            iter,
        )
    }

    /// The body of `FFQ_ENQ` (Algorithm 1 lines 9–19), bounded to `limit`
    /// cells inspected.
    fn enqueue_scan(&mut self, value: T, limit: usize) -> Result<(), Full<T>> {
        for _ in 0..limit {
            let rank = self.tail;
            debug_assert!(rank >= 0, "tail overflowed i64");
            let cell = self.queue.cell(rank);
            let words = cell.words();

            // Line 13: cell still holds an unconsumed item? The Acquire
            // pairs with the consumer's Release reset, so when we observe
            // rank == -1 the consumer's read of the previous payload
            // happened-before our overwrite below.
            if words.load_lo(Ordering::Acquire) >= 0 {
                // Line 14: skip it and announce the gap. `gap` only grows:
                // we are the only writer and tail is monotonic. Release so a
                // consumer acting on the announcement also sees every prior
                // producer write (not required for correctness of the skip
                // itself, but keeps the cell words causally consistent).
                // Unpaired: single-producer queues never pair-CAS the words.
                words.store_hi_unpaired(rank, Ordering::Release);
                self.stats.gaps_created += 1;
                self.advance_tail();
                // A consumer holding this rank may be parked waiting for it;
                // the announcement is what lets it move on. Broadcast — a
                // single wake could land on a consumer parked on a
                // different rank (see `QueueState::wake_consumers_all`).
                self.queue.state().wake_consumers_all();
                continue;
            }

            // Lines 16–17: publish. The data write must precede the rank
            // store; Release makes the rank store the linearization point.
            // SAFETY: a free cell stays free until this unique producer
            // publishes its rank.
            unsafe { (*cell.data()).write(value) };
            words.store_lo_unpaired(rank, Ordering::Release);
            self.stats.enqueued += 1;
            self.advance_tail();
            if self.mc {
                // Multi-consumer: the published rank may already belong to
                // one specific parked consumer's pending FIFO, and a
                // counted wake can land on a different one (see
                // `set_multi_consumer`).
                self.queue.state().wake_consumers_all();
            } else {
                // Not declared multi-consumer — but raw-layer callers can
                // attach several shared-head consumers without ever calling
                // `set_multi_consumer`, and no count check can prove they
                // did not (see `QueueState::wake_consumers_published`).
                self.queue.state().wake_consumers_published();
            }
            return Ok(());
        }
        Err(Full(value))
    }

    #[inline(always)]
    fn advance_tail(&mut self) {
        self.tail += 1;
        self.stats.ranks_taken += 1;
        // Mirror for len_hint() and the consumers' claim sizing; ordered
        // after the rank store above so a rank below the mirrored tail is
        // always already resolved.
        self.queue
            .state()
            .tail()
            .store(self.tail, Ordering::Release);
    }

    /// The next rank this producer will publish (its private tail).
    #[inline(always)]
    pub fn tail_rank(&self) -> i64 {
        self.tail
    }

    /// This handle's waiting profile (see [`set_wait_config`]).
    ///
    /// [`set_wait_config`]: Self::set_wait_config
    pub fn wait_config(&self) -> WaitConfig {
        self.wait
    }

    /// Reserves the cell at the current tail for an in-place payload write,
    /// without publishing anything.
    ///
    /// Skips (and gap-announces) busy cells exactly like
    /// [`try_enqueue`](Self::try_enqueue) until the tail lands on a free
    /// cell, then returns that rank **with the tail not yet advanced**: the
    /// zero-copy bytes lane writes the payload into the rank's slot buffer
    /// and only then calls [`publish_reserved`](Self::publish_reserved).
    /// Until that publication the reservation is invisible to consumers
    /// (the tail mirror never covered the rank), so abandoning it is a
    /// no-op — the next reservation returns the same rank.
    ///
    /// The returned rank stays valid because this is the unique producer: a
    /// free cell only leaves the free state through this handle.
    pub fn reserve_next(&mut self) -> Result<i64, Full<()>> {
        if self.looks_full() {
            self.stats.full_rejections += 1;
            return Err(Full(()));
        }
        for _ in 0..self.queue.capacity() {
            let rank = self.tail;
            debug_assert!(rank >= 0, "tail overflowed i64");
            let words = self.queue.cell(rank).words();
            if words.load_lo(Ordering::Acquire) >= 0 {
                // Busy cell: same skip-and-announce as enqueue_scan.
                words.store_hi_unpaired(rank, Ordering::Release);
                self.stats.gaps_created += 1;
                self.advance_tail();
                self.queue.state().wake_consumers_all();
                continue;
            }
            return Ok(rank);
        }
        self.stats.full_rejections += 1;
        Err(Full(()))
    }

    /// Reserves a run of `n` **consecutive** ranks whose cells are all
    /// free, for an oversize payload spilled across continuation cells.
    ///
    /// Returns the first rank of the run; like
    /// [`reserve_next`](Self::reserve_next) the tail does not advance, so
    /// an abandoned run reservation is a no-op. Publication must then walk
    /// the run in ascending rank order through
    /// [`publish_reserved`](Self::publish_reserved).
    ///
    /// A busy cell inside a candidate run forces a restart past it; the
    /// free cells scanned before it are burned as gap announcements (their
    /// ranks can no longer be part of a *consecutive* run starting at the
    /// tail). `n` must not exceed half the capacity — beyond that a
    /// consecutive free run is not guaranteed to ever exist.
    pub fn reserve_run(&mut self, n: usize) -> Result<i64, Full<()>> {
        debug_assert!(n >= 1);
        debug_assert!(
            n <= self.queue.capacity() / 2,
            "chain runs are capped at capacity/2"
        );
        let cap = self.queue.capacity() as i64;
        // Rank-consumption bound, same spirit as the one-pass scan bound of
        // try_enqueue: give up after burning about one array's worth.
        let mut budget = self.queue.capacity();
        loop {
            // Fullness pre-check for the whole run against the shadow head
            // (refresh once before giving up).
            if self.tail + n as i64 - self.head_cache > cap {
                self.head_cache = self.queue.state().head().load(Ordering::Acquire);
                self.stats.head_refreshes += 1;
                if self.tail + n as i64 - self.head_cache > cap {
                    self.stats.full_rejections += 1;
                    return Err(Full(()));
                }
            }
            let start = self.tail;
            let mut k = 0usize;
            let blocked = loop {
                if k == n {
                    break false;
                }
                let rank = start + k as i64;
                if self.queue.cell(rank).words().load_lo(Ordering::Acquire) >= 0 {
                    break true;
                }
                k += 1;
            };
            if !blocked {
                return Ok(start);
            }
            if budget < k + 1 {
                self.stats.full_rejections += 1;
                return Err(Full(()));
            }
            budget -= k + 1;
            // Burn the too-short free prefix and the blocking busy cell as
            // gaps, then retry from the new tail. Announcing a gap at a
            // *free* cell is sound: consumers holding those ranks skip, and
            // the cell's future occupant carries a larger rank than the
            // announcement.
            for rank in start..=start + k as i64 {
                self.queue
                    .cell(rank)
                    .words()
                    .store_hi_unpaired(rank, Ordering::Release);
                self.stats.gaps_created += 1;
                self.advance_tail();
            }
            self.queue.state().wake_consumers_all();
        }
    }

    /// Publishes `value` at a rank previously returned by
    /// [`reserve_next`](Self::reserve_next) / [`reserve_run`](Self::reserve_run).
    ///
    /// `rank` must be the producer's current tail — i.e. reservations
    /// publish in ascending rank order with nothing enqueued in between.
    /// The Release rank store is the linearization point and orders every
    /// prior write by this thread (the descriptor *and* the payload bytes
    /// written into the rank's slot buffer) before the publication.
    pub fn publish_reserved(&mut self, rank: i64, value: T) {
        assert_eq!(rank, self.tail, "reserved ranks publish in order");
        let cell = self.queue.cell(rank);
        // SAFETY: the cell was observed free under this unique producer and
        // stays free until this rank store.
        unsafe { (*cell.data()).write(value) };
        cell.words().store_lo_unpaired(rank, Ordering::Release);
        self.stats.enqueued += 1;
        self.advance_tail();
        if self.mc {
            self.queue.state().wake_consumers_all();
        } else {
            self.queue.state().wake_consumers_published();
        }
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Approximate number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.queue.len_hint()
    }

    /// Number of live consumer handles.
    pub fn consumers(&self) -> usize {
        // Acquire per the QueueState handle-count rule.
        self.queue.state().consumers().load(Ordering::Acquire) as usize
    }

    /// Snapshot of this producer's counters.
    pub fn stats(&self) -> ProducerStats {
        self.stats
    }
}

/// The shared-head consumer engine (SPMC and MPMC variants).
///
/// `MP` selects, at compile time, whether cell-word resets must stay
/// coherent with the multi-producer double-word CAS (see
/// [`crate::shared::dequeue_core`]); `false` for SPMC, `true` for MPMC.
pub struct RawConsumer<
    T: Send,
    C: CellSlot<T> = PaddedCell<T>,
    M: IndexMap = LinearMap,
    const MP: bool = false,
> {
    queue: RawQueue<T, C, M>,
    pending: PendingRanks,
    /// Waiting profile for the blocking dequeue paths; see
    /// [`set_wait_config`](Self::set_wait_config).
    wait: WaitConfig,
    stats: ConsumerStats,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap, const MP: bool> RawConsumer<T, C, M, MP> {
    /// Attaches a consumer to `queue`. The new handle owns no pending
    /// ranks; its first dequeue claims from the current head.
    ///
    /// # Safety
    ///
    /// `queue` upholds [`RawQueue::from_raw`]'s contract for this handle's
    /// lifetime, and `MP` matches the queue's producer variant. The caller
    /// is responsible for the `consumers` count in [`QueueState`] and for
    /// calling [`recover_pending`](Self::recover_pending) before abandoning
    /// a handle that may hold pending ranks.
    pub unsafe fn attach(queue: RawQueue<T, C, M>) -> Self {
        Self {
            queue,
            pending: PendingRanks::default(),
            wait: WaitConfig::default(),
            stats: ConsumerStats::default(),
        }
    }

    /// The underlying view.
    #[inline(always)]
    pub fn queue(&self) -> &RawQueue<T, C, M> {
        &self.queue
    }

    /// Replaces the waiting profile used by the blocking dequeue paths
    /// (default: [`WaitConfig::adaptive`]). Per-handle.
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.wait = cfg;
    }

    /// Attempts to dequeue one item without blocking (pending-rank
    /// semantics; see [`crate::spmc::Consumer::try_dequeue`]).
    pub fn try_dequeue(&mut self) -> Result<T, TryDequeueError> {
        dequeue_core::<T, C, M, MP>(&self.queue, &mut self.pending, &mut self.stats)
    }

    /// Dequeues one item, waiting — spinning, then parking on the
    /// not-empty eventcount — while the queue is empty.
    pub fn dequeue(&mut self) -> Result<T, Disconnected> {
        dequeue_blocking::<T, C, M, MP>(&self.queue, &mut self.pending, &mut self.stats, self.wait)
    }

    /// Dequeues one item, giving up after `timeout`.
    ///
    /// The deadline check adapts to the wait phase: sampled on a stride
    /// while spinning (`Instant::now()` costs far more than a spin
    /// iteration), every round — with the sleep clamped to the time
    /// remaining — once parked, so even a parked consumer wakes within
    /// about a millisecond of its deadline.
    pub fn dequeue_timeout(&mut self, timeout: Duration) -> Result<T, TryDequeueError> {
        // Deadline materializes on the first empty round: a hit must not
        // pay a clock read (`ffq-shm` routes every blocking dequeue
        // through here in bounded slices).
        let mut deadline = None;
        let mut strat = WaitStrategy::new(self.wait);
        let q = self.queue;
        let res = loop {
            match self.try_dequeue() {
                Ok(v) => break Ok(v),
                e @ Err(TryDequeueError::Disconnected) => break e,
                e @ Err(TryDequeueError::Empty) => {
                    let d = *deadline.get_or_insert_with(|| Instant::now() + timeout);
                    // The wake condition for the rank this handle is parked
                    // on (try_dequeue re-parked it at the front): published,
                    // gap-announced, or producers gone. Snapshotted here —
                    // it cannot change until our next try_dequeue.
                    let front = self.pending.front_rank();
                    let state = q.state();
                    let round = strat.wait_round(
                        state.not_empty(),
                        state.wait_is_shared(),
                        Some(d),
                        &mut || wake_ready(&q, front),
                    );
                    if round == WaitRound::Expired {
                        break e;
                    }
                }
            }
        };
        self.stats.parks += strat.parks();
        res
    }

    /// Claims a run of `k` ranks with a single `head.fetch_add(k)` and
    /// parks it as pending (see [`crate::spmc::Consumer::claim_batch`]).
    pub fn claim_batch(&mut self, k: usize) {
        claim_batch_core(&self.queue, &mut self.pending, &mut self.stats, k);
    }

    /// Harvests up to `max` ready items into `buf`; returns the count.
    /// Never blocks, and claims nothing on an empty queue (see
    /// [`crate::spmc::Consumer::dequeue_batch`]).
    pub fn dequeue_batch(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        dequeue_batch_core::<T, C, M, MP>(&self.queue, &mut self.pending, &mut self.stats, buf, max)
    }

    /// [`dequeue_batch`](Self::dequeue_batch) whose *fresh* rank claims
    /// stop short of the absolute rank `head_cap` (previously parked runs
    /// still harvest — they honored the cap in force when claimed). The
    /// enforcement primitive behind the sharded frontend's bounded
    /// reordering; see `crate::shard`.
    pub fn dequeue_batch_capped(&mut self, buf: &mut Vec<T>, max: usize, head_cap: i64) -> usize {
        dequeue_batch_capped_core::<T, C, M, MP>(
            &self.queue,
            &mut self.pending,
            &mut self.stats,
            buf,
            max,
            head_cap,
        )
    }

    /// The next unclaimed rank of this queue — a monotone snapshot (stale
    /// reads only under-report). Sharded consumers compare heads across
    /// shards to bound how far any one shard may run ahead.
    pub fn head_rank(&self) -> i64 {
        self.queue.state().head().load(Ordering::Relaxed)
    }

    /// Number of claimed-but-unsatisfied ranks currently parked on this
    /// handle.
    pub fn pending_ranks(&self) -> usize {
        self.pending.len()
    }

    /// `true` when this handle holds no pending rank.
    pub fn pending_is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The wake condition of a blocked dequeue on this handle: its front
    /// pending rank's cell was published or gap-announced — or, with no
    /// pending rank, the mirrored tail shows something to claim, or no
    /// producer is left. Precise on the pending side on purpose (see
    /// [`crate::shared::wake_ready`]): `true` means a retry on this handle
    /// can make progress, not merely that the queue moved.
    pub fn wake_ready(&self) -> bool {
        wake_ready(&self.queue, self.pending.front_rank())
    }

    /// [`wake_ready`](Self::wake_ready) without the producers-gone
    /// disconnect term — see [`crate::shared::wake_ready_items`] for why
    /// aggregating callers need the split.
    pub fn wake_ready_items(&self) -> bool {
        wake_ready_items(&self.queue, self.pending.front_rank())
    }

    /// Moves up to `max` currently available items into `buf`, one rank
    /// claim per item; returns the count. Never blocks, and never claims a
    /// rank on a queue whose tail shows nothing available.
    ///
    /// This is the *per-item* drain; prefer
    /// [`dequeue_batch`](Self::dequeue_batch), which claims rank runs.
    pub fn drain_into(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            // Claim-free emptiness pre-check: a drain on an empty queue
            // must not park a rank it cannot satisfy.
            if self.pending.is_empty() && self.queue.looks_empty() {
                break;
            }
            match self.try_dequeue() {
                Ok(v) => {
                    buf.push(v);
                    n += 1;
                }
                Err(_) => break,
            }
        }
        n
    }

    /// Discards every pending rank `>= bound`, returning how many were
    /// dropped. The unbounded tier calls this when a consumer learns its
    /// segment was sealed at `bound`: ranks claimed at or past the seal can
    /// never be published there (enqueues moved to the next segment), so
    /// holding them would block this handle forever. Sound because a
    /// claimed rank is owned by this handle — nobody else will ever present
    /// it — and the sealed cells at those ranks stay free until the segment
    /// is recycled wholesale. Bounded queues never need this.
    pub fn prune_pending_from(&mut self, bound: i64) -> usize {
        self.pending.truncate_from(bound)
    }

    /// Best-effort recovery for a detaching consumer: consume and drop any
    /// already-published item among its parked ranks so those cells return
    /// to circulation. Unpublished ranks are forfeited (the paper's
    /// consumers are immortal worker threads; see the README caveat).
    pub fn recover_pending(&mut self) {
        recover_pending::<T, C, M, MP>(&self.queue, &mut self.pending);
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Approximate number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.queue.len_hint()
    }

    /// Snapshot of this consumer's counters.
    pub fn stats(&self) -> ConsumerStats {
        self.stats
    }

    /// This handle's waiting profile (see [`set_wait_config`]).
    ///
    /// [`set_wait_config`]: Self::set_wait_config
    pub fn wait_config(&self) -> WaitConfig {
        self.wait
    }
}

impl<T: Send + Copy, C: CellSlot<T>, M: IndexMap, const MP: bool> RawConsumer<T, C, M, MP> {
    /// Dequeues one item *without recycling its cell*: the borrowed-read
    /// primitive of the zero-copy bytes lane.
    ///
    /// On success the caller owns rank `r` — its cell keeps publishing `r`,
    /// so the producer side treats it as busy (skipping it with a gap
    /// announcement if its slot comes around again) — until the caller
    /// hands it back with [`retire`](Self::retire). Holding a claim is
    /// pure-degradation, never corruption, but it does consume ring
    /// capacity; retire promptly. Restricted to `T: Copy` because the value
    /// is copied out while the cell stays initialized.
    pub fn try_claim(&mut self) -> Result<(i64, T), TryDequeueError> {
        dequeue_claim_core::<T, C, M, MP>(&self.queue, &mut self.pending, &mut self.stats)
    }

    /// Recycles the cell of a rank obtained from [`try_claim`](Self::try_claim).
    /// The Release reset orders the caller's final read of the cell's slot
    /// buffer before any producer reuse.
    pub fn retire(&mut self, rank: i64) {
        let words = self.queue.cell(rank).words();
        if MP {
            words.store_lo(RANK_FREE, Ordering::Release);
        } else {
            words.store_lo_unpaired(RANK_FREE, Ordering::Release);
        }
    }
}

/// The private-head consumer engine of the SPSC variant.
///
/// No shared-head RMW and no pending-rank bookkeeping: the private head
/// simply does not advance on `Empty`. The head is mirrored into
/// [`QueueState::head`] for the producer's fullness pre-check — once per
/// item on the per-item path, once per run on the batched path.
pub struct RawSpscConsumer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    queue: RawQueue<T, C, M>,
    /// Private head counter — the single-consumer specialization.
    head: i64,
    /// Waiting profile for the blocking dequeue paths; see
    /// [`set_wait_config`](Self::set_wait_config).
    wait: WaitConfig,
    stats: ConsumerStats,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> RawSpscConsumer<T, C, M> {
    /// Attaches the unique consumer to `queue`, resuming from the mirrored
    /// head (0 on a fresh queue).
    ///
    /// # Safety
    ///
    /// `queue` upholds [`RawQueue::from_raw`]'s contract for this handle's
    /// lifetime; no other consumer handle (of either kind) exists on the
    /// same queue while this one does; the queue's producer is a
    /// single-producer engine. The caller is responsible for the
    /// `consumers` count in [`QueueState`].
    pub unsafe fn attach(queue: RawQueue<T, C, M>) -> Self {
        let head = queue.state().head().load(Ordering::Acquire);
        Self {
            queue,
            head,
            wait: WaitConfig::default(),
            stats: ConsumerStats::default(),
        }
    }

    /// The underlying view.
    #[inline(always)]
    pub fn queue(&self) -> &RawQueue<T, C, M> {
        &self.queue
    }

    /// Replaces the waiting profile used by the blocking dequeue paths
    /// (default: [`WaitConfig::adaptive`]). Per-handle.
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.wait = cfg;
    }

    /// Attempts to dequeue one item without blocking.
    pub fn try_dequeue(&mut self) -> Result<T, TryDequeueError> {
        // Sticky within this call: one Acquire load of `producers() == 0`
        // makes every completed enqueue visible globally, so gap skips after
        // it must not reset the flag (resetting could bounce a drained,
        // producer-less queue back to `Empty`).
        let mut disconnect_checked = false;
        loop {
            let rank = self.head;
            let cell = self.queue.cell(rank);
            let words = cell.words();

            // One untorn (rank, gap) read per iteration; on the emulated
            // DWCAS path this is stripe-locked so it can never observe a
            // half-applied pair update.
            let (r, g) = words.load_pair_untorn(Ordering::Acquire);
            if r == rank {
                // SAFETY: published cell owned by the unique consumer.
                let value = unsafe { (*cell.data()).assume_init_read() };
                words.store_lo_unpaired(RANK_FREE, Ordering::Release);
                self.head += 1;
                // Mirror for the producer's fullness pre-check and
                // len_hint; nothing synchronizes on it beyond Acquire/
                // Release pairing of the counter value itself.
                self.queue
                    .state()
                    .head()
                    .store(self.head, Ordering::Release);
                // A producer parked on a full queue waits for exactly this
                // head advance.
                self.queue.state().wake_producers(1);
                self.stats.dequeued += 1;
                self.stats.ranks_claimed += 1;
                return Ok(value);
            }

            if g >= rank {
                // The paper's `c.rank != rank` guard: the producer may have
                // published our rank after the pair read above.
                if words.load_lo(Ordering::Acquire) == rank {
                    continue;
                }
                self.head += 1;
                self.queue
                    .state()
                    .head()
                    .store(self.head, Ordering::Release);
                self.queue.state().wake_producers(1);
                self.stats.gaps_skipped += 1;
                self.stats.ranks_claimed += 1;
                continue;
            }

            self.stats.not_ready += 1;
            if !disconnect_checked && self.queue.state().producers().load(Ordering::Acquire) == 0 {
                disconnect_checked = true;
                continue;
            }
            return Err(if disconnect_checked {
                TryDequeueError::Disconnected
            } else {
                TryDequeueError::Empty
            });
        }
    }

    /// Dequeues one item, waiting — spinning, then parking on the
    /// not-empty eventcount — while the queue is empty.
    pub fn dequeue(&mut self) -> Result<T, Disconnected> {
        let mut strat = WaitStrategy::new(self.wait);
        let q = self.queue;
        let res = loop {
            match self.try_dequeue() {
                Ok(v) => break Ok(v),
                Err(TryDequeueError::Empty) => {
                    // The private head does not advance on Empty, so the
                    // wake condition is our own next rank's cell.
                    let front = Some(self.head);
                    let state = q.state();
                    strat.wait_round(state.not_empty(), state.wait_is_shared(), None, &mut || {
                        wake_ready(&q, front)
                    });
                }
                Err(TryDequeueError::Disconnected) => break Err(Disconnected),
            }
        };
        self.stats.parks += strat.parks();
        res
    }

    /// Dequeues one item, giving up after `timeout` (phase-adaptive
    /// deadline checks; see [`crate::spmc::Consumer::dequeue_timeout`]).
    pub fn dequeue_timeout(&mut self, timeout: Duration) -> Result<T, TryDequeueError> {
        // Lazy deadline, same as the shared-head consumer: hits stay
        // clock-free.
        let mut deadline = None;
        let mut strat = WaitStrategy::new(self.wait);
        let q = self.queue;
        let res = loop {
            match self.try_dequeue() {
                Ok(v) => break Ok(v),
                e @ Err(TryDequeueError::Disconnected) => break e,
                e @ Err(TryDequeueError::Empty) => {
                    let d = *deadline.get_or_insert_with(|| Instant::now() + timeout);
                    let front = Some(self.head);
                    let state = q.state();
                    let round = strat.wait_round(
                        state.not_empty(),
                        state.wait_is_shared(),
                        Some(d),
                        &mut || wake_ready(&q, front),
                    );
                    if round == WaitRound::Expired {
                        break e;
                    }
                }
            }
        };
        self.stats.parks += strat.parks();
        res
    }

    /// Harvests up to `max` ready items into `buf`; returns the count.
    /// Never blocks. The head mirror is stored once per harvested run
    /// instead of once per item.
    pub fn dequeue_batch(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        let start = self.head;
        let mut n = 0usize;
        while n < max {
            let rank = self.head;
            let cell = self.queue.cell(rank);
            let words = cell.words();

            // Untorn (rank, gap) read — see try_dequeue.
            let (r, g) = words.load_pair_untorn(Ordering::Acquire);
            if r == rank {
                // SAFETY: published cell owned by the unique consumer.
                let value = unsafe { (*cell.data()).assume_init_read() };
                words.store_lo_unpaired(RANK_FREE, Ordering::Release);
                self.head += 1;
                self.stats.dequeued += 1;
                buf.push(value);
                n += 1;
                continue;
            }
            if g >= rank {
                if words.load_lo(Ordering::Acquire) == rank {
                    continue;
                }
                self.head += 1;
                self.stats.gaps_skipped += 1;
                continue;
            }
            break;
        }
        if self.head != start {
            self.stats.ranks_claimed += (self.head - start) as u64;
            self.queue
                .state()
                .head()
                .store(self.head, Ordering::Release);
            self.queue
                .state()
                .wake_producers((self.head - start) as usize);
        }
        self.stats.batch_dequeues += 1;
        self.stats.batch_items += n as u64;
        n
    }

    /// Moves up to `max` currently available items into `buf`, one head
    /// mirror store per item; returns the count. Never blocks.
    ///
    /// This is the *per-item* drain; prefer
    /// [`dequeue_batch`](Self::dequeue_batch), which mirrors once per run.
    pub fn drain_into(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.try_dequeue() {
                Ok(v) => {
                    buf.push(v);
                    n += 1;
                }
                Err(_) => break,
            }
        }
        n
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Approximate number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.queue.len_hint()
    }

    /// Snapshot of this consumer's counters.
    pub fn stats(&self) -> ConsumerStats {
        self.stats
    }

    /// This handle's waiting profile (see [`set_wait_config`]).
    ///
    /// [`set_wait_config`]: Self::set_wait_config
    pub fn wait_config(&self) -> WaitConfig {
        self.wait
    }

    /// The rank this consumer will examine next (its private head).
    #[inline(always)]
    pub fn head_rank(&self) -> i64 {
        self.head
    }

    /// The wake condition of a blocked dequeue on this handle — the private
    /// head's cell was published or gap-announced, or no producer is left.
    pub fn wake_ready(&self) -> bool {
        wake_ready(&self.queue, Some(self.head))
    }
}

impl<T: Send + Copy, C: CellSlot<T>, M: IndexMap> RawSpscConsumer<T, C, M> {
    /// Dequeues one item *without recycling its cell or advancing the
    /// head*: the SPSC borrowed-read primitive of the zero-copy bytes lane
    /// (see [`RawConsumer::try_claim`]). The claim must be handed back with
    /// [`retire`](Self::retire) before the next claim — the private head
    /// does not move until then.
    pub fn try_claim(&mut self) -> Result<(i64, T), TryDequeueError> {
        let mut disconnect_checked = false;
        loop {
            let rank = self.head;
            let cell = self.queue.cell(rank);
            let words = cell.words();
            let (r, g) = words.load_pair_untorn(Ordering::Acquire);
            if r == rank {
                // SAFETY: published cell owned by the unique consumer; T is
                // Copy, so reading without un-initializing is sound.
                let value = unsafe { (*cell.data()).assume_init_read() };
                self.stats.dequeued += 1;
                return Ok((rank, value));
            }
            if g >= rank {
                if words.load_lo(Ordering::Acquire) == rank {
                    continue;
                }
                self.head += 1;
                self.queue
                    .state()
                    .head()
                    .store(self.head, Ordering::Release);
                self.queue.state().wake_producers(1);
                self.stats.gaps_skipped += 1;
                self.stats.ranks_claimed += 1;
                continue;
            }
            self.stats.not_ready += 1;
            if !disconnect_checked && self.queue.state().producers().load(Ordering::Acquire) == 0 {
                disconnect_checked = true;
                continue;
            }
            return Err(if disconnect_checked {
                TryDequeueError::Disconnected
            } else {
                TryDequeueError::Empty
            });
        }
    }

    /// Recycles the cell of a rank obtained from
    /// [`try_claim`](Self::try_claim) and advances the private head past
    /// it. The Release reset orders the caller's final read of the cell's
    /// slot buffer before any producer reuse.
    pub fn retire(&mut self, rank: i64) {
        debug_assert_eq!(rank, self.head, "SPSC claims retire in order");
        let words = self.queue.cell(rank).words();
        words.store_lo_unpaired(RANK_FREE, Ordering::Release);
        self.head += 1;
        self.queue
            .state()
            .head()
            .store(self.head, Ordering::Release);
        self.queue.state().wake_producers(1);
        self.stats.ranks_claimed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_state_layout_is_stable() {
        // The counter block is mapped by separately compiled binaries: its
        // size and field offsets must match the repr(C) prediction exactly.
        assert_eq!(core::mem::align_of::<QueueState>(), 128);
        assert_eq!(core::mem::size_of::<QueueState>(), 640);
        let s = QueueState::new(4, 1, 1);
        let base = &s as *const _ as usize;
        assert_eq!(s.head() as *const _ as usize - base, 0);
        assert_eq!(s.tail() as *const _ as usize - base, 128);
        assert_eq!(s.not_empty() as *const _ as usize - base, 256);
        assert_eq!(s.not_full() as *const _ as usize - base, 384);
        assert_eq!(s.producers() as *const _ as usize - base, 512);
        assert_eq!(s.consumers() as *const _ as usize - base, 516);
    }

    #[test]
    fn shared_wait_flag_survives_the_builder() {
        let s = QueueState::new(4, 1, 1);
        assert!(!s.wait_is_shared());
        let s = QueueState::new(4, 1, 1).with_shared_wait();
        assert!(s.wait_is_shared());
    }

    #[test]
    fn raw_view_over_local_memory_runs_the_protocol() {
        use crate::cell::PaddedCell;
        use crate::layout::LinearMap;

        // Queue state and cells in plain local allocations, handles built
        // through the raw layer only.
        let state = QueueState::new(3, 1, 1);
        let cells: Vec<PaddedCell<u64>> = (0..8).map(|_| CellSlot::<u64>::empty()).collect();
        // SAFETY: state/cells outlive the handles; one producer, one
        // shared-head consumer.
        let q = unsafe {
            RawQueue::<u64, PaddedCell<u64>, LinearMap>::from_raw(&state, cells.as_ptr())
        };
        let mut tx = unsafe { RawProducer::attach(q) };
        let mut rx = unsafe { RawConsumer::<u64, _, _, false>::attach(q) };
        for i in 0..100u64 {
            tx.enqueue(i);
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Empty));
        rx.recover_pending();
    }

    #[test]
    fn raw_producer_attach_resumes_from_tail_mirror() {
        use crate::cell::PaddedCell;
        use crate::layout::LinearMap;

        let state = QueueState::new(3, 1, 1);
        let cells: Vec<PaddedCell<u64>> = (0..8).map(|_| CellSlot::<u64>::empty()).collect();
        let q = unsafe {
            RawQueue::<u64, PaddedCell<u64>, LinearMap>::from_raw(&state, cells.as_ptr())
        };
        {
            let mut tx = unsafe { RawProducer::attach(q) };
            tx.enqueue(1);
            tx.enqueue(2);
        }
        // A second producer (the first is gone) resumes at rank 2.
        let mut tx = unsafe { RawProducer::attach(q) };
        tx.enqueue(3);
        let mut rx = unsafe { RawSpscConsumer::attach(q) };
        assert_eq!(rx.try_dequeue(), Ok(1));
        assert_eq!(rx.try_dequeue(), Ok(2));
        assert_eq!(rx.try_dequeue(), Ok(3));
    }
}
