//! Rank-to-slot index mappings (§IV-A of the paper).
//!
//! FFQ maps the item with rank `k` to the array element at position
//! `k mod N`. The paper's *address randomization* optimization keeps this
//! cheap modulo mapping but permutes the slot order so that logically
//! consecutive cells land in distinct cache lines: "we rotate the bits of
//! the index by 4, effectively placing two consecutive cells 16 positions
//! apart in memory".
//!
//! Both mappings here are bijections on `[0, N)` for power-of-two `N`, which
//! is all the queue requires: distinct in-flight ranks (they span less than
//! `N`) must map to distinct slots.

use crate::error::CapacityError;

/// A compile-time strategy for mapping a rank to a slot index.
///
/// Implementations must be bijective on `[0, 2^cap_log2)` when restricted to
/// the low `cap_log2` bits of the rank.
pub trait IndexMap: Copy + Default + Send + Sync + 'static {
    /// Maps non-negative `rank` to a slot in `[0, 2^cap_log2)`.
    fn slot(rank: i64, cap_log2: u32) -> usize;

    /// Human-readable name used by the benchmark reports.
    const NAME: &'static str;
}

/// The identity mapping: slot = `rank mod N`. This is the paper's
/// "not randomized" configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinearMap;

impl IndexMap for LinearMap {
    #[inline(always)]
    fn slot(rank: i64, cap_log2: u32) -> usize {
        debug_assert!(rank >= 0);
        (rank as u64 & mask(cap_log2)) as usize
    }

    const NAME: &'static str = "linear";
}

/// The paper's address randomization: rotate the low `cap_log2` index bits
/// left by 4, so ranks `k` and `k+1` land 16 slots apart (different cache
/// lines even for compact 24-byte cells).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RotateMap;

impl IndexMap for RotateMap {
    #[inline(always)]
    fn slot(rank: i64, cap_log2: u32) -> usize {
        debug_assert!(rank >= 0);
        let idx = rank as u64 & mask(cap_log2);
        // Rotating by 4 within fewer than 5 bits degenerates; fall back to
        // an effective rotation of `4 mod cap_log2` which stays bijective.
        let s = if cap_log2 == 0 {
            return 0;
        } else {
            4 % cap_log2
        };
        if s == 0 {
            return idx as usize;
        }
        let rotated = ((idx << s) | (idx >> (cap_log2 - s))) & mask(cap_log2);
        rotated as usize
    }

    const NAME: &'static str = "rotate";
}

#[inline(always)]
fn mask(cap_log2: u32) -> u64 {
    (1u64 << cap_log2) - 1
}

/// Largest cell count any FFQ variant accepts (2³¹ cells).
///
/// Ranks are `i64` and the shared-memory header encodes the capacity
/// exponent in a `u32`, so this bound keeps every arithmetic step — rank
/// claims, region offsets, byte sizes — comfortably inside its type.
pub const MAX_CAPACITY: usize = 1 << 31;

/// Validates and normalizes a requested queue capacity; returns `cap_log2`,
/// the exponent of the actual power-of-two cell count.
///
/// This is the **single validation path** every constructor in this crate
/// (and the shared-memory constructors in `ffq-shm`) goes through, and the
/// one place the rounding rule is defined:
///
/// * `0` is rejected with [`CapacityError::Zero`] — it cannot be rounded.
/// * Anything above [`MAX_CAPACITY`] is rejected with
///   [`CapacityError::TooLarge`].
/// * Every other request is rounded **up** to the next power of two, with a
///   floor of 2 (the smallest array the rank/gap protocol works on). FFQ's
///   modulo rank-to-slot mapping requires a power-of-two cell count;
///   rounding up means callers always get at least the capacity they asked
///   for — relevant for the paper's "implicit flow control" sizing rule
///   (§I observation 2), which picks capacities from workload parameters
///   that need not be powers of two.
pub fn normalize_capacity(requested: usize) -> Result<u32, CapacityError> {
    if requested == 0 {
        return Err(CapacityError::Zero);
    }
    if requested > MAX_CAPACITY {
        return Err(CapacityError::TooLarge { requested });
    }
    Ok(requested.next_power_of_two().max(2).trailing_zeros())
}

/// Smallest per-cell slot buffer the zero-copy bytes lane accepts: one
/// cache line. Anything smaller would share lines between neighbouring
/// slots and reintroduce exactly the false sharing the padded cell layout
/// exists to avoid.
pub const MIN_SLOT_BYTES: usize = 64;

/// Largest per-cell slot buffer (1 GiB). Together with [`MAX_CAPACITY`]
/// this keeps every slot-region byte offset inside `u64` arithmetic, and
/// the power-of-two exponent inside the byte the shared-memory header
/// encodes it in.
pub const MAX_SLOT_BYTES: usize = 1 << 30;

/// Default slot size for bytes-lane constructors that do not specify one.
pub const DEFAULT_SLOT_BYTES: usize = 1024;

/// Validates and normalizes a requested bytes-lane slot size; returns the
/// actual power-of-two slot size in bytes.
///
/// Mirrors [`normalize_capacity`]: the single validation path for the
/// `slot_bytes` knob of every zero-copy constructor (heap and `ffq-shm`
/// alike). Requests round **up** to the next power of two with a floor of
/// [`MIN_SLOT_BYTES`], so each slot is cache-line aligned *and* cache-line
/// granular and the shared-memory header can store just the exponent; `0`
/// and anything above [`MAX_SLOT_BYTES`] are rejected with the same typed
/// errors capacity validation uses.
pub fn normalize_slot_bytes(requested: usize) -> Result<usize, CapacityError> {
    if requested == 0 {
        return Err(CapacityError::Zero);
    }
    if requested > MAX_SLOT_BYTES {
        return Err(CapacityError::TooLarge { requested });
    }
    Ok(requested.next_power_of_two().max(MIN_SLOT_BYTES))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_bijective<M: IndexMap>(cap_log2: u32) {
        let n = 1usize << cap_log2;
        let slots: HashSet<usize> = (0..n as i64).map(|r| M::slot(r, cap_log2)).collect();
        assert_eq!(
            slots.len(),
            n,
            "{} not bijective for N=2^{}",
            M::NAME,
            cap_log2
        );
        assert!(slots.iter().all(|&s| s < n));
    }

    #[test]
    fn linear_is_bijective_for_all_small_sizes() {
        for log2 in 1..=12 {
            assert_bijective::<LinearMap>(log2);
        }
    }

    #[test]
    fn rotate_is_bijective_for_all_small_sizes() {
        for log2 in 1..=12 {
            assert_bijective::<RotateMap>(log2);
        }
    }

    #[test]
    fn linear_is_modulo() {
        assert_eq!(LinearMap::slot(0, 4), 0);
        assert_eq!(LinearMap::slot(15, 4), 15);
        assert_eq!(LinearMap::slot(16, 4), 0);
        assert_eq!(LinearMap::slot(37, 4), 5);
    }

    #[test]
    fn rotate_places_consecutive_ranks_16_apart() {
        // With cap_log2 >= 5, rank k and k+1 differ by exactly 16 slots
        // whenever the increment does not carry into the top 4 index bits
        // (at a carry the rotation relocates the high bits too).
        let log2 = 10u32;
        let n = 1i64 << log2;
        let low = 1i64 << (log2 - 4);
        for k in 0..n - 1 {
            if k % low == low - 1 {
                continue; // carry boundary
            }
            let a = RotateMap::slot(k, log2) as i64;
            let b = RotateMap::slot(k + 1, log2) as i64;
            assert_eq!((b - a).rem_euclid(n), 16, "rank {k}");
        }
    }

    #[test]
    fn rotate_wraps_modulo_n() {
        let log2 = 6;
        let n = 1i64 << log2;
        for k in 0..4 * n {
            assert_eq!(RotateMap::slot(k, log2), RotateMap::slot(k % n, log2));
        }
    }

    #[test]
    fn rotate_degenerate_small_sizes() {
        // cap_log2 in 1,2,4 => rotation amount 0 or 4%cap_log2; must stay in range.
        for log2 in 1..=4 {
            assert_bijective::<RotateMap>(log2);
        }
    }

    #[test]
    fn normalize_capacity_accepts_powers_of_two() {
        assert_eq!(normalize_capacity(2), Ok(1));
        assert_eq!(normalize_capacity(1024), Ok(10));
        assert_eq!(normalize_capacity(1 << 20), Ok(20));
        assert_eq!(normalize_capacity(MAX_CAPACITY), Ok(31));
    }

    #[test]
    fn normalize_capacity_rounds_up() {
        assert_eq!(normalize_capacity(1), Ok(1), "floor of 2 cells");
        assert_eq!(normalize_capacity(3), Ok(2));
        assert_eq!(normalize_capacity(1000), Ok(10), "1000 -> 1024");
        assert_eq!(normalize_capacity((1 << 20) + 1), Ok(21));
    }

    #[test]
    fn normalize_slot_bytes_rounds_to_cache_line_powers() {
        assert_eq!(normalize_slot_bytes(1), Ok(64), "floor of one cache line");
        assert_eq!(normalize_slot_bytes(64), Ok(64));
        assert_eq!(normalize_slot_bytes(65), Ok(128));
        assert_eq!(normalize_slot_bytes(1000), Ok(1024));
        assert_eq!(normalize_slot_bytes(MAX_SLOT_BYTES), Ok(MAX_SLOT_BYTES));
        assert_eq!(normalize_slot_bytes(0), Err(CapacityError::Zero));
        assert_eq!(
            normalize_slot_bytes(MAX_SLOT_BYTES + 1),
            Err(CapacityError::TooLarge {
                requested: MAX_SLOT_BYTES + 1
            })
        );
    }

    #[test]
    fn normalize_capacity_typed_errors() {
        assert_eq!(normalize_capacity(0), Err(CapacityError::Zero));
        assert_eq!(
            normalize_capacity(MAX_CAPACITY + 1),
            Err(CapacityError::TooLarge {
                requested: MAX_CAPACITY + 1
            })
        );
        assert_eq!(
            normalize_capacity(usize::MAX),
            Err(CapacityError::TooLarge {
                requested: usize::MAX
            })
        );
    }
}
