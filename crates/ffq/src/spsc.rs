//! FFQ SPSC: the single-producer/single-consumer specialization.
//!
//! Used by the paper's evaluation as the response-queue of the syscall
//! framework and as the single-thread reference point in Figures 3 and 8:
//! "The SPSC variant of FFQ removes the need for an atomic increment
//! operation". The cell protocol is identical to Algorithm 1; the only
//! change is that the consumer's `head` is a private counter (single-reader/
//! single-writer), so dequeuing performs no atomic read-modify-write either.
//!
//! With no RMWs to amortize, batching here amortizes the remaining shared
//! traffic instead: the producer's batched path caches the consumer's
//! mirrored head (MCRingBuffer-style shadow index) and publishes a run of
//! ranks with one release pass, and the consumer's [`Consumer::dequeue_batch`]
//! mirrors its private head back once per harvested run instead of once per
//! item.
//!
//! The handles here are thin wrappers over the raw engines in
//! [`crate::raw`]: they allocate the queue on the heap, pin it with an
//! `Arc`, and disconnect on drop. The protocol itself lives entirely in the
//! raw layer, where `ffq-shm` reuses it over shared memory.

use ffq_sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::cell::{CellSlot, PaddedCell};
use crate::error::{Disconnected, Full, TryDequeueError};
use crate::layout::{normalize_capacity, IndexMap, LinearMap};
use crate::raw::{RawProducer, RawSpscConsumer};
use crate::shared::Shared;
use crate::stats::{ConsumerStats, ProducerStats};
use crate::WaitConfig;

/// Creates an SPSC queue with the default layout and at least the given
/// capacity (rounded up to a power of two; see
/// [`normalize_capacity`][crate::layout::normalize_capacity]).
///
/// # Panics
/// If `capacity` is 0 or exceeds [`crate::layout::MAX_CAPACITY`].
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    channel_with::<T, PaddedCell<T>, LinearMap>(capacity)
}

/// Creates a zero-copy bytes-mode SPSC queue: `capacity` cells, each owning
/// a slot buffer of at least `slot_bytes` bytes (both rounded up to powers
/// of two; see [`crate::layout::normalize_slot_bytes`]).
///
/// Payloads up to `slot_bytes` move through their rank's slot buffer with
/// one copy end to end; longer ones are chained across consecutive cells
/// ([`crate::bytes::SpillMode::Chain`]) up to `slot_bytes × capacity/2`,
/// never truncated.
pub fn bytes_channel(
    capacity: usize,
    slot_bytes: usize,
) -> Result<(crate::bytes::SpProducer, crate::bytes::SpscConsumer), crate::CapacityError> {
    crate::bytes::heap_spsc(capacity, slot_bytes)
}

/// Creates an SPSC queue with explicit cell layout and index mapping.
///
/// # Panics
/// If `capacity` is 0 or exceeds [`crate::layout::MAX_CAPACITY`].
pub fn channel_with<T: Send, C: CellSlot<T>, M: IndexMap>(
    capacity: usize,
) -> (Producer<T, C, M>, Consumer<T, C, M>) {
    let cap_log2 =
        normalize_capacity(capacity).unwrap_or_else(|e| panic!("ffq::spsc::channel: {e}"));
    let shared = Arc::new(Shared::<T, C, M>::with_log2(cap_log2, 1));
    let raw = shared.raw();
    // SAFETY: the Arc in each handle keeps the allocation (and thus the raw
    // view) alive and pinned; exactly one producer and one consumer handle
    // exist, and the counts were pre-set by `with_log2(_, 1)`.
    let tx = Producer {
        raw: unsafe { RawProducer::attach(raw) },
        _shared: Arc::clone(&shared),
    };
    let rx = Consumer {
        raw: unsafe { RawSpscConsumer::attach(raw) },
        _shared: shared,
    };
    (tx, rx)
}

/// The producing side of an SPSC queue (identical protocol to
/// [`crate::spmc::Producer`]).
pub struct Producer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawProducer<T, C, M>,
    /// Keeps the queue allocation alive (the raw view points into it).
    _shared: Arc<Shared<T, C, M>>,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Producer<T, C, M> {
    /// Enqueues `value`; waits — spinning, then parking per the configured
    /// [`WaitConfig`] — between full array scans if the queue is full
    /// (wait-free under the paper's sizing assumption).
    pub fn enqueue(&mut self, value: T) {
        self.raw.enqueue(value);
    }

    /// Enqueues `value`, giving up (and returning it back) once `timeout`
    /// has elapsed with the queue still full.
    pub fn enqueue_timeout(&mut self, value: T, timeout: Duration) -> Result<(), Full<T>> {
        self.raw.enqueue_timeout(value, timeout)
    }

    /// Replaces the wait policy used by blocking enqueues; see
    /// [`WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.raw.set_wait_config(cfg);
    }

    /// Attempts to enqueue; O(1) rejection when clearly full, otherwise one
    /// bounded array scan (with the rank-consumption caveat of
    /// [`crate::spmc::Producer::try_enqueue`]).
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        self.raw.try_enqueue(value)
    }

    /// Enqueues every item of `iter` (blocking as needed); returns the
    /// count.
    ///
    /// The batched path: data for a run of free cells is written first, the
    /// ranks are published in order behind one `Release` fence, and the
    /// shared tail mirror is stored once per run instead of once per item.
    pub fn enqueue_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        self.raw.enqueue_many(iter)
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Approximate number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.raw.len_hint()
    }

    /// Snapshot of this producer's counters.
    pub fn stats(&self) -> ProducerStats {
        self.raw.stats()
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Drop for Producer<T, C, M> {
    fn drop(&mut self) {
        // SeqCst (cold path): the Release half pairs with the consumer's
        // Acquire load in its disconnect check — every enqueue before this
        // drop is visible once the count reads 0; the SC position bounds
        // the death's latency to spinning wait predicates (see
        // mpmc::Producer::drop).
        let state = self.raw.queue().state();
        state.producers().fetch_sub(1, Ordering::SeqCst);
        // A consumer parked on the not-empty eventcount must observe the
        // disconnect promptly rather than after its bounded-park timeout.
        state.wake_all();
    }
}

/// The unique consuming side of an SPSC queue.
///
/// Not `Clone`: its `head` counter is private, which is exactly what makes
/// this variant cheaper than SPMC. Clone requirements mean you want
/// [`crate::spmc`].
pub struct Consumer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawSpscConsumer<T, C, M>,
    /// Keeps the queue allocation alive (the raw view points into it).
    _shared: Arc<Shared<T, C, M>>,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Consumer<T, C, M> {
    /// Attempts to dequeue one item without blocking.
    ///
    /// Unlike the SPMC consumer there is no pending-rank bookkeeping: the
    /// private head simply does not advance on `Empty`.
    pub fn try_dequeue(&mut self) -> Result<T, TryDequeueError> {
        self.raw.try_dequeue()
    }

    /// Dequeues one item, waiting — spinning, then parking per the
    /// configured [`WaitConfig`] — while the queue is empty.
    pub fn dequeue(&mut self) -> Result<T, Disconnected> {
        self.raw.dequeue()
    }

    /// Dequeues one item, giving up after `timeout`.
    ///
    /// While spinning, the deadline is only re-checked every few back-off
    /// rounds (`Instant::now()` costs far more than a spin iteration); once
    /// parked, every sleep is clamped to the remaining time, so the return
    /// lands within about a millisecond of the deadline.
    pub fn dequeue_timeout(&mut self, timeout: Duration) -> Result<T, TryDequeueError> {
        self.raw.dequeue_timeout(timeout)
    }

    /// Replaces the wait policy used by blocking dequeues; see
    /// [`WaitConfig`].
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.raw.set_wait_config(cfg);
    }

    /// Harvests up to `max` ready items into `buf`; returns the count.
    /// Never blocks.
    ///
    /// The batched dequeue: the private head advances cell by cell exactly
    /// as `try_dequeue` would, but the shared head mirror — the word the
    /// producer's fullness pre-check polls — is stored once per harvested
    /// run instead of once per item. (There is no `claim_batch` here: with
    /// no shared head RMW there is nothing to amortize, and nothing is ever
    /// pending.)
    pub fn dequeue_batch(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        self.raw.dequeue_batch(buf, max)
    }

    /// Moves up to `max` currently available items into `buf`, one head
    /// mirror store per item; returns the count. Never blocks.
    ///
    /// This is the *per-item* drain; prefer
    /// [`dequeue_batch`](Self::dequeue_batch), which mirrors once per run.
    pub fn drain_into(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        self.raw.drain_into(buf, max)
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Approximate number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.raw.len_hint()
    }

    /// Snapshot of this consumer's counters.
    pub fn stats(&self) -> ConsumerStats {
        self.raw.stats()
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> IntoIterator for Consumer<T, C, M> {
    type Item = T;
    type IntoIter = IntoIter<T, C, M>;

    /// A blocking iterator: yields items until all producers disconnect
    /// and the queue is drained.
    fn into_iter(self) -> Self::IntoIter {
        IntoIter { consumer: self }
    }
}

/// Blocking consuming iterator; see [`Consumer::into_iter`].
pub struct IntoIter<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    consumer: Consumer<T, C, M>,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Iterator for IntoIter<T, C, M> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.consumer.dequeue().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CompactCell;
    use crate::layout::RotateMap;

    #[test]
    fn fifo_order_preserved() {
        let (mut tx, mut rx) = channel::<u32>(8);
        for i in 0..6 {
            tx.enqueue(i);
        }
        for i in 0..6 {
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Empty));
    }

    #[test]
    fn interleaved_wraparound() {
        let (mut tx, mut rx) = channel::<u64>(4);
        for round in 0..100u64 {
            tx.enqueue(round * 2);
            tx.enqueue(round * 2 + 1);
            assert_eq!(rx.try_dequeue(), Ok(round * 2));
            assert_eq!(rx.try_dequeue(), Ok(round * 2 + 1));
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = channel::<u32>(100);
        assert_eq!(tx.capacity(), 128);
        let (tx, _rx) = channel::<u32>(1);
        assert_eq!(tx.capacity(), 2, "floor of 2 cells");
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = channel::<u32>(0);
    }

    #[test]
    fn full_rejected_cheaply_then_drains() {
        let (mut tx, mut rx) = channel::<u32>(4);
        for i in 0..4 {
            tx.try_enqueue(i).unwrap();
        }
        // The counter pre-check rejects in O(1): no scan, no gaps burned.
        assert!(tx.try_enqueue(4).is_err());
        assert_eq!(tx.stats().full_rejections, 1);
        assert_eq!(tx.stats().gaps_created, 0);
        let drained: Vec<u32> = std::iter::from_fn(|| rx.try_dequeue().ok()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3]);
        // Queue fully reusable afterwards.
        tx.enqueue(42);
        assert_eq!(rx.dequeue(), Ok(42));
    }

    #[test]
    fn disconnect_detected() {
        let (mut tx, mut rx) = channel::<u32>(8);
        tx.enqueue(5);
        drop(tx);
        assert_eq!(rx.try_dequeue(), Ok(5));
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
        assert_eq!(rx.dequeue(), Err(Disconnected));
        assert_eq!(
            rx.dequeue_timeout(Duration::from_millis(1)),
            Err(TryDequeueError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_stream() {
        const ITEMS: u64 = 200_000;
        let (mut tx, mut rx) = channel::<u64>(1 << 10);
        let t = std::thread::spawn(move || {
            for i in 0..ITEMS {
                tx.enqueue(i);
            }
        });
        for i in 0..ITEMS {
            assert_eq!(rx.dequeue(), Ok(i));
        }
        t.join().unwrap();
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
    }

    #[test]
    fn enqueue_many_single_release_pass() {
        let (mut tx, mut rx) = channel::<u64>(128);
        assert_eq!(tx.enqueue_many(0..100), 100);
        let s = tx.stats();
        assert_eq!(s.enqueued, 100);
        assert_eq!(s.batch_enqueues, 1);
        assert_eq!(s.batch_items, 100);
        // Queue started empty and was never near full: the shadow head
        // bound was never exhausted, so the shared head was never read.
        assert_eq!(s.head_refreshes, 0);
        for i in 0..100 {
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
    }

    #[test]
    fn dequeue_batch_mirrors_head_once() {
        let (mut tx, mut rx) = channel::<u64>(64);
        tx.enqueue_many(0..40);
        let mut buf = Vec::new();
        assert_eq!(rx.dequeue_batch(&mut buf, 64), 40);
        assert_eq!(buf, (0..40).collect::<Vec<_>>());
        let s = rx.stats();
        assert_eq!(s.batch_dequeues, 1);
        assert_eq!(s.batch_items, 40);
        // The SPSC head is private: no RMW at any batch size.
        assert_eq!(s.head_rmws, 0);
        // Empty queue: a batch harvest finds nothing and changes nothing.
        buf.clear();
        assert_eq!(rx.dequeue_batch(&mut buf, 8), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn batched_stream_cross_thread() {
        const ITEMS: u64 = 200_000;
        let (mut tx, mut rx) = channel::<u64>(1 << 8);
        let t = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < ITEMS {
                let hi = (next + 128).min(ITEMS);
                tx.enqueue_many(next..hi);
                next = hi;
            }
        });
        let mut buf = Vec::new();
        let mut expected = 0u64;
        while expected < ITEMS {
            if rx.dequeue_batch(&mut buf, 64) == 0 {
                std::hint::spin_loop();
                continue;
            }
            for v in buf.drain(..) {
                assert_eq!(v, expected);
                expected += 1;
            }
        }
        t.join().unwrap();
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
    }

    #[test]
    fn all_layouts_stream_correctly() {
        fn run<C: CellSlot<u64> + 'static, M: IndexMap>() {
            let (mut tx, mut rx) = channel_with::<u64, C, M>(64);
            let t = std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    tx.enqueue(i);
                }
            });
            for i in 0..20_000u64 {
                assert_eq!(rx.dequeue(), Ok(i));
            }
            t.join().unwrap();
        }
        run::<PaddedCell<u64>, LinearMap>();
        run::<PaddedCell<u64>, RotateMap>();
        run::<CompactCell<u64>, LinearMap>();
        run::<CompactCell<u64>, RotateMap>();
    }

    #[test]
    fn boxed_payloads_not_leaked() {
        // Box payloads exercise the non-trivial-drop path end to end.
        let (mut tx, mut rx) = channel::<Box<u64>>(16);
        for i in 0..8 {
            tx.enqueue(Box::new(i));
        }
        for i in 0..4 {
            assert_eq!(*rx.dequeue().unwrap(), i);
        }
        // Remaining 4 dropped with the queue.
    }
}
