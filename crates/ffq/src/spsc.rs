//! FFQ SPSC: the single-producer/single-consumer specialization.
//!
//! Used by the paper's evaluation as the response-queue of the syscall
//! framework and as the single-thread reference point in Figures 3 and 8:
//! "The SPSC variant of FFQ removes the need for an atomic increment
//! operation". The cell protocol is identical to Algorithm 1; the only
//! change is that the consumer's `head` is a private counter (single-reader/
//! single-writer), so dequeuing performs no atomic read-modify-write either.
//!
//! With no RMWs to amortize, batching here amortizes the remaining shared
//! traffic instead: the producer's batched path caches the consumer's
//! mirrored head (MCRingBuffer-style shadow index) and publishes a run of
//! ranks with one release pass, and the consumer's [`Consumer::dequeue_batch`]
//! mirrors its private head back once per harvested run instead of once per
//! item.

use core::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ffq_sync::Backoff;

use crate::cell::{CellSlot, PaddedCell, RANK_FREE};
use crate::error::{Disconnected, Full, TryDequeueError};
use crate::layout::{IndexMap, LinearMap};
use crate::shared::{enqueue_many_sp, looks_full_sp, Shared, DEADLINE_CHECK_INTERVAL};
use crate::stats::{ConsumerStats, ProducerStats};

/// Creates an SPSC queue with the default layout and the given power-of-two
/// capacity.
///
/// # Panics
/// If `capacity` is not a power of two >= 2.
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    channel_with::<T, PaddedCell<T>, LinearMap>(capacity)
}

/// Creates an SPSC queue with explicit cell layout and index mapping.
pub fn channel_with<T: Send, C: CellSlot<T>, M: IndexMap>(
    capacity: usize,
) -> (Producer<T, C, M>, Consumer<T, C, M>) {
    let shared = Arc::new(Shared::<T, C, M>::new(capacity, 1));
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            head_cache: 0,
            staged: Vec::new(),
            stats: ProducerStats::default(),
        },
        Consumer {
            shared,
            head: 0,
            stats: ConsumerStats::default(),
        },
    )
}

/// The producing side of an SPSC queue (identical protocol to
/// [`crate::spmc::Producer`]).
pub struct Producer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    shared: Arc<Shared<T, C, M>>,
    tail: i64,
    /// Shadow of the consumer's mirrored head: the head only grows, so a
    /// stale cache errs toward "full" and is refreshed only when exhausted.
    head_cache: i64,
    /// Scratch for ranks staged by `enqueue_many`'s release pass.
    staged: Vec<i64>,
    stats: ProducerStats,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Producer<T, C, M> {
    /// Enqueues `value`; backs off between full array scans if the queue is
    /// full (wait-free under the paper's sizing assumption).
    pub fn enqueue(&mut self, value: T) {
        let mut value = value;
        let mut backoff = Backoff::new();
        let cap = self.shared.capacity();
        loop {
            if self.looks_full() {
                backoff.wait();
                continue;
            }
            match self.enqueue_scan(value, cap) {
                Ok(()) => return,
                Err(Full(v)) => {
                    value = v;
                    backoff.wait();
                }
            }
        }
    }

    /// Fullness pre-check against the shadow head cache; only reads the
    /// shared (mirrored) head when the cached bound is exhausted (see
    /// [`crate::spmc::Producer::try_enqueue`] for why "looks full" is
    /// conservative in the safe direction).
    #[inline]
    fn looks_full(&mut self) -> bool {
        looks_full_sp(
            &self.shared,
            self.tail,
            &mut self.head_cache,
            &mut self.stats,
        )
    }

    /// Attempts to enqueue; O(1) rejection when clearly full, otherwise one
    /// bounded array scan (with the rank-consumption caveat of
    /// [`crate::spmc::Producer::try_enqueue`]).
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        if self.looks_full() {
            self.stats.full_rejections += 1;
            return Err(Full(value));
        }
        let cap = self.shared.capacity();
        let r = self.enqueue_scan(value, cap);
        if r.is_err() {
            self.stats.full_rejections += 1;
        }
        r
    }

    /// Enqueues every item of `iter` (blocking as needed); returns the
    /// count.
    ///
    /// The batched path: data for a run of free cells is written first, the
    /// ranks are published in order behind one `Release` fence, and the
    /// shared tail mirror is stored once per run instead of once per item.
    pub fn enqueue_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        let Self {
            shared,
            tail,
            head_cache,
            staged,
            stats,
        } = self;
        enqueue_many_sp(shared, tail, head_cache, staged, stats, iter)
    }

    fn enqueue_scan(&mut self, value: T, limit: usize) -> Result<(), Full<T>> {
        for _ in 0..limit {
            let rank = self.tail;
            debug_assert!(rank >= 0, "tail overflowed i64");
            let cell = self.shared.cell(rank);
            let words = cell.words();

            // See spmc.rs for the ordering discipline; it is identical.
            if words.lo_atomic().load(Ordering::Acquire) >= 0 {
                words.hi_atomic().store(rank, Ordering::Release);
                self.stats.gaps_created += 1;
                self.advance_tail();
                continue;
            }

            unsafe { (*cell.data()).write(value) };
            words.lo_atomic().store(rank, Ordering::Release);
            self.stats.enqueued += 1;
            self.advance_tail();
            return Ok(());
        }
        Err(Full(value))
    }

    #[inline(always)]
    fn advance_tail(&mut self) {
        self.tail += 1;
        self.stats.ranks_taken += 1;
        self.shared.tail.store(self.tail, Ordering::Release);
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Approximate number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.shared.len_hint()
    }

    /// Snapshot of this producer's counters.
    pub fn stats(&self) -> ProducerStats {
        self.stats
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Drop for Producer<T, C, M> {
    fn drop(&mut self) {
        self.shared.producers.fetch_sub(1, Ordering::Release);
    }
}

/// The unique consuming side of an SPSC queue.
///
/// Not `Clone`: its `head` counter is private, which is exactly what makes
/// this variant cheaper than SPMC. Clone requirements mean you want
/// [`crate::spmc`].
pub struct Consumer<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    shared: Arc<Shared<T, C, M>>,
    /// Private head counter — the single-consumer specialization.
    head: i64,
    stats: ConsumerStats,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Consumer<T, C, M> {
    /// Attempts to dequeue one item without blocking.
    ///
    /// Unlike the SPMC consumer there is no pending-rank bookkeeping: the
    /// private head simply does not advance on `Empty`.
    pub fn try_dequeue(&mut self) -> Result<T, TryDequeueError> {
        let mut disconnect_checked = false;
        loop {
            let rank = self.head;
            let cell = self.shared.cell(rank);
            let words = cell.words();

            let r = words.lo_atomic().load(Ordering::Acquire);
            if r == rank {
                // SAFETY: published cell owned by the unique consumer.
                let value = unsafe { (*cell.data()).assume_init_read() };
                words.lo_atomic().store(RANK_FREE, Ordering::Release);
                self.head += 1;
                // Mirror for the producer's fullness pre-check and
                // len_hint; nothing synchronizes on it beyond Acquire/
                // Release pairing of the counter value itself.
                self.shared.head.store(self.head, Ordering::Release);
                self.stats.dequeued += 1;
                self.stats.ranks_claimed += 1;
                return Ok(value);
            }

            if words.hi_atomic().load(Ordering::Acquire) >= rank {
                if words.lo_atomic().load(Ordering::Acquire) == rank {
                    continue;
                }
                self.head += 1;
                self.shared.head.store(self.head, Ordering::Release);
                self.stats.gaps_skipped += 1;
                self.stats.ranks_claimed += 1;
                disconnect_checked = false;
                continue;
            }

            self.stats.not_ready += 1;
            if !disconnect_checked && self.shared.producers.load(Ordering::Acquire) == 0 {
                disconnect_checked = true;
                continue;
            }
            return Err(if disconnect_checked {
                TryDequeueError::Disconnected
            } else {
                TryDequeueError::Empty
            });
        }
    }

    /// Dequeues one item, backing off while the queue is empty.
    pub fn dequeue(&mut self) -> Result<T, Disconnected> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_dequeue() {
                Ok(v) => return Ok(v),
                Err(TryDequeueError::Empty) => backoff.wait(),
                Err(TryDequeueError::Disconnected) => return Err(Disconnected),
            }
        }
    }

    /// Dequeues one item, giving up after `timeout`.
    ///
    /// The deadline is only re-checked every few back-off rounds
    /// (`Instant::now()` costs far more than a spin iteration), so the
    /// effective timeout overshoots by a few rounds of back-off.
    pub fn dequeue_timeout(&mut self, timeout: Duration) -> Result<T, TryDequeueError> {
        let deadline = Instant::now() + timeout;
        let mut backoff = Backoff::new();
        let mut until_check = DEADLINE_CHECK_INTERVAL;
        loop {
            match self.try_dequeue() {
                Ok(v) => return Ok(v),
                e @ Err(TryDequeueError::Disconnected) => return e,
                e @ Err(TryDequeueError::Empty) => {
                    until_check -= 1;
                    if until_check == 0 {
                        if Instant::now() >= deadline {
                            return e;
                        }
                        until_check = DEADLINE_CHECK_INTERVAL;
                    }
                    backoff.wait();
                }
            }
        }
    }

    /// Harvests up to `max` ready items into `buf`; returns the count.
    /// Never blocks.
    ///
    /// The batched dequeue: the private head advances cell by cell exactly
    /// as `try_dequeue` would, but the shared head mirror — the word the
    /// producer's fullness pre-check polls — is stored once per harvested
    /// run instead of once per item. (There is no `claim_batch` here: with
    /// no shared head RMW there is nothing to amortize, and nothing is ever
    /// pending.)
    pub fn dequeue_batch(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        let start = self.head;
        let mut n = 0usize;
        while n < max {
            let rank = self.head;
            let cell = self.shared.cell(rank);
            let words = cell.words();

            let r = words.lo_atomic().load(Ordering::Acquire);
            if r == rank {
                // SAFETY: published cell owned by the unique consumer.
                let value = unsafe { (*cell.data()).assume_init_read() };
                words.lo_atomic().store(RANK_FREE, Ordering::Release);
                self.head += 1;
                self.stats.dequeued += 1;
                buf.push(value);
                n += 1;
                continue;
            }
            if words.hi_atomic().load(Ordering::Acquire) >= rank {
                if words.lo_atomic().load(Ordering::Acquire) == rank {
                    continue;
                }
                self.head += 1;
                self.stats.gaps_skipped += 1;
                continue;
            }
            break;
        }
        if self.head != start {
            self.stats.ranks_claimed += (self.head - start) as u64;
            self.shared.head.store(self.head, Ordering::Release);
        }
        self.stats.batch_dequeues += 1;
        self.stats.batch_items += n as u64;
        n
    }

    /// Moves up to `max` currently available items into `buf`, one head
    /// mirror store per item; returns the count. Never blocks.
    ///
    /// This is the *per-item* drain; prefer
    /// [`dequeue_batch`](Self::dequeue_batch), which mirrors once per run.
    pub fn drain_into(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.try_dequeue() {
                Ok(v) => {
                    buf.push(v);
                    n += 1;
                }
                Err(_) => break,
            }
        }
        n
    }

    /// Capacity of the underlying cell array.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Approximate number of items currently enqueued.
    pub fn len_hint(&self) -> usize {
        self.shared.len_hint()
    }

    /// Snapshot of this consumer's counters.
    pub fn stats(&self) -> ConsumerStats {
        self.stats
    }
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> IntoIterator for Consumer<T, C, M> {
    type Item = T;
    type IntoIter = IntoIter<T, C, M>;

    /// A blocking iterator: yields items until all producers disconnect
    /// and the queue is drained.
    fn into_iter(self) -> Self::IntoIter {
        IntoIter { consumer: self }
    }
}

/// Blocking consuming iterator; see [`Consumer::into_iter`].
pub struct IntoIter<T: Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    consumer: Consumer<T, C, M>,
}

impl<T: Send, C: CellSlot<T>, M: IndexMap> Iterator for IntoIter<T, C, M> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.consumer.dequeue().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CompactCell;
    use crate::layout::RotateMap;

    #[test]
    fn fifo_order_preserved() {
        let (mut tx, mut rx) = channel::<u32>(8);
        for i in 0..6 {
            tx.enqueue(i);
        }
        for i in 0..6 {
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Empty));
    }

    #[test]
    fn interleaved_wraparound() {
        let (mut tx, mut rx) = channel::<u64>(4);
        for round in 0..100u64 {
            tx.enqueue(round * 2);
            tx.enqueue(round * 2 + 1);
            assert_eq!(rx.try_dequeue(), Ok(round * 2));
            assert_eq!(rx.try_dequeue(), Ok(round * 2 + 1));
        }
    }

    #[test]
    fn full_rejected_cheaply_then_drains() {
        let (mut tx, mut rx) = channel::<u32>(4);
        for i in 0..4 {
            tx.try_enqueue(i).unwrap();
        }
        // The counter pre-check rejects in O(1): no scan, no gaps burned.
        assert!(tx.try_enqueue(4).is_err());
        assert_eq!(tx.stats().full_rejections, 1);
        assert_eq!(tx.stats().gaps_created, 0);
        let drained: Vec<u32> = std::iter::from_fn(|| rx.try_dequeue().ok()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3]);
        // Queue fully reusable afterwards.
        tx.enqueue(42);
        assert_eq!(rx.dequeue(), Ok(42));
    }

    #[test]
    fn disconnect_detected() {
        let (mut tx, mut rx) = channel::<u32>(8);
        tx.enqueue(5);
        drop(tx);
        assert_eq!(rx.try_dequeue(), Ok(5));
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
        assert_eq!(rx.dequeue(), Err(Disconnected));
        assert_eq!(
            rx.dequeue_timeout(Duration::from_millis(1)),
            Err(TryDequeueError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_stream() {
        const ITEMS: u64 = 200_000;
        let (mut tx, mut rx) = channel::<u64>(1 << 10);
        let t = std::thread::spawn(move || {
            for i in 0..ITEMS {
                tx.enqueue(i);
            }
        });
        for i in 0..ITEMS {
            assert_eq!(rx.dequeue(), Ok(i));
        }
        t.join().unwrap();
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
    }

    #[test]
    fn enqueue_many_single_release_pass() {
        let (mut tx, mut rx) = channel::<u64>(128);
        assert_eq!(tx.enqueue_many(0..100), 100);
        let s = tx.stats();
        assert_eq!(s.enqueued, 100);
        assert_eq!(s.batch_enqueues, 1);
        assert_eq!(s.batch_items, 100);
        // Queue started empty and was never near full: the shadow head
        // bound was never exhausted, so the shared head was never read.
        assert_eq!(s.head_refreshes, 0);
        for i in 0..100 {
            assert_eq!(rx.try_dequeue(), Ok(i));
        }
    }

    #[test]
    fn dequeue_batch_mirrors_head_once() {
        let (mut tx, mut rx) = channel::<u64>(64);
        tx.enqueue_many(0..40);
        let mut buf = Vec::new();
        assert_eq!(rx.dequeue_batch(&mut buf, 64), 40);
        assert_eq!(buf, (0..40).collect::<Vec<_>>());
        let s = rx.stats();
        assert_eq!(s.batch_dequeues, 1);
        assert_eq!(s.batch_items, 40);
        // The SPSC head is private: no RMW at any batch size.
        assert_eq!(s.head_rmws, 0);
        // Empty queue: a batch harvest finds nothing and changes nothing.
        buf.clear();
        assert_eq!(rx.dequeue_batch(&mut buf, 8), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn batched_stream_cross_thread() {
        const ITEMS: u64 = 200_000;
        let (mut tx, mut rx) = channel::<u64>(1 << 8);
        let t = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < ITEMS {
                let hi = (next + 128).min(ITEMS);
                tx.enqueue_many(next..hi);
                next = hi;
            }
        });
        let mut buf = Vec::new();
        let mut expected = 0u64;
        while expected < ITEMS {
            if rx.dequeue_batch(&mut buf, 64) == 0 {
                std::hint::spin_loop();
                continue;
            }
            for v in buf.drain(..) {
                assert_eq!(v, expected);
                expected += 1;
            }
        }
        t.join().unwrap();
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
    }

    #[test]
    fn all_layouts_stream_correctly() {
        fn run<C: CellSlot<u64> + 'static, M: IndexMap>() {
            let (mut tx, mut rx) = channel_with::<u64, C, M>(64);
            let t = std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    tx.enqueue(i);
                }
            });
            for i in 0..20_000u64 {
                assert_eq!(rx.dequeue(), Ok(i));
            }
            t.join().unwrap();
        }
        run::<PaddedCell<u64>, LinearMap>();
        run::<PaddedCell<u64>, RotateMap>();
        run::<CompactCell<u64>, LinearMap>();
        run::<CompactCell<u64>, RotateMap>();
    }

    #[test]
    fn boxed_payloads_not_leaked() {
        // Box payloads exercise the non-trivial-drop path end to end.
        let (mut tx, mut rx) = channel::<Box<u64>>(16);
        for i in 0..8 {
            tx.enqueue(Box::new(i));
        }
        for i in 0..4 {
            assert_eq!(*rx.dequeue().unwrap(), i);
        }
        // Remaining 4 dropped with the queue.
    }
}
