//! # FFQ — a fast single-producer/multiple-consumer concurrent FIFO queue
//!
//! Rust implementation of *FFQ: A Fast Single-Producer/Multiple-Consumer
//! Concurrent FIFO Queue* (Arnautov, Fetzer, Trach, Felber — IPDPS 2017).
//!
//! FFQ is a bounded, array-based FIFO designed for throughput: items carry
//! monotonically increasing *ranks*, the rank-to-slot mapping is plain
//! modulo arithmetic, and slots that cannot be reused in order are *skipped*
//! via per-cell gap announcements rather than by shifting data. The paper's
//! headline variant gives the single producer a completely private tail —
//! enqueue performs **no atomic read-modify-write at all** and is wait-free
//! while the queue has space; consumers share one `fetch_add` head and are
//! lock-free whenever items are available.
//!
//! ## Variants
//!
//! | Module | Producers | Consumers | Enqueue progress | Dequeue progress |
//! |--------|-----------|-----------|------------------|------------------|
//! | [`spsc`] | 1 | 1 | wait-free¹ | wait-free¹ |
//! | [`spmc`] | 1 | n | wait-free¹ (Prop. 1) | lock-free² (Prop. 2) |
//! | [`mpmc`] | n | n | lock-free¹ | blocking³ |
//!
//! ¹ under the paper's sizing assumption that the queue never fills up;
//! ² given items are available; ³ a producer preempted mid-publish can stall
//! the consumer assigned that rank (§III-B).
//!
//! ## Layout tuning (§IV of the paper)
//!
//! Every variant is generic over a cell layout ([`cell::PaddedCell`] = one
//! cache line per cell, [`cell::CompactCell`] = packed) and an index mapping
//! ([`layout::LinearMap`] = plain modulo, [`layout::RotateMap`] = the
//! paper's address randomization). The four combinations are the four
//! configurations of the paper's Figure 2.
//!
//! ## Caller-provided memory (the [`raw`] module)
//!
//! Construction is split from allocation: the [`raw`] module exposes the
//! queue as a `#[repr(C)]` counter block plus a cell array placed wherever
//! the caller likes, with handle engines that run the full protocol over
//! such a view. The `channel()` constructors here are thin heap wrappers
//! over that layer; the `ffq-shm` crate builds the same queues in POSIX
//! shared memory, across process boundaries.
//!
//! ## Zero-copy variable-size payloads (the [`bytes`] module)
//!
//! Every flavor also comes in a bytes mode (`bytes_channel` constructors)
//! where each cell owns a cache-aligned slot buffer: producers reserve a
//! length and write payloads **in place** ([`WriteSlot`]), consumers read
//! them **borrowed** ([`PayloadRef`]) — one copy end to end, with oversize
//! payloads spilled (chained across cells or boxed) rather than truncated.
//!
//! ## Broadcast fan-out (the [`broadcast`] module)
//!
//! A pub-sub lane over the same memory layout: every subscriber observes
//! the full stream, the producer is wait-free and never blocks on slow
//! readers, and a lapped subscriber detects the loss (`Lagged`) and
//! resyncs instead of backpressuring. Cells become version-stamped seqlock
//! records; subscribers write nothing, so fan-out width costs the producer
//! nothing.
//!
//! ## Blocking and waiting
//!
//! The blocking operations (`dequeue`, `dequeue_timeout`, `enqueue` on a
//! full queue) wait adaptively: a short exponential spin, then yields, then
//! bounded parks on a per-queue futex word — so an idle consumer burns
//! essentially no CPU while an uncontended handoff never leaves the spin
//! fast path. The policy is tunable per handle via [`WaitConfig`] (use
//! [`WaitConfig::spin_only`] to recover pure busy-wait behavior for
//! latency-critical pinned threads).
//!
//! ## Example
//!
//! ```
//! use std::thread;
//!
//! // A 1024-slot submission queue: one producer, three consumers.
//! let (mut tx, rx) = ffq::spmc::channel::<u64>(1024);
//!
//! let workers: Vec<_> = (0..3)
//!     .map(|_| {
//!         let mut rx = rx.clone();
//!         thread::spawn(move || {
//!             let mut sum = 0u64;
//!             while let Ok(v) = rx.dequeue() {
//!                 sum += v;
//!             }
//!             sum
//!         })
//!     })
//!     .collect();
//! drop(rx);
//!
//! for i in 1..=100 {
//!     tx.enqueue(i);
//! }
//! drop(tx); // consumers observe disconnection once drained
//!
//! let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
//! assert_eq!(total, 5050);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod broadcast;
pub mod bytes;
pub mod cell;
pub mod error;
pub mod layout;
pub mod mpmc;
pub mod raw;
pub mod shard;
pub mod spmc;
pub mod spsc;
pub mod stats;
pub mod unbounded;

mod segment;
mod shared;

pub use bytes::{BytesConsumer, BytesProducer, PayloadRef, SpillMode, WriteSlot};
pub use error::{
    BroadcastRecvError, BroadcastTryRecvError, CapacityError, Disconnected, Full, ReserveError,
    TryDequeueError, TryReserveError,
};
pub use ffq_sync::WaitConfig;
pub use layout::{normalize_capacity, normalize_slot_bytes, DEFAULT_SLOT_BYTES, MAX_CAPACITY};
pub use raw::ShmSafe;
pub use stats::{ConsumerStats, ProducerStats, SegmentStats, ShardStats, SubscriberStats};

#[cfg(test)]
mod api_tests {
    //! Compile-time API contracts.

    fn assert_send<T: Send>() {}

    #[test]
    fn handles_are_send() {
        assert_send::<crate::spsc::Producer<u64>>();
        assert_send::<crate::spsc::Consumer<u64>>();
        assert_send::<crate::spmc::Producer<u64>>();
        assert_send::<crate::spmc::Consumer<u64>>();
        assert_send::<crate::mpmc::Producer<u64>>();
        assert_send::<crate::mpmc::Consumer<u64>>();
        assert_send::<crate::spmc::Producer<Box<u64>>>();
        assert_send::<crate::broadcast::Sender<u64>>();
        assert_send::<crate::broadcast::Subscriber<u64>>();
    }
}
