//! Broadcast (pub-sub) lane: every subscriber sees every item, slow
//! subscribers lose items instead of blocking the producer.
//!
//! The point-to-point lanes deliver each item to exactly one consumer and
//! apply backpressure when the ring fills. Market-data-style fan-out wants
//! the opposite contract on both counts: *all* subscribers observe the full
//! stream, and a subscriber that cannot keep up detects loss and resyncs
//! rather than slowing anyone down. This module provides that shape over
//! the same [`crate::raw`] memory layout — a [`QueueState`] counter block
//! plus a cell array — so it works in-heap here and over POSIX shared
//! memory in `ffq-shm`, unchanged.
//!
//! # Protocol: version-stamped seqlock cells
//!
//! The cell's `rank` word is repurposed as a per-slot **sequence stamp**.
//! For the item with rank `i` (stored in slot `i mod N`):
//!
//! * the writer stamps `2·i + 1` (odd: write in progress), issues a
//!   `Release` fence, writes the payload in place, then stamps `2·i + 2`
//!   (even: published) — the odd stamp is an `AcqRel` RMW so the payload
//!   stores cannot be hoisted above it, the fence release-orders the odd
//!   stamp *before* the relaxed payload chunks (a reader that catches any
//!   new chunk then synchronizes with the fence and must fail its stamp
//!   re-check — `loom_broadcast_seqlock_cell_rejects_torn_copy` finds the
//!   torn execution without it), and the even stamp is a `Release` store
//!   so the payload cannot sink below it;
//! * a reader at cursor `c` expects stamp `2·c + 2` exactly. Less means
//!   not yet published (`Empty`); more means the slot was reused for rank
//!   `c + kN` — the item is gone (`Lagged`). On a match it copies the
//!   payload out, re-reads the stamp (an `Acquire` fence between), and
//!   discards the copy as torn if the stamp moved.
//!
//! Stamps per slot are strictly monotonic (slot `s` only ever carries
//! ranks `≡ s mod N`, in increasing order), which is what makes the single
//! compare against the expected stamp sufficient — no separate head/tail
//! inspection is needed on the hot path, and readers write **nothing**, so
//! an idle or slow subscriber generates zero coherence traffic on the
//! producer's cache lines.
//!
//! Payload copies go through [`ffq_sync::read_racy`]/[`ffq_sync::write_racy`]
//! (relaxed per-word atomic chunks), so the deliberate read/write race is
//! benign to Miri and TSan, and a torn copy is held in `MaybeUninit` until
//! the stamp check proves it whole.
//!
//! # Lag and loss accounting
//!
//! The producer is wait-free and never inspects reader positions: it
//! overwrites the ring at its own pace and mirrors its tail for the
//! emptiness/closed checks. A lapped reader resyncs to
//! `max(tail − N, cursor + 1)` — the oldest rank that can still be intact —
//! and reports the skipped count as [`BroadcastTryRecvError::Lagged`].
//! Loss is therefore always *observed*, never silent, and bounded below by
//! the clamp even when the tail mirror read is stale.
//!
//! `T: Copy` is required: readers copy items out of cells that remain live
//! for other subscribers (nothing is ever consumed), and the writer
//! overwrites cells without any reader handshake, so payloads must be
//! plain data with no drop obligations.
//!
//! ```
//! let (mut tx, rx) = ffq::broadcast::channel::<u64>(8);
//! let mut a = rx.clone();
//! let mut b = rx;
//! tx.send(7);
//! assert_eq!(a.try_recv(), Ok(7));
//! assert_eq!(b.try_recv(), Ok(7)); // both subscribers see the item
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use ffq_sync::atomic::{fence, Ordering};
use ffq_sync::{WaitConfig, WaitRound, WaitStrategy};

use crate::cell::{CellSlot, PaddedCell};
use crate::error::{BroadcastRecvError, BroadcastTryRecvError};
use crate::layout::{normalize_capacity, IndexMap, LinearMap};
use crate::raw::RawQueue;
use crate::shared::Shared;
use crate::stats::SubscriberStats;

/// Stamp a writer publishes before overwriting rank `rank`'s slot.
#[inline(always)]
fn seq_writing(rank: i64) -> i64 {
    2 * rank + 1
}

/// Stamp that marks rank `rank` as published in its slot.
#[inline(always)]
fn seq_published(rank: i64) -> i64 {
    2 * rank + 2
}

/// The broadcast publish engine over caller-provided memory.
///
/// Exactly one producer may exist per broadcast queue (the stream has a
/// single, totally ordered history; the tail is private, as in the paper's
/// single-producer variants). [`send`](Self::send) is wait-free: it never
/// inspects subscriber positions and never blocks.
pub struct RawBroadcastProducer<T, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap>
where
    T: Copy + Send,
{
    queue: RawQueue<T, C, M>,
    /// Count of items published so far — the next rank to write. Private;
    /// mirrored into [`QueueState::tail`] after every publish.
    ///
    /// [`QueueState::tail`]: crate::raw::QueueState
    tail: i64,
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> RawBroadcastProducer<T, C, M> {
    /// Attaches the unique producer to `queue`, resuming from the mirrored
    /// tail (0 on a fresh queue).
    ///
    /// # Safety
    ///
    /// `queue` upholds [`RawQueue::from_raw`]'s contract for this handle's
    /// lifetime; no other producer handle (broadcast or point-to-point)
    /// exists on the same queue while this one does; every other handle on
    /// the queue is a broadcast subscriber. The caller is responsible for
    /// the `producers` count in the queue state.
    pub unsafe fn attach(queue: RawQueue<T, C, M>) -> Self {
        let tail = queue.state().tail().load(Ordering::Acquire);
        Self { queue, tail }
    }

    /// Publishes `value` to every subscriber. Wait-free; never fails.
    ///
    /// Subscribers more than one ring behind lose the overwritten items
    /// and observe the loss as `Lagged` — the producer neither knows nor
    /// cares.
    pub fn send(&mut self, value: T) {
        let rank = self.tail;
        debug_assert!(rank >= 0, "broadcast tail overflowed i64");
        let cell = self.queue.cell(rank);
        let words = cell.words();
        // Odd phase. The AcqRel RMW keeps the payload stores below from
        // being hoisted above the stamp — a reader that misses the odd
        // stamp must also have missed every payload store (see the module
        // docs and `DoubleWord::swap_lo_unpaired`).
        let prev = words.swap_lo_unpaired(seq_writing(rank), Ordering::AcqRel);
        debug_assert!(
            prev < seq_writing(rank),
            "slot stamp regressed: {prev} -> {}",
            seq_writing(rank)
        );
        // The swap's AcqRel release half orders only *prior* accesses; it
        // does not release-order the payload stores below. This fence
        // does: a reader whose relaxed payload copy observes any chunk of
        // the new payload synchronizes with it (fence-to-fence through
        // the relaxed chunk atomics), so its stamp re-read after its own
        // Acquire fence must see the odd stamp and discard the copy.
        // Without it a reader could copy new payload bytes yet validate
        // against the stale even stamp — a torn read the stamp protocol
        // exists to rule out (found by `loom_broadcast_seqlock_cell_*`).
        fence(Ordering::Release);
        // SAFETY: the unique producer owns every slot's write phase; racy
        // readers are benign (atomic chunked copy, stamp-validated).
        unsafe { ffq_sync::write_racy(cell.data() as *mut T, value) };
        // Even phase: Release orders the payload before the published stamp.
        words.store_lo_unpaired(seq_published(rank), Ordering::Release);
        self.tail = rank + 1;
        // Tail mirror drives the subscribers' Empty/Closed checks and park
        // predicates; ordered after the stamp so `tail > c` implies rank
        // `c`'s stamp (or a later one) is visible.
        self.queue
            .state()
            .tail()
            .store(self.tail, Ordering::Release);
        // Every parked subscriber is waiting for precisely this
        // publication (broadcast delivery has no rank ownership), so the
        // wake must reach all of them.
        self.queue.state().wake_consumers_all();
    }

    /// Publishes every item of `iter`; returns the count.
    pub fn send_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        let mut n = 0;
        for v in iter {
            self.send(v);
            n += 1;
        }
        n
    }

    /// The underlying view.
    #[inline(always)]
    pub fn queue(&self) -> &RawQueue<T, C, M> {
        &self.queue
    }

    /// Number of items published so far (the next rank to be written).
    #[inline(always)]
    pub fn tail_rank(&self) -> i64 {
        self.tail
    }

    /// Capacity of the ring — also the maximum number of most-recent items
    /// a lagging subscriber can still recover.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Number of live subscriber handles.
    pub fn subscribers(&self) -> usize {
        // Acquire per the QueueState handle-count rule.
        self.queue.state().consumers().load(Ordering::Acquire) as usize
    }
}

/// The broadcast subscribe engine over caller-provided memory.
///
/// Purely private state: a cursor into the stream plus statistics. Any
/// number of subscribers may attach to one queue; they never write to
/// shared memory (not even to claim items), so adding subscribers costs
/// the producer nothing.
pub struct RawBroadcastSubscriber<T, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap>
where
    T: Copy + Send,
{
    queue: RawQueue<T, C, M>,
    /// Rank of the next item this subscriber will observe.
    cursor: i64,
    wait: WaitConfig,
    stats: SubscriberStats,
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> RawBroadcastSubscriber<T, C, M> {
    /// Attaches a subscriber whose first item will be rank `cursor`.
    ///
    /// A cursor older than `tail − capacity` is legal — the first receive
    /// reports the backlog as `Lagged` and resyncs.
    ///
    /// # Safety
    ///
    /// `queue` upholds [`RawQueue::from_raw`]'s contract for this handle's
    /// lifetime and carries the broadcast protocol (its producer is a
    /// [`RawBroadcastProducer`]); `cursor >= 0`. The caller is responsible
    /// for the `consumers` count in the queue state.
    pub unsafe fn attach_at(queue: RawQueue<T, C, M>, cursor: i64) -> Self {
        debug_assert!(cursor >= 0);
        Self {
            queue,
            cursor,
            wait: WaitConfig::default(),
            stats: SubscriberStats::default(),
        }
    }

    /// Attaches a subscriber at the start of the stream (rank 0). Useful
    /// for tests and short-lived streams; long-running producers will have
    /// overwritten early ranks, which the first receive reports as lag.
    ///
    /// # Safety
    /// As [`attach_at`](Self::attach_at).
    pub unsafe fn attach_from_origin(queue: RawQueue<T, C, M>) -> Self {
        // SAFETY: forwarded contract.
        unsafe { Self::attach_at(queue, 0) }
    }

    /// Attaches a subscriber at the live edge of the stream: it will only
    /// observe items published after this call.
    ///
    /// # Safety
    /// As [`attach_at`](Self::attach_at).
    pub unsafe fn attach_latest(queue: RawQueue<T, C, M>) -> Self {
        let cursor = queue.state().tail().load(Ordering::Acquire);
        // SAFETY: forwarded contract.
        unsafe { Self::attach_at(queue, cursor) }
    }

    /// Attempts to receive the next item without blocking.
    pub fn try_recv(&mut self) -> Result<T, BroadcastTryRecvError> {
        let cursor = self.cursor;
        let cell = self.queue.cell(cursor);
        let words = cell.words();
        let expected = seq_published(cursor);
        let s1 = words.load_lo(Ordering::Acquire);
        if s1 < expected {
            // Not published yet (or the writer is mid-write of exactly this
            // rank — same answer). Distinguish Empty from Closed: the
            // producer-count load is Acquire, so observing 0 makes the
            // producer's final tail mirror visible and the tail check
            // below is authoritative.
            self.stats.not_ready += 1;
            if self.queue.state().producers().load(Ordering::Acquire) == 0
                && self.queue.state().tail().load(Ordering::Acquire) <= cursor
            {
                return Err(BroadcastTryRecvError::Closed);
            }
            return Err(BroadcastTryRecvError::Empty);
        }
        if s1 == expected {
            // Copy the payload out, then prove no writer interleaved. The
            // copy stays `MaybeUninit` until then: a torn copy need not be
            // a valid `T`.
            // SAFETY: stamp == published(cursor) means the producer fully
            // initialized this slot at least once; concurrent overwrites
            // are benign per `read_racy`.
            let copy = unsafe { ffq_sync::read_racy(cell.data() as *const T) };
            // Orders the payload loads above before the stamp re-read: if
            // an overwrite raced the copy, the re-read must see its stamp.
            fence(Ordering::Acquire);
            let s2 = words.load_lo(Ordering::Relaxed);
            if s2 == expected {
                self.cursor = cursor + 1;
                self.stats.received += 1;
                // SAFETY: stamp unchanged across the copy — no writer
                // touched the slot, the copy is the published value.
                return Ok(unsafe { copy.assume_init() });
            }
            self.stats.torn_retries += 1;
        }
        // The slot was reused for a later rank (observed up front as
        // `s1 > expected`, or mid-copy as `s2 != s1`): rank `cursor` is
        // overwritten and gone. Resync just behind the writer. The tail
        // mirror may lag the stamp we just saw, but the `cursor + 1` clamp
        // keeps the resync monotonic and the loss count >= 1; ranks the
        // clamp under-skips are simply reported lagged on the next call.
        let n = self.queue.capacity() as i64;
        let tail = self.queue.state().tail().load(Ordering::Acquire);
        let new_cursor = (tail - n).max(cursor + 1);
        let lost = (new_cursor - cursor) as u64;
        self.cursor = new_cursor;
        self.stats.lagged_items += lost;
        self.stats.lag_events += 1;
        Err(BroadcastTryRecvError::Lagged(lost))
    }

    /// Receives the next item, waiting — spinning, then parking on the
    /// not-empty eventcount — while nothing new is published.
    ///
    /// Lag is returned as an error, not waited out: the caller decides
    /// whether to keep consuming after loss (the next `recv` resumes at
    /// the oldest retained item).
    pub fn recv(&mut self) -> Result<T, BroadcastRecvError> {
        let mut strat = WaitStrategy::new(self.wait);
        let q = self.queue;
        let res = loop {
            match self.try_recv() {
                Ok(v) => break Ok(v),
                Err(BroadcastTryRecvError::Lagged(n)) => break Err(BroadcastRecvError::Lagged(n)),
                Err(BroadcastTryRecvError::Closed) => break Err(BroadcastRecvError::Closed),
                Err(BroadcastTryRecvError::Empty) => {
                    let cursor = self.cursor;
                    let state = q.state();
                    // Ready = something new was published past our cursor,
                    // or the producer is gone. Fresh Acquire loads on
                    // purpose — this predicate runs between park rounds.
                    strat.wait_round(state.not_empty(), state.wait_is_shared(), None, &mut || {
                        state.tail().load(Ordering::Acquire) > cursor
                            || state.producers().load(Ordering::Acquire) == 0
                    });
                }
            }
        };
        self.stats.parks += strat.parks();
        res
    }

    /// Receives the next item, giving up after `timeout` (returning
    /// `Empty`) if nothing new is published by then.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<T, BroadcastTryRecvError> {
        // Deadline materializes on the first empty round: a hit must not
        // pay a clock read.
        let mut deadline = None;
        let mut strat = WaitStrategy::new(self.wait);
        let q = self.queue;
        let res = loop {
            match self.try_recv() {
                Ok(v) => break Ok(v),
                e @ Err(BroadcastTryRecvError::Lagged(_) | BroadcastTryRecvError::Closed) => {
                    break e
                }
                e @ Err(BroadcastTryRecvError::Empty) => {
                    let d = *deadline.get_or_insert_with(|| Instant::now() + timeout);
                    let cursor = self.cursor;
                    let state = q.state();
                    let round = strat.wait_round(
                        state.not_empty(),
                        state.wait_is_shared(),
                        Some(d),
                        &mut || {
                            state.tail().load(Ordering::Acquire) > cursor
                                || state.producers().load(Ordering::Acquire) == 0
                        },
                    );
                    if round == WaitRound::Expired {
                        break e;
                    }
                }
            }
        };
        self.stats.parks += strat.parks();
        res
    }

    /// The underlying view.
    #[inline(always)]
    pub fn queue(&self) -> &RawQueue<T, C, M> {
        &self.queue
    }

    /// Rank of the next item this subscriber will observe.
    #[inline(always)]
    pub fn cursor_rank(&self) -> i64 {
        self.cursor
    }

    /// How many published items this subscriber has not yet observed
    /// (approximate — the producer keeps moving). Values above the
    /// capacity mean the next receive will report lag.
    pub fn len_behind(&self) -> usize {
        let tail = self.queue.state().tail().load(Ordering::Acquire);
        usize::try_from((tail - self.cursor).max(0)).unwrap_or(0)
    }

    /// Replaces the waiting profile used by the blocking receive paths
    /// (default: [`WaitConfig::adaptive`]). Per-handle.
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.wait = cfg;
    }

    /// This handle's waiting profile.
    pub fn wait_config(&self) -> WaitConfig {
        self.wait
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Snapshot of this subscriber's counters.
    pub fn stats(&self) -> SubscriberStats {
        self.stats
    }
}

/// Creates a heap-backed broadcast channel with at least the given capacity
/// (rounded up to a power of two).
///
/// Returns the unique sender and one subscriber positioned at the start of
/// the stream; clone the subscriber for more (clones inherit the source's
/// position) or call [`Subscriber::resubscribe`] to join at the live edge.
///
/// # Panics
/// If `capacity` is 0 or exceeds [`crate::layout::MAX_CAPACITY`].
pub fn channel<T: Copy + Send>(capacity: usize) -> (Sender<T>, Subscriber<T>) {
    channel_with::<T, PaddedCell<T>, LinearMap>(capacity)
}

/// Creates a broadcast channel with explicit cell layout `C` and index
/// mapping `M` (see [`crate::cell`] and [`crate::layout`]).
///
/// # Panics
/// If `capacity` is 0 or exceeds [`crate::layout::MAX_CAPACITY`].
pub fn channel_with<T: Copy + Send, C: CellSlot<T>, M: IndexMap>(
    capacity: usize,
) -> (Sender<T, C, M>, Subscriber<T, C, M>) {
    let cap_log2 =
        normalize_capacity(capacity).unwrap_or_else(|e| panic!("ffq::broadcast::channel: {e}"));
    let shared = Arc::new(Shared::<T, C, M>::with_log2(cap_log2, 1));
    let raw = shared.raw();
    // SAFETY: the Arc in each handle keeps the allocation alive and pinned;
    // exactly one producer exists, and the producer/consumer counts were
    // pre-set by `with_log2(_, 1)` (one producer, one consumer).
    let tx = Sender {
        raw: unsafe { RawBroadcastProducer::attach(raw) },
        _shared: Arc::clone(&shared),
    };
    let rx = Subscriber {
        raw: unsafe { RawBroadcastSubscriber::attach_from_origin(raw) },
        shared,
    };
    (tx, rx)
}

/// The unique sending side of a broadcast channel.
///
/// Not `Clone` and takes `&mut self`: the stream has one totally ordered
/// history written by one thread (same single-producer discipline as
/// [`crate::spmc`]).
pub struct Sender<T: Copy + Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawBroadcastProducer<T, C, M>,
    /// Keeps the queue allocation alive (the raw view points into it).
    _shared: Arc<Shared<T, C, M>>,
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Sender<T, C, M> {
    /// Publishes `value` to every subscriber. Wait-free; never blocks and
    /// never fails — subscribers that cannot keep up observe `Lagged`.
    pub fn send(&mut self, value: T) {
        self.raw.send(value);
    }

    /// Publishes every item of `iter`; returns the count.
    pub fn send_many<I: IntoIterator<Item = T>>(&mut self, iter: I) -> usize {
        self.raw.send_many(iter)
    }

    /// Number of items published so far.
    pub fn published(&self) -> u64 {
        self.raw.tail_rank() as u64
    }

    /// Capacity of the ring — the retention window lagging subscribers can
    /// still recover from.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Number of live subscriber handles.
    pub fn subscribers(&self) -> usize {
        self.raw.subscribers()
    }
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Drop for Sender<T, C, M> {
    fn drop(&mut self) {
        // SeqCst per the QueueState handle-count rule (see
        // spmc::Producer::drop): the Release half orders the final
        // publishes before any subscriber observes the count at zero.
        let state = self.raw.queue().state();
        state.producers().fetch_sub(1, Ordering::SeqCst);
        // Parked subscribers must observe the closure promptly.
        state.wake_all();
    }
}

/// A subscribing handle of a broadcast channel. Clone it to add
/// subscribers; each clone advances independently.
pub struct Subscriber<T: Copy + Send, C: CellSlot<T> = PaddedCell<T>, M: IndexMap = LinearMap> {
    raw: RawBroadcastSubscriber<T, C, M>,
    /// Keeps the queue allocation alive (the raw view points into it).
    shared: Arc<Shared<T, C, M>>,
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Subscriber<T, C, M> {
    /// Attempts to receive the next item without blocking; see
    /// [`RawBroadcastSubscriber::try_recv`].
    pub fn try_recv(&mut self) -> Result<T, BroadcastTryRecvError> {
        self.raw.try_recv()
    }

    /// Receives the next item, waiting while nothing new is published;
    /// see [`RawBroadcastSubscriber::recv`].
    pub fn recv(&mut self) -> Result<T, BroadcastRecvError> {
        self.raw.recv()
    }

    /// Receives the next item, giving up (with `Empty`) after `timeout`.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<T, BroadcastTryRecvError> {
        self.raw.recv_timeout(timeout)
    }

    /// A new subscriber positioned at the **live edge** of the stream: it
    /// observes only items published after this call (a plain `clone()`
    /// inherits this handle's position instead).
    pub fn resubscribe(&self) -> Self {
        self.shared
            .raw()
            .state()
            .consumers()
            .fetch_add(1, Ordering::Relaxed);
        Self {
            // SAFETY: same queue, kept alive by the cloned Arc; broadcast
            // subscribers may attach at any time.
            raw: unsafe { RawBroadcastSubscriber::attach_latest(self.shared.raw()) },
            shared: Arc::clone(&self.shared),
        }
    }

    /// Rank of the next item this subscriber will observe.
    pub fn cursor_rank(&self) -> i64 {
        self.raw.cursor_rank()
    }

    /// How many published items this subscriber has not yet observed
    /// (approximate).
    pub fn len_behind(&self) -> usize {
        self.raw.len_behind()
    }

    /// Replaces the waiting profile used by blocking receives.
    pub fn set_wait_config(&mut self, cfg: WaitConfig) {
        self.raw.set_wait_config(cfg);
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.raw.capacity()
    }

    /// Snapshot of this subscriber's counters.
    pub fn stats(&self) -> SubscriberStats {
        self.raw.stats()
    }
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Clone for Subscriber<T, C, M> {
    fn clone(&self) -> Self {
        self.shared
            .raw()
            .state()
            .consumers()
            .fetch_add(1, Ordering::Relaxed);
        Self {
            // SAFETY: same queue, kept alive by the cloned Arc.
            raw: unsafe {
                RawBroadcastSubscriber::attach_at(self.shared.raw(), self.raw.cursor_rank())
            },
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Copy + Send, C: CellSlot<T>, M: IndexMap> Drop for Subscriber<T, C, M> {
    fn drop(&mut self) {
        // Subscribers own nothing in shared memory — no recovery needed,
        // just the handle count (SeqCst per the QueueState rule).
        self.raw
            .queue()
            .state()
            .consumers()
            .fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CompactCell;
    use crate::layout::RotateMap;
    use crate::raw::QueueState;

    #[test]
    fn every_subscriber_sees_every_item() {
        let (mut tx, rx) = channel::<u64>(16);
        let mut subs: Vec<_> = (0..4).map(|_| rx.clone()).collect();
        drop(rx);
        assert_eq!(tx.subscribers(), 4);
        for i in 0..10 {
            tx.send(i);
        }
        for rx in &mut subs {
            for i in 0..10 {
                assert_eq!(rx.try_recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(BroadcastTryRecvError::Empty));
        }
    }

    #[test]
    fn wraparound_delivers_in_order() {
        let (mut tx, mut rx) = channel::<u64>(4);
        for i in 0..1000 {
            tx.send(i);
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.stats().received, 1000);
        assert_eq!(rx.stats().lagged_items, 0);
    }

    #[test]
    fn slow_subscriber_lags_and_resyncs() {
        let (mut tx, mut rx) = channel::<u64>(4);
        // 10 items through a 4-slot ring with no reads: ranks 0..6 are
        // overwritten.
        for i in 0..10 {
            tx.send(i);
        }
        match rx.try_recv() {
            Err(BroadcastTryRecvError::Lagged(n)) => assert_eq!(n, 6),
            other => panic!("expected Lagged(6), got {other:?}"),
        }
        // Resynced to the oldest retained item; the rest arrive in order.
        for i in 6..10 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(BroadcastTryRecvError::Empty));
        let s = rx.stats();
        assert_eq!((s.received, s.lagged_items, s.lag_events), (4, 6, 1));
        // The loss-accounting invariant the conformance suite rests on.
        assert_eq!(s.received + s.lagged_items, tx.published());
    }

    #[test]
    fn closed_after_sender_drop_and_drain() {
        let (mut tx, mut rx) = channel::<u64>(8);
        tx.send(1);
        tx.send(2);
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(BroadcastTryRecvError::Closed));
        assert_eq!(rx.recv(), Err(BroadcastRecvError::Closed));
    }

    #[test]
    fn resubscribe_joins_at_live_edge() {
        let (mut tx, mut rx) = channel::<u64>(8);
        tx.send(1);
        tx.send(2);
        let mut live = rx.resubscribe();
        assert_eq!(live.try_recv(), Err(BroadcastTryRecvError::Empty));
        tx.send(3);
        assert_eq!(live.try_recv(), Ok(3));
        // The original still sees the full history.
        assert_eq!(rx.try_recv(), Ok(1));
        // A clone inherits its source's position, not the live edge.
        let mut copy = rx.clone();
        assert_eq!(copy.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(2));
    }

    #[test]
    // The timed-out wait parks on a futex, which Miri cannot run; the CI
    // Miri step covers the non-parking broadcast:: tests.
    #[cfg_attr(miri, ignore)]
    fn recv_timeout_expires_then_recovers() {
        let (mut tx, mut rx) = channel::<u64>(8);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(BroadcastTryRecvError::Empty)
        );
        tx.send(7);
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(7));
    }

    #[test]
    fn all_layout_combinations_work() {
        fn smoke<C: CellSlot<u64>, M: IndexMap>() {
            let (mut tx, mut rx) = channel_with::<u64, C, M>(8);
            let mut got = Vec::new();
            for i in 0..50u64 {
                tx.send(i);
                loop {
                    match rx.try_recv() {
                        Ok(v) => got.push(v),
                        Err(BroadcastTryRecvError::Empty) => break,
                        Err(e) => panic!("unexpected {e:?}"),
                    }
                }
            }
            assert_eq!(got, (0..50).collect::<Vec<_>>());
        }
        smoke::<PaddedCell<u64>, LinearMap>();
        smoke::<PaddedCell<u64>, RotateMap>();
        smoke::<CompactCell<u64>, LinearMap>();
        smoke::<CompactCell<u64>, RotateMap>();
    }

    #[test]
    fn raw_engines_over_local_memory() {
        // Caller-provided memory end to end, as ffq-shm will use it.
        let state = QueueState::new(3, 1, 1);
        let cells: Vec<PaddedCell<u64>> = (0..8).map(|_| CellSlot::<u64>::empty()).collect();
        // SAFETY: state/cells outlive the handles; one producer, broadcast
        // subscribers only.
        let q = unsafe {
            RawQueue::<u64, PaddedCell<u64>, LinearMap>::from_raw(&state, cells.as_ptr())
        };
        let mut tx = unsafe { RawBroadcastProducer::attach(q) };
        let mut a = unsafe { RawBroadcastSubscriber::attach_from_origin(q) };
        let mut b = unsafe { RawBroadcastSubscriber::attach_from_origin(q) };
        for i in 0..100u64 {
            tx.send(i);
            assert_eq!(a.try_recv(), Ok(i));
            assert_eq!(b.try_recv(), Ok(i));
        }
        // A late attach at the live edge sees only what follows.
        let mut late = unsafe { RawBroadcastSubscriber::attach_latest(q) };
        assert_eq!(late.try_recv(), Err(BroadcastTryRecvError::Empty));
        tx.send(100);
        assert_eq!(late.try_recv(), Ok(100));
    }

    /// Torn-read injection through the seqlock seam: perform the reader's
    /// steps by hand with a producer overwrite spliced between the payload
    /// copy and the validating stamp re-read. The validation must discard
    /// the copy, and the real `try_recv` must then report the loss.
    #[test]
    fn torn_read_is_discarded_by_the_stamp_check() {
        let state = QueueState::new(1, 1, 1);
        let cells: Vec<PaddedCell<[u64; 4]>> = (0..2).map(|_| CellSlot::empty()).collect();
        let q = unsafe {
            RawQueue::<[u64; 4], PaddedCell<[u64; 4]>, LinearMap>::from_raw(&state, cells.as_ptr())
        };
        let mut tx = unsafe { RawBroadcastProducer::attach(q) };
        let mut rx = unsafe { RawBroadcastSubscriber::attach_from_origin(q) };
        tx.send([1; 4]);
        tx.send([2; 4]);

        // Reader protocol by hand at cursor 0, expecting stamp 2.
        let cell = q.cell(0);
        let s1 = cell.words().load_lo(Ordering::Acquire);
        assert_eq!(s1, seq_published(0));
        let copy = unsafe { ffq_sync::read_racy(cell.data() as *const [u64; 4]) };
        // ... the producer laps the ring before the reader validates:
        tx.send([3; 4]); // rank 2 -> slot 0, stamps 5 then 6
        fence(Ordering::Acquire);
        let s2 = cell.words().load_lo(Ordering::Relaxed);
        assert_ne!(s1, s2, "the overwrite must be visible to the re-read");
        let _ = copy; // torn copy discarded, never assume_init'd

        // The real path now observes the same overwrite as lag.
        match rx.try_recv() {
            Err(BroadcastTryRecvError::Lagged(n)) => assert!(n >= 1),
            other => panic!("expected Lagged, got {other:?}"),
        }
        // And the stream continues with intact items only.
        let v = rx.try_recv().unwrap();
        assert!(v == [2; 4] || v == [3; 4]);
    }

    /// Injecting a mid-write (odd) stamp must read as Empty — a write in
    /// progress at the cursor is indistinguishable from not-yet-published
    /// and must never be surfaced as data or loss.
    #[test]
    fn odd_stamp_reads_as_empty() {
        let state = QueueState::new(2, 1, 1);
        let cells: Vec<PaddedCell<u64>> = (0..4).map(|_| CellSlot::<u64>::empty()).collect();
        let q = unsafe {
            RawQueue::<u64, PaddedCell<u64>, LinearMap>::from_raw(&state, cells.as_ptr())
        };
        let mut rx = unsafe { RawBroadcastSubscriber::attach_from_origin(q) };
        // Writer mid-write of rank 0: odd stamp, payload indeterminate.
        q.cell(0)
            .words()
            .swap_lo_unpaired(seq_writing(0), Ordering::AcqRel);
        assert_eq!(rx.try_recv(), Err(BroadcastTryRecvError::Empty));
        // Completing the write publishes normally.
        unsafe { ffq_sync::write_racy(q.cell(0).data() as *mut u64, 42) };
        q.cell(0)
            .words()
            .store_lo_unpaired(seq_published(0), Ordering::Release);
        state.tail().store(1, Ordering::Release);
        assert_eq!(rx.try_recv(), Ok(42));
    }

    #[test]
    fn cross_thread_fanout_no_tearing_no_reordering() {
        // A fast producer laps slow subscribers at a tiny capacity; every
        // received value must be internally consistent (all words equal)
        // and strictly increasing per subscriber, and received + lagged
        // must account for the full stream.
        const ITEMS: u64 = if cfg!(miri) { 200 } else { 50_000 };
        let (mut tx, rx) = channel::<[u64; 4]>(4);
        let subs: Vec<_> = (0..3).map(|_| rx.clone()).collect();
        drop(rx);
        let producer = std::thread::spawn(move || {
            for i in 1..=ITEMS {
                tx.send([i; 4]);
            }
        });
        let handles: Vec<_> = subs
            .into_iter()
            .map(|mut rx| {
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut received = 0u64;
                    let mut lagged = 0u64;
                    loop {
                        match rx.recv() {
                            Ok(v) => {
                                assert!(
                                    v.windows(2).all(|w| w[0] == w[1]),
                                    "torn payload surfaced: {v:?}"
                                );
                                assert!(v[0] > last, "reordered: {} after {last}", v[0]);
                                last = v[0];
                                received += 1;
                            }
                            Err(BroadcastRecvError::Lagged(n)) => lagged += n,
                            Err(BroadcastRecvError::Closed) => break,
                        }
                    }
                    (received, lagged)
                })
            })
            .collect();
        producer.join().unwrap();
        for h in handles {
            let (received, lagged) = h.join().unwrap();
            assert_eq!(received + lagged, ITEMS, "stream not fully accounted");
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = channel::<u32>(100);
        assert_eq!(tx.capacity(), 128);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = channel::<u32>(0);
    }

    #[test]
    fn subscriber_count_tracks_handles() {
        let (tx, rx) = channel::<u32>(8);
        assert_eq!(tx.subscribers(), 1);
        let rx2 = rx.clone();
        let rx3 = rx2.resubscribe();
        assert_eq!(tx.subscribers(), 3);
        drop(rx);
        drop(rx2);
        drop(rx3);
        assert_eq!(tx.subscribers(), 0);
    }
}
