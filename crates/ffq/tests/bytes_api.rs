//! Round-trip property tests for the zero-copy bytes lane: random payload
//! sizes (inline, chain-spill, heap-spill, zero-length) through every
//! flavor must come out byte-identical and in order, under both the
//! borrowed read path and the `send_bytes` copy-in convenience.

use proptest::prelude::*;

use ffq::bytes::{BytesConsumer, BytesProducer};
use ffq::TryDequeueError;

/// Deterministic payload: content derived from (index, length) so a
/// misdelivered or torn payload cannot accidentally verify.
fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (i as u8) ^ (j as u8).wrapping_mul(167).wrapping_add(13))
        .collect()
}

/// Payload lengths that exercise every descriptor kind on a
/// slot_bytes = 64 queue: zero, sub-slot, exact slot, chain/heap spill.
fn arb_lens() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(
        prop_oneof![
            Just(0usize),
            1usize..64,
            Just(64usize),
            65usize..4000, // spill sizes; clamped further per flavor
        ],
        1..200,
    )
}

proptest! {
    /// SPSC with chain spill: every length round-trips byte-identical, in
    /// FIFO order, interleaved with the consumer running behind.
    #[test]
    fn spsc_random_sizes_round_trip(lens in arb_lens()) {
        let (mut tx, mut rx) = ffq::spsc::bytes_channel(64, 64).unwrap();
        // capacity 64 → chains up to 32 cells → 2048 bytes.
        let lens: Vec<usize> = lens.into_iter().map(|l| l.min(2048)).collect();
        let t = std::thread::spawn(move || {
            for (i, &len) in lens.iter().enumerate() {
                tx.send_bytes(&payload(i, len)).unwrap();
            }
            lens
        });
        let mut i = 0usize;
        while let Ok(got) = rx.recv() {
            // Length is recoverable from the view itself.
            let want = payload(i, got.len());
            prop_assert_eq!(&*got, &want[..], "payload {} corrupted", i);
            i += 1;
        }
        let lens = t.join().unwrap();
        prop_assert_eq!(i, lens.len());
    }

    /// SPMC with heap spill: two consumers, every payload delivered exactly
    /// once and byte-identical (order across consumers is not total, so
    /// payloads carry their index).
    #[test]
    fn spmc_random_sizes_delivered_exactly_once(lens in arb_lens()) {
        let (mut tx, rx) = ffq::spmc::bytes_channel(64, 64).unwrap();
        let n = lens.len();
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let mut rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(p) = rx.recv() {
                        got.push(p.to_vec());
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for (i, &len) in lens.iter().enumerate() {
            // First 8 bytes carry the index (padded payloads only).
            let mut msg = payload(i, len.max(8));
            msg[..8].copy_from_slice(&(i as u64).to_le_bytes());
            tx.send_bytes(&msg).unwrap();
        }
        drop(tx);
        let mut seen = vec![false; n];
        for w in workers {
            for msg in w.join().unwrap() {
                let mut idx = [0u8; 8];
                idx.copy_from_slice(&msg[..8]);
                let i = u64::from_le_bytes(idx) as usize;
                prop_assert!(!seen[i], "payload {} delivered twice", i);
                seen[i] = true;
                let mut want = payload(i, msg.len());
                want[..8].copy_from_slice(&(i as u64).to_le_bytes());
                prop_assert_eq!(msg, want, "payload {} corrupted", i);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "payloads lost");
    }

    /// MPMC with heap spill: two producers × two consumers, exactly-once
    /// byte-identical delivery.
    #[test]
    fn mpmc_random_sizes_fan_in_out(lens in arb_lens()) {
        let (tx, rx) = ffq::mpmc::bytes_channel(64, 64).unwrap();
        let n = lens.len();
        let producers: Vec<_> = (0..2usize)
            .map(|p| {
                let mut tx = tx.clone();
                let lens = lens.clone();
                std::thread::spawn(move || {
                    for (i, &len) in lens.iter().enumerate().skip(p).step_by(2) {
                        let mut msg = payload(i, len.max(8));
                        msg[..8].copy_from_slice(&(i as u64).to_le_bytes());
                        tx.send_bytes(&msg).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let mut rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(p) = rx.recv() {
                        got.push(p.to_vec());
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut seen = vec![false; n];
        for c in consumers {
            for msg in c.join().unwrap() {
                let mut idx = [0u8; 8];
                idx.copy_from_slice(&msg[..8]);
                let i = u64::from_le_bytes(idx) as usize;
                prop_assert!(!seen[i], "payload {} delivered twice", i);
                seen[i] = true;
                let mut want = payload(i, msg.len());
                want[..8].copy_from_slice(&(i as u64).to_le_bytes());
                prop_assert_eq!(msg, want, "payload {} corrupted", i);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "payloads lost");
    }

    /// Reservations that are dropped uncommitted are invisible: the
    /// committed subsequence arrives intact regardless of where aborts are
    /// interleaved (SPSC chain-spill flavor — aborts of multi-cell runs
    /// must not corrupt rank accounting).
    #[test]
    fn spsc_aborts_are_invisible(
        plan in proptest::collection::vec((any::<bool>(), 0usize..300), 1..100)
    ) {
        let (mut tx, mut rx) = ffq::spsc::bytes_channel(32, 64).unwrap();
        let t = std::thread::spawn(move || {
            let mut committed = 0usize;
            for &(commit, len) in &plan {
                if commit {
                    tx.send_bytes(&payload(committed, len)).unwrap();
                    committed += 1;
                } else {
                    let slot = tx.reserve(len).unwrap();
                    drop(slot); // uncommitted → aborted
                }
            }
            committed
        });
        let mut i = 0usize;
        while let Ok(got) = rx.recv() {
            let want = payload(i, got.len());
            prop_assert_eq!(&*got, &want[..], "payload {} corrupted", i);
            i += 1;
        }
        prop_assert_eq!(i, t.join().unwrap());
    }
}

#[test]
fn too_large_is_not_truncation() {
    // The refusal path must reject outright — a truncated payload would be
    // silent corruption.
    let (mut tx, mut rx) = ffq::spsc::bytes_channel(8, 64).unwrap();
    let max = tx.max_payload();
    assert!(tx.try_reserve(max + 1).is_err());
    // The failed reserve consumed nothing: a max-size payload still fits.
    let msg = payload(0, max);
    tx.send_bytes(&msg).unwrap();
    let got = rx.recv().unwrap();
    assert_eq!(got.len(), max);
    assert_eq!(&*got, &msg[..]);
}

#[test]
fn try_recv_does_not_block_on_empty() {
    let (_tx, mut rx) = ffq::mpmc::bytes_channel(8, 64).unwrap();
    assert!(matches!(rx.try_recv(), Err(TryDequeueError::Empty)));
}

#[test]
fn slow_consumer_holding_refs_degrades_not_corrupts() {
    // A consumer sitting on PayloadRefs keeps cells busy; the producer
    // gap-skips around them and everything already published drains
    // intact once the refs drop.
    let (mut tx, mut rx) = ffq::spmc::bytes_channel(8, 64).unwrap();
    for i in 0..4 {
        tx.send_bytes(&payload(i, 32)).unwrap();
    }
    // Hold one claim across a producer burst that wraps the ring.
    let held = rx.try_recv().unwrap();
    assert_eq!(&*held, &payload(0, 32)[..]);
    let mut sent = 4usize;
    for _ in 0..32 {
        // Err = ring wrapped onto busy/held cells — expected.
        if let Ok(mut slot) = tx.try_reserve(16) {
            let msg = payload(sent, 16);
            slot.copy_from_slice(&msg);
            slot.commit();
            sent += 1;
        }
    }
    drop(held);
    let mut received = 1usize;
    while let Ok(p) = rx.try_recv() {
        assert!(!p.is_empty());
        received += 1;
    }
    assert_eq!(received, sent);
}
