//! Tier-2 oversubscription stress: far more waiter threads than cores.
//!
//! The adaptive wait path replaces busy-spinning with bounded futex parks,
//! which is exactly where lost-wakeup bugs live: a consumer that parks the
//! instant before the producer publishes must still be woken (or wake
//! itself via the bounded park) and observe the item. Running 4x more
//! consumer threads than cores maximizes the park rate and the adverse
//! interleavings; every test asserts complete, loss-free delivery.

use std::time::{Duration, Instant};

/// 4x the machine's cores, floor 8 so the stress exists even on a 1-2 core
/// CI box.
fn oversubscribed_threads() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (4 * cores).max(8)
}

#[test]
fn spmc_oversubscribed_consumers_lose_nothing() {
    const ITEMS: u64 = 100_000;
    let consumers = oversubscribed_threads();
    let (mut tx, rx) = ffq::spmc::channel::<u64>(256);
    let handles: Vec<_> = (0..consumers)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.dequeue() {
                    got.push(v);
                }
                (got, rx.stats().parks)
            })
        })
        .collect();
    drop(rx);
    for i in 0..ITEMS {
        tx.enqueue(i);
        if i == ITEMS / 2 {
            // Stall mid-stream: starved consumers exhaust their spin and
            // yield budgets and must reach the park phase, so the rest of
            // the stream exercises the wake path for real.
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    drop(tx); // parked consumers must observe the disconnect and exit
    let mut all = Vec::new();
    let mut parks = 0u64;
    for h in handles {
        let (got, p) = h.join().unwrap();
        all.extend(got);
        parks += p;
    }
    all.sort_unstable();
    assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
    // With 4x oversubscription most consumers spend most of the run
    // starved; the adaptive strategy must actually have parked.
    assert!(parks > 0, "no consumer ever parked under oversubscription");
}

#[test]
fn mpmc_oversubscribed_both_sides_lose_nothing() {
    const PER_PRODUCER: u64 = 20_000;
    let threads = oversubscribed_threads();
    let producers = threads / 2;
    let consumers = threads - producers;
    let (tx, rx) = ffq::mpmc::channel::<u64>(128);
    let prod_handles: Vec<_> = (0..producers)
        .map(|p| {
            let mut tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    tx.enqueue(p as u64 * PER_PRODUCER + i);
                }
            })
        })
        .collect();
    drop(tx);
    let cons_handles: Vec<_> = (0..consumers)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.dequeue() {
                    got.push(v);
                }
                got
            })
        })
        .collect();
    drop(rx);
    for h in prod_handles {
        h.join().unwrap();
    }
    let mut all: Vec<u64> = cons_handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort_unstable();
    let expected: Vec<u64> = (0..producers as u64 * PER_PRODUCER).collect();
    assert_eq!(all, expected);
}

#[test]
fn spsc_blocking_both_sides_over_tiny_queue() {
    // Capacity 4 forces the producer to park on full and the consumer to
    // park on empty, repeatedly, in the same run.
    const ITEMS: u64 = 50_000;
    let (mut tx, mut rx) = ffq::spsc::channel::<u64>(4);
    let t = std::thread::spawn(move || {
        for i in 0..ITEMS {
            tx.enqueue(i);
        }
        tx.stats().parks
    });
    for i in 0..ITEMS {
        assert_eq!(rx.dequeue(), Ok(i));
    }
    t.join().unwrap();
}

#[test]
fn full_queue_producer_parks_then_resumes() {
    // The producer fills the queue and must block; a deliberately slow
    // consumer lets it park (the spin/yield phases last well under the
    // consumer's sleep), then frees cells. Everything still arrives in
    // order.
    let (mut tx, mut rx) = ffq::spmc::channel::<u64>(4);
    let t = std::thread::spawn(move || {
        for i in 0..64u64 {
            tx.enqueue(i);
        }
        tx.stats().parks
    });
    let mut got = Vec::new();
    while got.len() < 64 {
        std::thread::sleep(Duration::from_millis(2));
        while let Ok(v) = rx.try_dequeue() {
            got.push(v);
        }
    }
    let parks = t.join().unwrap();
    assert_eq!(got, (0..64).collect::<Vec<_>>());
    assert!(parks > 0, "producer never parked against the slow consumer");
}

#[test]
fn enqueue_timeout_full_queue_expires_and_returns_value() {
    let (mut tx, _rx) = ffq::spmc::channel::<u64>(4);
    for i in 0..4 {
        tx.enqueue(i);
    }
    let start = Instant::now();
    let err = tx
        .enqueue_timeout(99, Duration::from_millis(50))
        .unwrap_err();
    let waited = start.elapsed();
    assert_eq!(err.into_inner(), 99);
    assert!(
        waited >= Duration::from_millis(50),
        "gave up early: {waited:?}"
    );
    assert!(
        waited < Duration::from_millis(500),
        "deadline badly overshot: {waited:?}"
    );
}

#[test]
fn parked_dequeue_timeout_wakes_near_the_deadline() {
    // Satellite check for the adaptive deadline stride: once the consumer
    // is parked, each sleep slice is clamped to the remaining time, so the
    // expiry must land within a few bounded-park slices (~2 ms each) of
    // the deadline — not a whole slice grid late. Generous slack for CI.
    let (_tx, mut rx) = ffq::spmc::channel::<u64>(16);
    let timeout = Duration::from_millis(120);
    let start = Instant::now();
    let r = rx.dequeue_timeout(timeout);
    let waited = start.elapsed();
    assert_eq!(r, Err(ffq::TryDequeueError::Empty));
    assert!(
        waited >= timeout,
        "returned before the deadline: {waited:?}"
    );
    let overshoot = waited - timeout;
    assert!(
        overshoot < Duration::from_millis(50),
        "parked wake missed the deadline by {overshoot:?}"
    );
    assert!(
        rx.stats().parks > 0,
        "the wait never reached the park phase"
    );
}

#[test]
fn gap_announcements_wake_parked_consumers() {
    // Regression for the wrong-wakee window on the gap path: a gap
    // announcement unblocks one *specific* rank, so waking a single
    // arbitrary parked consumer can strand the one assigned that rank —
    // it re-parks on its own unsatisfied condition and the wake is lost.
    // The fix broadcasts on every gap announcement (mpmc `resolve_rank` /
    // `void_rank`, and the SP enqueue scan).
    //
    // Scenario engineering: batch consumers claim whole rank runs
    // (head advances, cells still occupied while the run is read back),
    // which makes the producers' `try_enqueue` probes land on occupied
    // cells and announce gaps — exactly the traffic that used to strand a
    // parked single-item consumer. The parked consumers use
    // `dequeue_timeout`, so a reintroduced lost wake fails the test
    // instead of hanging it: a 5 s starve while producers are streaming
    // can only mean the wake never arrived.
    const PER_PRODUCER: u64 = 40_000;
    const TIMEOUT: Duration = Duration::from_secs(5);
    let (tx, rx) = ffq::mpmc::channel::<u64>(64);
    let producers: Vec<_> = (0..2)
        .map(|p| {
            let mut tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut v = p as u64 * PER_PRODUCER + i;
                    loop {
                        match tx.try_enqueue(v) {
                            Ok(()) => break,
                            Err(full) => {
                                v = full.into_inner();
                                std::thread::yield_now();
                            }
                        }
                    }
                }
                tx.stats().gaps_created
            })
        })
        .collect();
    drop(tx);
    let batchers: Vec<_> = (0..4)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut buf = Vec::new();
                loop {
                    if rx.dequeue_batch(&mut buf, 64) == 0 {
                        if rx.producers() == 0 && rx.dequeue_batch(&mut buf, 64) == 0 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    got.append(&mut buf);
                }
                got
            })
        })
        .collect();
    let parked: Vec<_> = (0..4)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match rx.dequeue_timeout(TIMEOUT) {
                        Ok(v) => got.push(v),
                        Err(ffq::TryDequeueError::Disconnected) => break,
                        Err(ffq::TryDequeueError::Empty) => {
                            panic!("consumer starved {TIMEOUT:?} mid-stream: lost wake")
                        }
                    }
                }
                got
            })
        })
        .collect();
    drop(rx);
    let gaps: u64 = producers.into_iter().map(|h| h.join().unwrap()).sum();
    let mut all: Vec<u64> = batchers
        .into_iter()
        .chain(parked)
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..2 * PER_PRODUCER).collect::<Vec<_>>());
    // The scenario must actually have exercised the gap path.
    assert!(
        gaps > 0,
        "no gap was ever announced; scenario lost its teeth"
    );
}

#[test]
fn unbounded_absorbs_burst_without_stalling_producer() {
    // The unbounded tier's headline contract: a burst far past one
    // segment's capacity is absorbed by rolling onto fresh segments — the
    // producer never blocks, never parks, never sees `Full`. Four times
    // the segment capacity lands in one burst with no consumer running at
    // all; the consumers then drain exactly-once, in FIFO order, across
    // every seam.
    const SEGMENT_CAPACITY: usize = 256;
    const BURST: u64 = 4 * SEGMENT_CAPACITY as u64;
    let (mut tx, rx) = ffq::unbounded::spmc::channel::<u64>(SEGMENT_CAPACITY);
    // Nobody dequeues during the burst: absorption must come entirely
    // from segment rolls.
    for i in 0..BURST {
        tx.enqueue(i);
    }
    assert_eq!(
        tx.stats().parks,
        0,
        "producer blocked during the burst: {:?}",
        tx.stats()
    );
    // Each inner `Full` probe is absorbed by exactly one roll — the burst
    // never surfaces `Full` and never retries beyond the roll itself.
    assert!(
        tx.stats().full_rejections <= tx.seg_stats().segments_sealed,
        "burst retried beyond its rolls: {:?} / {:?}",
        tx.stats(),
        tx.seg_stats()
    );
    assert!(
        tx.seg_stats().segments_sealed >= 3,
        "a 4x burst must roll at least 3 times: {:?}",
        tx.seg_stats()
    );
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.dequeue() {
                    got.push(v);
                }
                got
            })
        })
        .collect();
    drop(rx);
    drop(tx);
    let mut all = Vec::new();
    for h in workers {
        let got = h.join().unwrap();
        // Per-consumer FIFO across segment seams: each handle's view of
        // the single producer's stream is strictly increasing.
        assert!(
            got.windows(2).all(|w| w[0] < w[1]),
            "per-consumer FIFO violated across seams"
        );
        all.extend(got);
    }
    all.sort_unstable();
    assert_eq!(all, (0..BURST).collect::<Vec<_>>(), "burst lost items");
}

#[test]
fn unbounded_mpmc_burst_and_oversubscribed_drain() {
    // Multi-producer burst into the unbounded tier under oversubscription:
    // every producer streams its items with no Full path at all (rolls
    // elect a sealer via the link CAS; losers follow the link), consumers
    // drain across seams, and the union is exactly-once with per-producer
    // FIFO.
    const PER_PRODUCER: u64 = 10_000;
    let threads = oversubscribed_threads();
    let producers = (threads / 2).min(8);
    let consumers = threads - producers;
    let (tx, rx) = ffq::unbounded::mpmc::channel::<u64>(128);
    let prod_handles: Vec<_> = (0..producers)
        .map(|p| {
            let mut tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    tx.enqueue(p as u64 * PER_PRODUCER + i);
                }
                tx.stats().parks
            })
        })
        .collect();
    drop(tx);
    let cons_handles: Vec<_> = (0..consumers)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.dequeue() {
                    got.push(v);
                }
                got
            })
        })
        .collect();
    drop(rx);
    for h in prod_handles {
        assert_eq!(h.join().unwrap(), 0, "unbounded producer parked");
    }
    let mut all: Vec<u64> = cons_handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort_unstable();
    let expected: Vec<u64> = (0..producers as u64 * PER_PRODUCER).collect();
    assert_eq!(all, expected);
}

#[test]
fn raw_published_wake_reaches_the_owning_claimant() {
    // Regression for the publish-path wrong-wakee window (ALGORITHM.md
    // §12): shared-head consumers attached at the raw layer without
    // `set_multi_consumer` used to get a *counted* publish wake gated on
    // the live consumer count — a gate a late-attaching consumer slips
    // past (its relaxed count increment can trail its park), letting the
    // single wake land on a claimant whose pending rank the publication
    // does not resolve while the owning claimant sleeps forever. The
    // publish wake now broadcasts unconditionally. The parked claimants
    // here use `dequeue_timeout` with a panic on expiry, so a
    // reintroduced counted wake fails the test instead of hanging it;
    // oversubscription (4x cores) maximizes the park rate.
    use ffq::cell::{CellSlot, PaddedCell};
    use ffq::layout::LinearMap;
    use ffq::raw::{QueueState, RawConsumer, RawProducer, RawQueue};

    const ITEMS: u64 = 50_000;
    const TIMEOUT: Duration = Duration::from_secs(5);
    let consumers = oversubscribed_threads();
    let state = QueueState::new(6, 1, consumers as u32);
    let cells: Vec<PaddedCell<u64>> = (0..64).map(|_| CellSlot::<u64>::empty()).collect();
    // SAFETY: state/cells outlive every handle (scoped threads); one
    // producer, shared-head consumers only. `set_multi_consumer` is
    // deliberately never called — that is the configuration under test.
    let q =
        unsafe { RawQueue::<u64, PaddedCell<u64>, LinearMap>::from_raw(&state, cells.as_ptr()) };
    let mut all = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..consumers)
            .map(|_| {
                let mut rx = unsafe { RawConsumer::<u64, _, _, false>::attach(q) };
                s.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match rx.dequeue_timeout(TIMEOUT) {
                            Ok(v) => got.push(v),
                            Err(ffq::TryDequeueError::Disconnected) => break,
                            Err(ffq::TryDequeueError::Empty) => {
                                panic!("claimant starved {TIMEOUT:?} mid-stream: lost wake")
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut tx = unsafe { RawProducer::attach(q) };
        for i in 0..ITEMS {
            let mut v = i;
            loop {
                match tx.try_enqueue(v) {
                    Ok(()) => break,
                    Err(full) => {
                        v = full.into_inner();
                        std::thread::yield_now();
                    }
                }
            }
            if i == ITEMS / 2 {
                // Stall so the claimants drain, claim ahead, and park.
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        // Producer gone: consumers must observe the disconnect and exit.
        state
            .producers()
            .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        state.wake_all();
        for h in handles {
            all.extend(h.join().unwrap());
        }
    });
    all.sort_unstable();
    assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
}

#[test]
fn broadcast_oversubscribed_subscribers_account_for_the_stream() {
    // Broadcast under oversubscription: the producer never blocks, every
    // subscriber individually accounts for the full stream as received +
    // lagged, and parked subscribers are woken by the publish broadcast
    // (expiry panics, so a lost wake fails fast).
    const ITEMS: u64 = 50_000;
    const TIMEOUT: Duration = Duration::from_secs(5);
    let subscribers = oversubscribed_threads();
    let (mut tx, rx) = ffq::broadcast::channel::<u64>(64);
    let handles: Vec<_> = (0..subscribers)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut received = 0u64;
                let mut lagged = 0u64;
                let mut last = 0u64;
                loop {
                    match rx.recv_timeout(TIMEOUT) {
                        Ok(v) => {
                            assert!(v > last, "reordered: {v} after {last}");
                            last = v;
                            received += 1;
                        }
                        Err(ffq::BroadcastTryRecvError::Lagged(n)) => lagged += n,
                        Err(ffq::BroadcastTryRecvError::Closed) => break,
                        Err(ffq::BroadcastTryRecvError::Empty) => {
                            panic!("subscriber starved {TIMEOUT:?} mid-stream: lost wake")
                        }
                    }
                }
                (received, lagged, rx.stats().parks)
            })
        })
        .collect();
    drop(rx);
    for i in 1..=ITEMS {
        tx.send(i);
        if i == ITEMS / 2 {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    drop(tx);
    let mut parks = 0u64;
    for h in handles {
        let (received, lagged, p) = h.join().unwrap();
        assert_eq!(received + lagged, ITEMS, "stream not fully accounted");
        parks += p;
    }
    assert!(
        parks > 0,
        "no subscriber ever parked under oversubscription"
    );
}

#[test]
fn spin_only_config_still_delivers() {
    // The opt-out path: spin-only handles never park but must still make
    // progress and see disconnects.
    const ITEMS: u64 = 20_000;
    let (mut tx, rx) = ffq::spmc::channel::<u64>(64);
    let mut rx2 = rx.clone();
    rx2.set_wait_config(ffq::WaitConfig::spin_only());
    drop(rx);
    let t = std::thread::spawn(move || {
        let mut got = Vec::new();
        while let Ok(v) = rx2.dequeue() {
            got.push(v);
        }
        assert_eq!(rx2.stats().parks, 0, "spin-only handle parked");
        got
    });
    for i in 0..ITEMS {
        tx.enqueue(i);
    }
    drop(tx);
    assert_eq!(t.join().unwrap(), (0..ITEMS).collect::<Vec<_>>());
}
