//! Conformance suite for the broadcast lane, checked against its
//! sequential specification.
//!
//! Three layers:
//!
//! 1. a proptest that drives a real channel and a deterministic sequential
//!    model in lock-step over random send/receive scripts — the model *is*
//!    the spec (`Lagged(len - cap - cursor)` exactly when the cursor's
//!    cell has been overwritten, i.e. `len > cursor + cap`);
//! 2. a concurrent multi-subscriber stress whose per-subscriber
//!    observation logs are replayed through
//!    [`ffq_lincheck::check_broadcast`] — every item is delivered at its
//!    publication rank or explicitly written off by a `Lagged` report;
//! 3. a torn-read injection stress: multi-word self-checking payloads on a
//!    tiny ring hammered by racing subscribers, so any copy that mixes
//!    old and new payload words (the failure the seqlock stamp protocol
//!    plus the producer's release fence rule out) breaks an internal
//!    relation and fails loudly.

use proptest::prelude::*;

use ffq::broadcast;
use ffq::{BroadcastRecvError, BroadcastTryRecvError};
use ffq_lincheck::{check_broadcast, BroadcastObs};

/// Distinct, bit-diverse publication values so a stale or misrouted cell
/// cannot accidentally verify.
fn value_at(rank: u64) -> u64 {
    rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5151_5151_AAAA_0001
}

/// The sequential broadcast model: a publication log and one subscriber
/// cursor over it. `try_recv` mirrors the lane's contract exactly.
struct SeqModel {
    published: Vec<u64>,
    cap: u64,
    cursor: u64,
    closed: bool,
}

impl SeqModel {
    fn new(cap: usize) -> Self {
        Self {
            published: Vec::new(),
            cap: cap as u64,
            cursor: 0,
            closed: false,
        }
    }

    fn send(&mut self, v: u64) {
        self.published.push(v);
    }

    fn try_recv(&mut self) -> Result<u64, BroadcastTryRecvError> {
        let len = self.published.len() as u64;
        if len > self.cursor + self.cap {
            // The cursor's cell was overwritten: resync to the oldest
            // retained rank and report exactly what was skipped.
            let new_cursor = len - self.cap;
            let skipped = new_cursor - self.cursor;
            self.cursor = new_cursor;
            return Err(BroadcastTryRecvError::Lagged(skipped));
        }
        if self.cursor < len {
            let v = self.published[self.cursor as usize];
            self.cursor += 1;
            return Ok(v);
        }
        Err(if self.closed {
            BroadcastTryRecvError::Closed
        } else {
            BroadcastTryRecvError::Empty
        })
    }

    /// `true` iff the next `try_recv` will return `Closed` (cursor caught
    /// up and the channel closed) — terminates the post-close drain loop.
    fn drained(&self) -> bool {
        self.closed && self.cursor as usize >= self.published.len()
    }
}

/// One lock-step receive on both the real subscriber and the model; the
/// outcomes must be identical. Cursor-moving outcomes land in `obs` for
/// the end-of-run checker replay.
fn step(rx: &mut broadcast::Subscriber<u64>, model: &mut SeqModel, obs: &mut Vec<BroadcastObs>) {
    let got = rx.try_recv();
    assert_eq!(got, model.try_recv(), "lane diverged from sequential model");
    match got {
        Ok(v) => obs.push(BroadcastObs::Received(v)),
        Err(BroadcastTryRecvError::Lagged(n)) => obs.push(BroadcastObs::Lagged(n)),
        Err(_) => {}
    }
}

proptest! {
    /// Lock-step equivalence: a real heap channel and the sequential model
    /// agree on every outcome of every interleaving of sends and receives,
    /// including the post-close drain; the recorded observation log also
    /// replays cleanly through the checker.
    #[test]
    fn single_subscriber_matches_sequential_model(
        cap in 1usize..40,
        script in proptest::collection::vec((any::<bool>(), 1usize..8), 1..120),
    ) {
        let (mut tx, mut rx) = broadcast::channel::<u64>(cap);
        // channel() may round the requested capacity up; the model must
        // use what the ring actually holds.
        let mut model = SeqModel::new(tx.capacity());
        let mut next_rank = 0u64;
        let mut obs = Vec::new();

        for (is_send, count) in script {
            for _ in 0..count {
                if is_send {
                    let v = value_at(next_rank);
                    next_rank += 1;
                    tx.send(v);
                    model.send(v);
                } else {
                    step(&mut rx, &mut model, &mut obs);
                }
            }
        }

        // Close, then drain: retained items still arrive, loss is still
        // reported, and the lane ends in Closed exactly when the model
        // does.
        drop(tx);
        model.closed = true;
        while !model.drained() {
            step(&mut rx, &mut model, &mut obs);
        }
        assert_eq!(rx.try_recv(), Err(BroadcastTryRecvError::Closed));

        check_broadcast(&model.published, 0, &obs)
            .unwrap_or_else(|v| panic!("observation log violates the broadcast spec: {v}"));
    }
}

/// Concurrent fan-out: one producer, several blocking subscribers, every
/// per-subscriber log replayed through the checker. Catches silent loss,
/// duplication, reordering, phantom items, and mis-sized lag reports under
/// real contention.
#[test]
fn concurrent_subscribers_histories_check_out() {
    const N: u64 = 30_000;
    const SUBSCRIBERS: usize = 3;

    let (mut tx, rx) = broadcast::channel::<u64>(64);
    let published: Vec<u64> = (0..N).map(value_at).collect();

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..SUBSCRIBERS {
            let mut rx = rx.clone(); // cursor 0: accounts for the full stream
            handles.push(s.spawn(move || {
                let mut obs = Vec::new();
                loop {
                    match rx.recv() {
                        Ok(v) => obs.push(BroadcastObs::Received(v)),
                        Err(BroadcastRecvError::Lagged(n)) => obs.push(BroadcastObs::Lagged(n)),
                        Err(BroadcastRecvError::Closed) => break,
                    }
                }
                obs
            }));
        }
        drop(rx);

        for &v in &published {
            tx.send(v);
        }
        drop(tx);

        for h in handles {
            let obs = h.join().unwrap();
            check_broadcast(&published, 0, &obs)
                .unwrap_or_else(|v| panic!("subscriber history violates the broadcast spec: {v}"));
            let (mut received, mut lagged) = (0u64, 0u64);
            for o in &obs {
                match o {
                    BroadcastObs::Received(_) => received += 1,
                    BroadcastObs::Lagged(n) => lagged += n,
                }
            }
            assert_eq!(
                received + lagged,
                N,
                "every published item must be delivered or written off"
            );
        }
    });
}

/// Torn-read injection: a 3-word payload whose words are bound together by
/// an algebraic relation, on a capacity-4 ring the producer laps
/// constantly. A subscriber copy mixing words from two different writes
/// cannot satisfy the relation, so a single torn read — the bug class the
/// version-stamp protocol and the producer-side release fence exist to
/// prevent — fails the run.
#[test]
fn torn_read_injection_on_tiny_ring() {
    const N: u64 = 20_000;

    fn payload(rank: u64) -> [u64; 3] {
        let x = value_at(rank);
        [x, x.wrapping_mul(0x0000_0100_0000_01B3), !x]
    }
    fn is_consistent(p: &[u64; 3]) -> bool {
        p[1] == p[0].wrapping_mul(0x0000_0100_0000_01B3) && p[2] == !p[0]
    }

    let (mut tx, rx) = broadcast::channel::<[u64; 3]>(4);

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..2 {
            let mut rx = rx.clone();
            handles.push(s.spawn(move || {
                let (mut received, mut lagged) = (0u64, 0u64);
                loop {
                    match rx.try_recv() {
                        Ok(p) => {
                            assert!(is_consistent(&p), "torn broadcast payload observed: {p:?}");
                            received += 1;
                        }
                        Err(BroadcastTryRecvError::Lagged(n)) => lagged += n,
                        Err(BroadcastTryRecvError::Empty) => std::thread::yield_now(),
                        Err(BroadcastTryRecvError::Closed) => break,
                    }
                }
                (received, lagged)
            }));
        }
        drop(rx);

        for rank in 0..N {
            tx.send(payload(rank));
        }
        drop(tx);

        for h in handles {
            let (received, lagged) = h.join().unwrap();
            assert_eq!(received + lagged, N, "loss must be fully accounted");
        }
    });
}
