//! Tests for the bulk and iterator conveniences on all three variants.

use ffq::TryDequeueError;

#[test]
fn spmc_enqueue_many_and_drain() {
    let (mut tx, mut rx) = ffq::spmc::channel::<u64>(64);
    assert_eq!(tx.enqueue_many(0..40), 40);
    let mut buf = Vec::new();
    assert_eq!(rx.drain_into(&mut buf, 25), 25);
    assert_eq!(buf, (0..25).collect::<Vec<u64>>());
    assert_eq!(rx.drain_into(&mut buf, 100), 15);
    assert_eq!(buf.len(), 40);
    assert_eq!(rx.drain_into(&mut buf, 100), 0);
}

#[test]
fn spsc_enqueue_many_and_drain() {
    let (mut tx, mut rx) = ffq::spsc::channel::<u64>(64);
    assert_eq!(tx.enqueue_many(vec![9, 8, 7]), 3);
    let mut buf = Vec::new();
    assert_eq!(rx.drain_into(&mut buf, 10), 3);
    assert_eq!(buf, vec![9, 8, 7]);
}

#[test]
fn mpmc_enqueue_many_and_drain() {
    let (mut tx, mut rx) = ffq::mpmc::channel::<u64>(64);
    assert_eq!(tx.enqueue_many(0..10), 10);
    let mut buf = Vec::new();
    assert_eq!(rx.drain_into(&mut buf, 10), 10);
    assert_eq!(buf, (0..10).collect::<Vec<u64>>());
}

#[test]
fn spmc_into_iter_blocks_until_disconnect() {
    let (mut tx, rx) = ffq::spmc::channel::<u64>(128);
    let worker = std::thread::spawn(move || rx.into_iter().sum::<u64>());
    tx.enqueue_many(1..=100);
    drop(tx);
    assert_eq!(worker.join().unwrap(), 5050);
}

#[test]
fn spsc_into_iter_yields_in_order() {
    let (mut tx, rx) = ffq::spsc::channel::<u64>(16);
    tx.enqueue_many(0..10);
    drop(tx);
    let v: Vec<u64> = rx.into_iter().collect();
    assert_eq!(v, (0..10).collect::<Vec<u64>>());
}

#[test]
fn mpmc_into_iter_across_producers() {
    let (tx, rx) = ffq::mpmc::channel::<u64>(256);
    let mut tx2 = tx.clone();
    let mut tx1 = tx;
    let p1 = std::thread::spawn(move || tx1.enqueue_many(0..500));
    let p2 = std::thread::spawn(move || tx2.enqueue_many(500..1000));
    let total: u64 = rx.into_iter().count() as u64;
    assert_eq!(p1.join().unwrap() + p2.join().unwrap(), 1000);
    assert_eq!(total, 1000);
}

#[test]
fn drain_respects_pending_rank_semantics() {
    let (mut tx, mut rx) = ffq::spmc::channel::<u64>(16);
    let mut buf = Vec::new();
    // A drain on an empty queue claims nothing: the emptiness pre-check
    // rejects before any rank is taken from the shared head.
    assert_eq!(rx.drain_into(&mut buf, 4), 0);
    assert_eq!(rx.stats().ranks_claimed, 0);
    assert_eq!(rx.pending_ranks(), 0);
    tx.enqueue(5);
    assert_eq!(rx.drain_into(&mut buf, 4), 1);
    assert_eq!(buf, vec![5]);
    // A rank parked by an unsatisfied per-item attempt is still resumed —
    // never abandoned — by a later drain.
    assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Empty));
    assert_eq!(rx.pending_ranks(), 1);
    tx.enqueue(6);
    buf.clear();
    assert_eq!(rx.drain_into(&mut buf, 4), 1);
    assert_eq!(buf, vec![6]);
    assert_eq!(rx.pending_ranks(), 0);
}

#[test]
fn dequeue_batch_roundtrip_all_variants() {
    // SPMC
    let (mut tx, mut rx) = ffq::spmc::channel::<u64>(64);
    tx.enqueue_many(0..48);
    let mut buf = Vec::new();
    assert_eq!(rx.dequeue_batch(&mut buf, 16), 16);
    assert_eq!(rx.dequeue_batch(&mut buf, 64), 32);
    assert_eq!(buf, (0..48).collect::<Vec<u64>>());
    assert_eq!(rx.dequeue_batch(&mut buf, 64), 0);
    assert_eq!(rx.pending_ranks(), 0);

    // MPMC
    let (mut tx, mut rx) = ffq::mpmc::channel::<u64>(64);
    tx.enqueue_many(0..48);
    let mut buf = Vec::new();
    assert_eq!(rx.dequeue_batch(&mut buf, 16), 16);
    assert_eq!(rx.dequeue_batch(&mut buf, 64), 32);
    assert_eq!(buf, (0..48).collect::<Vec<u64>>());
    assert_eq!(rx.dequeue_batch(&mut buf, 64), 0);
    assert_eq!(rx.pending_ranks(), 0);

    // SPSC
    let (mut tx, mut rx) = ffq::spsc::channel::<u64>(64);
    tx.enqueue_many(0..48);
    let mut buf = Vec::new();
    assert_eq!(rx.dequeue_batch(&mut buf, 16), 16);
    assert_eq!(rx.dequeue_batch(&mut buf, 64), 32);
    assert_eq!(buf, (0..48).collect::<Vec<u64>>());
    assert_eq!(rx.dequeue_batch(&mut buf, 64), 0);
}

#[test]
fn claim_batch_is_never_abandoned() {
    let (mut tx, mut rx) = ffq::spmc::channel::<u64>(32);
    tx.enqueue_many(0..4);
    // Claim more ranks than there are items: the surplus parks.
    rx.claim_batch(8);
    assert_eq!(rx.pending_ranks(), 8);
    let mut buf = Vec::new();
    assert_eq!(rx.dequeue_batch(&mut buf, 8), 4);
    assert_eq!(buf, vec![0, 1, 2, 3]);
    assert_eq!(rx.pending_ranks(), 4);
    // The parked run resumes across calls as items arrive, interleaving
    // batch and per-item harvesting.
    tx.enqueue_many(4..8);
    assert_eq!(rx.try_dequeue(), Ok(4));
    buf.clear();
    assert_eq!(rx.dequeue_batch(&mut buf, 8), 3);
    assert_eq!(buf, vec![5, 6, 7]);
    assert_eq!(rx.pending_ranks(), 0);
    // One head RMW for the claim_batch; per-item claims only after the
    // parked run was exhausted.
    assert!(rx.stats().head_rmws <= 2);
}
