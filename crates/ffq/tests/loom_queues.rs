//! Model-checked executions of the core queue protocols, run with
//! `RUSTFLAGS="--cfg loom" cargo test -p ffq --release -- loom_`.
//!
//! Each test drives the *real* queue code (the atomics facade swaps
//! `core::sync::atomic` for `ffq-loom`'s model types) through every
//! schedule the model's preemption bound allows, with weak-memory
//! read-from choices explored at every load. Blocking paths use unbounded
//! model parks, so any lost wake or protocol deadlock fails the test
//! instead of hiding behind a timeout. Models are deliberately tiny —
//! state space is exponential in operations — but each one pins a protocol
//! property: handoff + publication visibility (SPSC), the batched
//! fence/relaxed-store release pass, rank claiming with gap skip and
//! sticky disconnect (SPMC), and the `(rank, gap)` pair-CAS races (MPMC).
#![cfg(loom)]

use ffq::error::TryDequeueError;
use ffq::{mpmc, spmc, spsc, WaitConfig};
use ffq_loom::thread;

/// Minimal spin phase: one yield round, then park (unbounded).
fn eager() -> WaitConfig {
    WaitConfig {
        spin_limit: 0,
        yield_limit: 0,
        max_park: None,
        park: true,
    }
}

/// SPSC handoff: a producer publishes two items (data write before Release
/// rank store); the consumer must receive exactly them, in order, through
/// blocking dequeues — across every schedule and read-from choice.
#[test]
fn loom_spsc_enqueue_dequeue_handoff() {
    ffq_loom::model(|| {
        let (mut tx, mut rx) = spsc::channel::<u64>(4);
        rx.set_wait_config(eager());
        let p = thread::spawn(move || {
            tx.enqueue(7);
            tx.enqueue(8);
        });
        assert_eq!(rx.dequeue(), Ok(7));
        assert_eq!(rx.dequeue(), Ok(8));
        // The producer handle dropped inside the thread; a drained queue
        // must now report the hangup, not a bogus Empty.
        p.join().unwrap();
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
    });
}

/// The batched release pass: `enqueue_many` writes payloads first and
/// publishes all ranks afterwards with one `fence(Release)` followed by
/// *relaxed* rank stores. The consumer's Acquire rank load must still
/// order the payload read after the payload write (fence-to-atomic
/// synchronization) in every execution.
#[test]
fn loom_spsc_batched_release_pass() {
    ffq_loom::model(|| {
        let (mut tx, mut rx) = spsc::channel::<u64>(4);
        rx.set_wait_config(eager());
        let p = thread::spawn(move || {
            assert_eq!(tx.enqueue_many([7, 8]), 2);
        });
        assert_eq!(rx.dequeue(), Ok(7));
        assert_eq!(rx.dequeue(), Ok(8));
        p.join().unwrap();
    });
}

/// SPMC rank claiming with gap skip and sticky disconnect: two consumers
/// split a two-item queue exactly-once (one via a parked claim, one via a
/// fresh head claim), a full-queue `try_enqueue` burns a run of gap
/// announcements, and after the producer drops a single `try_dequeue`
/// must skip the whole gap run and report `Disconnected`.
#[test]
fn loom_spmc_claims_gaps_and_disconnect() {
    ffq_loom::model(|| {
        let (mut tx, mut rx1) = spmc::channel::<u64>(2);
        rx1.set_wait_config(eager());
        let mut rx2 = rx1.clone();
        rx2.set_wait_config(eager());
        tx.try_enqueue(10).unwrap();
        tx.try_enqueue(11).unwrap();
        // Park rank 0 on rx1, then scan a full queue: ranks 2 and 3 become
        // gap announcements at the (still occupied) cells 0 and 1.
        rx1.claim_batch(1);
        assert!(tx.try_enqueue(99).is_err());
        let c2 = thread::spawn(move || rx2.dequeue().unwrap());
        // rx1 satisfies its parked rank 0; rx2 claims rank 1 fresh.
        assert_eq!(rx1.dequeue(), Ok(10));
        assert_eq!(c2.join().unwrap(), 11);
        drop(tx);
        // One call: gap skips over ranks 2 and 3, then the sticky
        // disconnect verdict — never a bogus Empty.
        assert_eq!(rx1.try_dequeue(), Err(TryDequeueError::Disconnected));
    });
}

/// The MPMC `(rank, gap)` pair races on one cell: with the queue full, a
/// second producer's enqueue contends — gap-announce pair CAS against the
/// consumer's rank reset, claim CAS against a re-announced gap — while a
/// consumer drains. Every item must come out exactly once, per-producer
/// order preserved.
#[test]
fn loom_mpmc_pair_cas_race() {
    ffq_loom::model(|| {
        let (mut tx, mut rx) = mpmc::channel::<u64>(2);
        rx.set_wait_config(eager());
        tx.enqueue(1);
        tx.enqueue(2);
        let mut tx2 = tx.clone();
        drop(tx);
        let p2 = thread::spawn(move || {
            // Queue is full: this waits for the consumer, then fights for a
            // cell whose words the consumer is resetting concurrently.
            tx2.set_wait_config(eager());
            tx2.enqueue(3);
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.dequeue().unwrap());
        }
        p2.join().unwrap();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, [1, 2, 3], "lost or duplicated item: {got:?}");
        // Per-producer FIFO: 1 before 2 (both from the first producer).
        let i1 = got.iter().position(|&v| v == 1).unwrap();
        let i2 = got.iter().position(|&v| v == 2).unwrap();
        assert!(i1 < i2, "per-producer order violated: {got:?}");
    });
}
