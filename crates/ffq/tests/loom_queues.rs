//! Model-checked executions of the core queue protocols, run with
//! `RUSTFLAGS="--cfg loom" cargo test -p ffq --release -- loom_`.
//!
//! Each test drives the *real* queue code (the atomics facade swaps
//! `core::sync::atomic` for `ffq-loom`'s model types) through every
//! schedule the model's preemption bound allows, with weak-memory
//! read-from choices explored at every load. Blocking paths use unbounded
//! model parks, so any lost wake or protocol deadlock fails the test
//! instead of hiding behind a timeout. Models are deliberately tiny —
//! state space is exponential in operations — but each one pins a protocol
//! property: handoff + publication visibility (SPSC), the batched
//! fence/relaxed-store release pass, rank claiming with gap skip and
//! sticky disconnect (SPMC), and the `(rank, gap)` pair-CAS races (MPMC).
#![cfg(loom)]

use ffq::error::TryDequeueError;
use ffq::{mpmc, spmc, spsc, WaitConfig};
use ffq_loom::thread;

/// Minimal spin phase: one yield round, then park (unbounded).
fn eager() -> WaitConfig {
    WaitConfig {
        spin_limit: 0,
        yield_limit: 0,
        max_park: None,
        park: true,
    }
}

/// SPSC handoff: a producer publishes two items (data write before Release
/// rank store); the consumer must receive exactly them, in order, through
/// blocking dequeues — across every schedule and read-from choice.
#[test]
fn loom_spsc_enqueue_dequeue_handoff() {
    ffq_loom::model(|| {
        let (mut tx, mut rx) = spsc::channel::<u64>(4);
        rx.set_wait_config(eager());
        let p = thread::spawn(move || {
            tx.enqueue(7);
            tx.enqueue(8);
        });
        assert_eq!(rx.dequeue(), Ok(7));
        assert_eq!(rx.dequeue(), Ok(8));
        // The producer handle dropped inside the thread; a drained queue
        // must now report the hangup, not a bogus Empty.
        p.join().unwrap();
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
    });
}

/// The batched release pass: `enqueue_many` writes payloads first and
/// publishes all ranks afterwards with one `fence(Release)` followed by
/// *relaxed* rank stores. The consumer's Acquire rank load must still
/// order the payload read after the payload write (fence-to-atomic
/// synchronization) in every execution.
#[test]
fn loom_spsc_batched_release_pass() {
    ffq_loom::model(|| {
        let (mut tx, mut rx) = spsc::channel::<u64>(4);
        rx.set_wait_config(eager());
        let p = thread::spawn(move || {
            assert_eq!(tx.enqueue_many([7, 8]), 2);
        });
        assert_eq!(rx.dequeue(), Ok(7));
        assert_eq!(rx.dequeue(), Ok(8));
        p.join().unwrap();
    });
}

/// SPMC rank claiming with gap skip and sticky disconnect: two consumers
/// split a two-item queue exactly-once (one via a parked claim, one via a
/// fresh head claim), a full-queue `try_enqueue` burns a run of gap
/// announcements, and after the producer drops a single `try_dequeue`
/// must skip the whole gap run and report `Disconnected`.
#[test]
fn loom_spmc_claims_gaps_and_disconnect() {
    ffq_loom::model(|| {
        let (mut tx, mut rx1) = spmc::channel::<u64>(2);
        rx1.set_wait_config(eager());
        let mut rx2 = rx1.clone();
        rx2.set_wait_config(eager());
        tx.try_enqueue(10).unwrap();
        tx.try_enqueue(11).unwrap();
        // Park rank 0 on rx1, then scan a full queue: ranks 2 and 3 become
        // gap announcements at the (still occupied) cells 0 and 1.
        rx1.claim_batch(1);
        assert!(tx.try_enqueue(99).is_err());
        let c2 = thread::spawn(move || rx2.dequeue().unwrap());
        // rx1 satisfies its parked rank 0; rx2 claims rank 1 fresh.
        assert_eq!(rx1.dequeue(), Ok(10));
        assert_eq!(c2.join().unwrap(), 11);
        drop(tx);
        // One call: gap skips over ranks 2 and 3, then the sticky
        // disconnect verdict — never a bogus Empty.
        assert_eq!(rx1.try_dequeue(), Err(TryDequeueError::Disconnected));
    });
}

/// The batched-enqueue gap-loss recovery: `enqueue_many` sizes its rank
/// run from a `head`/`tail` snapshot, so a rival producer claiming the
/// free space inside that window makes the run land on still-occupied
/// cells. Those ranks must be resolved as gaps (`void_rank`) — never left
/// claimed, which would stall the consumer assigned them forever — and
/// the affected items must re-enter through the per-item path without
/// breaking the batch producer's FIFO order.
///
/// Kept to two threads so the bounded exploration stays tractable: the
/// main thread plays rival producer (two `try_enqueue`s into the sizing
/// window of the spawned `enqueue_many`) and then consumer, draining all
/// six items through blocking dequeues that must skip any gap ranks the
/// lost run created — including the interleaving where the batch producer
/// parks on a full queue after voiding its run and is only unblocked by
/// those drains.
///
/// Preemption bound 1 keeps the exploration under the execution cap; the
/// overshoot needs exactly one context switch (inside the sizing window),
/// so the target race is still covered.
#[test]
fn loom_mpmc_batch_gap_loss() {
    ffq_loom::model_bounded(1, || {
        let (mut tx, mut rx) = mpmc::channel::<u64>(4);
        rx.set_wait_config(eager());
        // Half-fill: cells 0 and 1 hold items, so an overshot run lands
        // on occupied cells.
        tx.try_enqueue(1).unwrap();
        tx.try_enqueue(2).unwrap();
        let mut tx1 = tx.clone();
        let p1 = thread::spawn(move || {
            tx1.set_wait_config(eager());
            assert_eq!(tx1.enqueue_many([10, 11]), 2);
        });
        // Racing the spawned producer's sizing window: when these claims
        // slot between its `head` load and `fetch_add`, its run of ranks
        // overshoots onto cells 0 and 1. In schedules where the batch
        // lands first the queue may already be full — a `Full` rejection
        // is then the correct outcome, and the item simply isn't in play.
        let mut main_seq = vec![1u64, 2];
        for v in [3u64, 4] {
            if tx.try_enqueue(v).is_ok() {
                main_seq.push(v);
            }
        }
        drop(tx);
        let mut expected: Vec<u64> = main_seq.iter().copied().chain([10, 11]).collect();
        // Every dequeue runs before the join: a voided run can cascade
        // (the per-item re-entry can burn further gap ranks), so the
        // parked producer may need drains right up to the last item.
        let mut got = Vec::new();
        for _ in 0..expected.len() {
            got.push(rx.dequeue().unwrap());
        }
        p1.join().unwrap();
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
        let mut sorted = got.clone();
        sorted.sort_unstable();
        expected.sort_unstable();
        assert_eq!(sorted, expected, "lost or duplicated: {got:?}");
        // Per-producer FIFO: the main handle's items in order, and the
        // batch producer's 10 before 11 even when the run was voided and
        // re-entered per-item.
        for seq in [&main_seq[..], &[10, 11]] {
            let pos: Vec<usize> = seq
                .iter()
                .map(|v| got.iter().position(|g| g == v).unwrap())
                .collect();
            assert!(
                pos.windows(2).all(|w| w[0] < w[1]),
                "order violated: {got:?}"
            );
        }
    });
}

/// The sharded frontend's block rotation under a single consumer: the
/// producer publishes three items through strict rotation over two shards
/// (gapless claims — values 0 and 2 land on shard 0, value 1 on shard 1)
/// while the consumer drains through blocking dequeues to the disconnect
/// verdict. Every item must arrive exactly once, shard 0's pair in rank
/// order on the one handle that saw both, and the drained queue must
/// report `Disconnected` — never a bogus verdict over undelivered items.
///
/// This model found a real bug: the disconnect verdict re-sampled the
/// producer counts *after* the drain pass, so a stale "producers alive"
/// read could skip the re-scan and a fresh "producers gone" read at
/// verdict time then disconnected over items the drain never saw.
#[test]
fn loom_shard_rotation_fifo() {
    ffq_loom::model_bounded(1, || {
        let (mut tx, mut rx) = ffq::shard::channel_with_geometry::<u64>(4, 2, 1);
        rx.set_wait_config(eager());
        let p = thread::spawn(move || {
            assert_eq!(tx.enqueue_many(0..3u64), 3);
        });
        // Blocking dequeues: a lost wake on the aggregate not-empty cell
        // deadlocks the model instead of hiding behind a timeout.
        let mut got = Vec::new();
        while let Ok(v) = rx.dequeue() {
            got.push(v);
        }
        p.join().unwrap();
        // Per-shard FIFO is the one order the relaxed contract always
        // keeps: values 0 and 2 share shard 0 and this handle saw both,
        // so they must come out in rank order.
        let s0: Vec<u64> = got.iter().copied().filter(|v| *v != 1).collect();
        assert_eq!(s0, [0, 2], "shard-0 FIFO violated: {got:?}");
        got.sort_unstable();
        assert_eq!(
            got,
            [0, 1, 2],
            "lost item; len={} stats={:?}",
            rx.len_hint(),
            rx.stats(),
        );
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
    });
}

/// The sharded claim/steal protocol under racing consumers: two consumer
/// handles contend for one item on each of two shards — c-choices
/// occupancy sampling over `len_hint`s that may be stale by claim time,
/// the bounded head claim against the laggard cap, and the work-stealing
/// fallback scan racing the other handle's drain of the same shard. The
/// union of both drains must be loss-free and duplicate-free, and both
/// handles must reach the disconnect verdict — under every schedule the
/// preemption bound allows.
///
/// Geometry 2 shards × block 1 × one item per shard keeps the state
/// space inside the execution cap with three threads; the enqueues run
/// deterministically *before* the spawns for the same reason — the
/// enqueue-vs-drain interleaving surface is covered by the (much
/// cheaper) single-consumer model above, so here only the producer's
/// drop and the two competing drains interleave. Preemption bound 1
/// still covers the target races — a stale occupancy sample at claim
/// time, a steal landing mid-drain, and the drop's one-shard-at-a-time
/// handle-count decrements racing a disconnect verdict each need
/// exactly one context switch.
///
/// This model found a real bug: `consumer_ready` folded each shard's
/// producers-gone term into its `any()`, so the window between a
/// dropping producer's first and last per-shard decrement left the
/// predicate true with no progress possible — a busy-poll the DFS
/// reported as a thread-0 livelock (see `consumer_ready` for the
/// `any`/`all` split that fixes it).
#[test]
fn loom_shard_claim_steal() {
    ffq_loom::model_bounded(1, || {
        let (mut tx, mut rx1) = ffq::shard::channel_with_geometry::<u64>(4, 2, 1);
        rx1.set_wait_config(eager());
        let mut rx2 = rx1.clone();
        rx2.set_wait_config(eager());
        assert_eq!(tx.enqueue_many(0..2u64), 2);
        // The producer handle drops on its own thread: the per-shard
        // handle-count decrements land one at a time against the drains.
        let p = thread::spawn(move || drop(tx));
        // Both handles drain to the disconnect verdict: stashed items are
        // always served before `Disconnected`, so the union must be
        // loss-free however the steals land.
        let c2 = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.dequeue() {
                got.push(v);
            }
            (got, rx2.stats())
        });
        let mut got = Vec::new();
        while let Ok(v) = rx1.dequeue() {
            got.push(v);
        }
        let (theirs, c2_stats) = c2.join().unwrap();
        got.extend(theirs);
        p.join().unwrap();
        got.sort_unstable();
        assert_eq!(
            got,
            [0, 1],
            "lost or duplicated item; len={} c1_stats={:?} c2_stats={c2_stats:?}",
            rx1.len_hint(),
            rx1.stats(),
        );
        assert_eq!(rx1.try_dequeue(), Err(TryDequeueError::Disconnected));
    });
}

/// The unbounded tier's segment seam: a producer that fills its 2-cell
/// segment rolls — allocates a successor, links it (Release, before the
/// seal), seals the old segment, and keeps enqueueing — while the consumer
/// concurrently drains across the boundary: it must observe the seal only
/// together with the link, prune nothing it could still satisfy, advance
/// `head_seg` exactly once, and retire the drained segment through the era
/// registry without freeing anything the producer's slot still protects.
/// Every item arrives in order through blocking dequeues (a lost wake on
/// the *new* segment's not-empty cell deadlocks the model), and the
/// drained queue reports `Disconnected` — across every schedule the
/// preemption bound allows.
///
/// Preemption bound 2 keeps the unbounded tier's extra machinery (link
/// AtomicPtr, SeqCst era slots, the retire spinlock) inside the execution
/// cap; the seam races each need at most two context switches (one inside
/// the roll's link/seal window, one inside the consumer's
/// seal-check/advance window).
#[test]
fn loom_segment_link_advance() {
    ffq_loom::model_bounded(2, || {
        let (mut tx, mut rx) = ffq::unbounded::spsc::channel::<u64>(2);
        rx.set_wait_config(eager());
        let p = thread::spawn(move || {
            // Three items through a 2-cell segment: the third forces a
            // roll, so the seam is crossed in every execution.
            tx.enqueue(7);
            tx.enqueue(8);
            tx.enqueue(9);
        });
        assert_eq!(rx.dequeue(), Ok(7));
        assert_eq!(rx.dequeue(), Ok(8));
        assert_eq!(rx.dequeue(), Ok(9));
        p.join().unwrap();
        // Producer gone, both segments drained: the seam must not turn the
        // hangup into a bogus Empty (or strand the consumer on the sealed
        // segment).
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
    });
}

/// The multi-producer roll's tail publication: a roller that stalls
/// between winning the `next`-link CAS and publishing `tail_seg` lets a
/// later roll's publish race it, so publication must be monotone by era
/// (the tagged pair CAS in `Ctl::publish_tail`), not a one-shot pointer
/// CAS from the roller's own segment. With the one-shot CAS, the roller
/// of segment k+1 fails silently against the stale tail, the resumed
/// roller of k then re-publishes k+1 over the real list end, and the last
/// producer's drop decrements the *stale* segment's inner count — already
/// sealed, so it underflows — while the true newest segment keeps its
/// count forever: the drained queue answers `Empty` instead of
/// `Disconnected` (and a parked consumer would hang). Two producers each
/// forcing rolls of consecutive 2-cell segments reach that window within
/// the preemption bound; the final verdict must be a hangup under every
/// schedule.
#[test]
fn loom_mpmc_roll_publish_race() {
    ffq_loom::model_bounded(2, || {
        let (tx1, mut rx) = ffq::unbounded::mpmc::channel::<u64>(2);
        let mut tx2 = tx1.clone();
        let mut tx1 = tx1;
        let p1 = thread::spawn(move || {
            for i in 0..3 {
                tx1.enqueue(i);
            }
        });
        let p2 = thread::spawn(move || {
            for i in 10..13 {
                tx2.enqueue(i);
            }
        });
        p1.join().unwrap();
        p2.join().unwrap();
        // Both producers are gone; every item must drain and the hangup
        // must reach the newest segment.
        let mut got = Vec::new();
        while let Ok(v) = rx.try_dequeue() {
            got.push(v);
        }
        assert_eq!(rx.try_dequeue(), Err(TryDequeueError::Disconnected));
        got.sort_unstable();
        assert_eq!(got, [0, 1, 2, 10, 11, 12]);
    });
}

/// Wrong-wakee audit (multi-consumer publish must broadcast): two
/// consumers park on *assigned* ranks — rx1 holds rank 0, rx2 holds rank
/// 1 via `claim_batch` — and the producer publishes both items. A counted
/// `wake(1)` per publish can deliver the first wake to the consumer whose
/// rank is still unpublished (it re-parks) while the right claimant sleeps
/// through its item forever; the model then deadlocks on join. The fix —
/// multi-consumer publishes broadcast on the not-empty cell — must let
/// both claimants drain their ranks under every schedule.
#[test]
fn loom_spmc_publish_wakes_all_claimants() {
    ffq_loom::model_bounded(1, || {
        let (mut tx, mut rx1) = spmc::channel::<u64>(2);
        rx1.set_wait_config(eager());
        let mut rx2 = rx1.clone();
        rx2.set_wait_config(eager());
        // Deterministic rank assignment before any thread runs: rx1 parks
        // rank 0, rx2 parks rank 1.
        rx1.claim_batch(1);
        rx2.claim_batch(1);
        let c1 = thread::spawn(move || rx1.dequeue().unwrap());
        let c2 = thread::spawn(move || rx2.dequeue().unwrap());
        tx.enqueue(10);
        tx.enqueue(11);
        assert_eq!(c1.join().unwrap(), 10);
        assert_eq!(c2.join().unwrap(), 11);
    });
}

/// The MPMC `(rank, gap)` pair races on one cell: with the queue full, a
/// second producer's enqueue contends — gap-announce pair CAS against the
/// consumer's rank reset, claim CAS against a re-announced gap — while a
/// consumer drains. Every item must come out exactly once, per-producer
/// order preserved.
#[test]
fn loom_mpmc_pair_cas_race() {
    ffq_loom::model(|| {
        let (mut tx, mut rx) = mpmc::channel::<u64>(2);
        rx.set_wait_config(eager());
        tx.enqueue(1);
        tx.enqueue(2);
        let mut tx2 = tx.clone();
        drop(tx);
        let p2 = thread::spawn(move || {
            // Queue is full: this waits for the consumer, then fights for a
            // cell whose words the consumer is resetting concurrently.
            tx2.set_wait_config(eager());
            tx2.enqueue(3);
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.dequeue().unwrap());
        }
        p2.join().unwrap();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, [1, 2, 3], "lost or duplicated item: {got:?}");
        // Per-producer FIFO: 1 before 2 (both from the first producer).
        let i1 = got.iter().position(|&v| v == 1).unwrap();
        let i2 = got.iter().position(|&v| v == 2).unwrap();
        assert!(i1 < i2, "per-producer order violated: {got:?}");
    });
}

/// The zero-copy bytes handoff: reserve → in-place slot write → commit
/// (Release publish) → borrowed read → retire. Capacity 2 with three
/// payloads forces the producer to wrap onto the very slot whose
/// `PayloadRef` the consumer may still hold; the reserve must park until
/// the retire recycles the cell (a claimed-but-unretired cell keeps
/// publishing its rank, so the producer treats it as busy). If slot reuse
/// could ever race a live borrow, the content assert under the held view
/// fails the model; if a retire wake were lost, the model deadlocks.
#[test]
fn loom_bytes_spsc_reserve_commit_borrow_retire() {
    use ffq::bytes::{BytesConsumer, BytesProducer};
    ffq_loom::model(|| {
        let (mut tx, mut rx) = spsc::bytes_channel(2, 64).unwrap();
        tx.set_wait_config(eager());
        rx.set_wait_config(eager());
        let p = thread::spawn(move || {
            for i in 1..=3u8 {
                let mut slot = tx.reserve(4).unwrap();
                slot.copy_from_slice(&[i; 4]);
                slot.commit();
            }
        });
        for i in 1..=3u8 {
            let view = rx.recv().unwrap();
            // Read while the rank is still claimed: the producer may be
            // inside its wrap-around reserve right now, and must not have
            // touched this slot.
            assert_eq!(&*view, &[i; 4], "slot reused under a live borrow");
            drop(view); // retire: only now may the producer recycle the slot
        }
        p.join().unwrap();
        assert!(rx.recv().is_err(), "producer gone, queue drained");
    });
}

/// A multi-producer bytes reservation that is dropped uncommitted must be
/// resolved, not abandoned: the abort publishes a tombstone descriptor the
/// consumer retires silently. Racing an abort against a commit, the
/// committed payload must always arrive byte-identical and the tombstone
/// must never surface (a stalled unresolved claim would deadlock the
/// consumer; a delivered tombstone would assert).
#[test]
fn loom_bytes_mpmc_abort_loses_nothing() {
    use ffq::bytes::{BytesConsumer, BytesProducer};
    ffq_loom::model(|| {
        let (mut tx, mut rx) = mpmc::bytes_channel(4, 64).unwrap();
        rx.set_wait_config(eager());
        let mut tx2 = tx.clone();
        let aborter = thread::spawn(move || {
            // Claim a rank, write nothing, drop uncommitted.
            let slot = tx2.try_reserve(8).ok();
            drop(slot);
        });
        tx.send_bytes(&[7u8; 8]).unwrap();
        drop(tx);
        let view = rx.recv().unwrap();
        assert_eq!(&*view, &[7u8; 8], "committed payload corrupted");
        drop(view);
        aborter.join().unwrap();
        // Both producers gone: the tombstone is skipped, never delivered.
        assert!(rx.recv().is_err(), "abort tombstone surfaced as a payload");
    });
}

/// Wrong-wakee regression at the raw layer: two shared-head consumers are
/// attached without `set_multi_consumer` ever being called on the
/// producer — the configuration the typed constructors always get right
/// but raw-layer embedders (and the bytes engines built over them) can
/// produce. rx1 parks on claimed rank 0, rx2 on rank 1; the producer
/// publishes both. A counted `wake(1)` per publish can spend both wakes on
/// the claimant whose rank resolves second while the other sleeps forever
/// (model deadlock). The publish-time wake must consult the live consumer
/// count and broadcast.
#[test]
fn loom_raw_publish_wakes_the_right_claimant() {
    use ffq::cell::{CellSlot, PaddedCell};
    use ffq::layout::LinearMap;
    use ffq::raw::{QueueState, RawConsumer, RawProducer, RawQueue};
    // Bound 3: the misdirected-wake deadlock needs two preemptions of the
    // producer (park both claimants, then let the wrongly woken claimant
    // re-park between the two publishes) plus slack for the eventcount's
    // internal schedule points.
    ffq_loom::model_bounded(3, || {
        let state = Box::new(QueueState::new(1, 1, 2));
        let cells: Box<[PaddedCell<u64>]> = (0..2).map(|_| CellSlot::<u64>::empty()).collect();
        // SAFETY: state/cells outlive every handle (threads are joined
        // before the boxes drop); one producer, two shared-head consumers.
        let q = unsafe {
            RawQueue::<u64, PaddedCell<u64>, LinearMap>::from_raw(&*state, cells.as_ptr())
        };
        let mut tx = unsafe { RawProducer::attach(q) };
        let mut rx1 = unsafe { RawConsumer::<u64, _, _, false>::attach(q) };
        let mut rx2 = unsafe { RawConsumer::<u64, _, _, false>::attach(q) };
        rx1.set_wait_config(eager());
        rx2.set_wait_config(eager());
        // Deterministic rank ownership before any thread runs: rx1 owns
        // rank 0, rx2 owns rank 1. The rank-1 claimant spawns *first* —
        // the model's counted wake picks the lowest blocked thread id, so
        // publishing rank 0 with a `wake(1)` lands on rx2 (who re-parks),
        // exactly the misdirected wake the broadcast fix absorbs.
        rx1.claim_batch(1);
        rx2.claim_batch(1);
        let c2 = thread::spawn(move || rx2.dequeue().unwrap());
        let c1 = thread::spawn(move || rx1.dequeue().unwrap());
        tx.enqueue(10);
        tx.enqueue(11);
        assert_eq!(c1.join().unwrap(), 10);
        assert_eq!(c2.join().unwrap(), 11);
    });
}

/// The broadcast seqlock *cell* protocol, modeled with the payload chunk
/// spelled out as a model atomic. Production `write_racy`/`read_racy`
/// copy payloads through **relaxed `AtomicU64` chunks** (under loom they
/// degrade to plain serialized reads, which the model cannot track), so
/// this replica writes one 8-byte payload chunk through the facade's
/// `AtomicU64` and mirrors `RawBroadcastProducer::send` /
/// `RawBroadcastSubscriber::try_recv` exactly: writer `swap(odd,
/// AcqRel)` → `fence(Release)` → relaxed payload store → `store(even,
/// Release)`; reader `load(Acquire)` → relaxed payload load →
/// `fence(Acquire)` → relaxed stamp re-read.
///
/// The scenario is a capacity-2 ring wrapping: cell 0 holds published
/// rank 0 (stamp 2, payload 1) and the writer overwrites it with rank 2
/// (stamp 5 → payload 3 → stamp 6) while a reader at cursor 0 validates.
/// The property: a reader whose relaxed copy caught *any* of the new
/// payload must fail validation. Without the writer's `fence(Release)`
/// the model finds the torn execution — the swap's release half only
/// orders *prior* accesses, so nothing forces a reader that read payload
/// 3 to also see stamp 5 — which is exactly why `send` carries the fence.
#[test]
fn loom_broadcast_seqlock_cell_rejects_torn_copy() {
    use ffq_sync::atomic::{fence, AtomicU64, Ordering};
    use std::sync::Arc;
    ffq_loom::model(|| {
        let stamp = Arc::new(AtomicU64::new(2)); // seq_published(0)
        let data = Arc::new(AtomicU64::new(1)); // rank-0 payload
        let (w_stamp, w_data) = (Arc::clone(&stamp), Arc::clone(&data));
        let w = thread::spawn(move || {
            w_stamp.swap(5, Ordering::AcqRel); // seq_writing(2)
            fence(Ordering::Release);
            w_data.store(3, Ordering::Relaxed); // rank-2 payload
            w_stamp.store(6, Ordering::Release); // seq_published(2)
        });
        let s1 = stamp.load(Ordering::Acquire);
        if s1 == 2 {
            let copy = data.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let s2 = stamp.load(Ordering::Relaxed);
            if s2 == 2 {
                assert_eq!(copy, 1, "validated copy leaked the new payload");
            }
        }
        w.join().unwrap();
    });
}

/// Broadcast wraparound end to end: a capacity-2 ring takes three
/// publishes, so rank 2 overwrites cell 0 while the subscriber may be
/// anywhere in its read/park cycle. Checked properties: the recv loop
/// terminates (every parked wait is woken — publish and close wakes are
/// unconditional broadcasts), at most rank 0 is ever reported lost, and
/// cursor arithmetic covers the stream exactly (observed + lost == 3).
/// Payload *values* are not asserted here — under loom `read_racy` is a
/// plain serialized read the model cannot order, so value integrity is
/// the cell model's job above.
#[test]
fn loom_broadcast_wraparound_accounts_for_stream() {
    use ffq::broadcast;
    use ffq::error::BroadcastRecvError;
    ffq_loom::model_bounded(2, || {
        let (mut tx, mut rx) = broadcast::channel::<u64>(2);
        rx.set_wait_config(eager());
        let p = thread::spawn(move || {
            tx.send(1);
            tx.send(2);
            tx.send(3);
        });
        let mut cursor = 0u64;
        let mut lost = 0u64;
        loop {
            match rx.recv() {
                Ok(_) => cursor += 1,
                Err(BroadcastRecvError::Lagged(n)) => {
                    assert!(n > 0);
                    cursor += n;
                    lost += n;
                }
                Err(BroadcastRecvError::Closed) => break,
            }
        }
        assert_eq!(cursor, 3, "observed + lost must cover the stream");
        assert!(lost <= 1, "capacity 2 can lose at most rank 0 here");
        p.join().unwrap();
    });
}

/// Publish-time fan-out wake: two subscribers park on the same
/// not-empty eventcount, then one publish must wake *both* (the
/// unconditional-broadcast rule — a counted wake could hand the single
/// token to one subscriber and strand the other, which loom reports as
/// a deadlock). Each subscriber owns an independent cursor, so each must
/// observe the item, not partition it; both must then see the closure.
#[test]
fn loom_broadcast_publish_wakes_every_subscriber() {
    use ffq::broadcast;
    use ffq::error::BroadcastRecvError;
    ffq_loom::model_bounded(1, || {
        let (mut tx, rx1) = broadcast::channel::<u64>(4);
        let mut rx1 = rx1;
        rx1.set_wait_config(eager());
        let mut rx2 = rx1.clone();
        let c1 = thread::spawn(move || {
            assert_eq!(rx1.recv(), Ok(7));
            assert_eq!(rx1.recv(), Err(BroadcastRecvError::Closed));
        });
        let c2 = thread::spawn(move || {
            assert_eq!(rx2.recv(), Ok(7));
            assert_eq!(rx2.recv(), Err(BroadcastRecvError::Closed));
        });
        tx.send(7);
        drop(tx);
        c1.join().unwrap();
        c2.join().unwrap();
    });
}

/// Closure race: the sender publishes once and drops while the
/// subscriber is anywhere in its park/check cycle. The subscriber must
/// observe the item *and then* the closure — never a premature `Closed`
/// (the producers==0 load is Acquire-ordered before the tail re-check)
/// and never a missed drop-wake (which would deadlock the model).
#[test]
fn loom_broadcast_sender_drop_wakes_and_closes() {
    use ffq::broadcast;
    use ffq::error::BroadcastRecvError;
    ffq_loom::model(|| {
        let (mut tx, mut rx) = broadcast::channel::<u64>(2);
        rx.set_wait_config(eager());
        let p = thread::spawn(move || {
            tx.send(42);
            // tx drops here: producers -> 0, then wake_all.
        });
        assert_eq!(rx.recv(), Ok(42));
        assert_eq!(rx.recv(), Err(BroadcastRecvError::Closed));
        p.join().unwrap();
    });
}
