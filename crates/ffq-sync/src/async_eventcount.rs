//! Waker-registry eventcount: the async twin of [`crate::WaitCell`].
//!
//! The blocking eventcount parks OS threads on a futex word. An async
//! executor cannot park a thread — a pending task must instead leave a
//! [`Waker`] behind and return `Poll::Pending`. This module keeps the
//! model-checked `{seq, waiters}` protocol from [`crate::eventcount`]
//! byte-for-byte on the notifier fast path (one SeqCst fence + one relaxed
//! load when nobody waits) and swaps the sleep mechanism: instead of
//! `futex_wait`, a waiter *registers* its `Waker` in a slot list guarded by
//! a tiny spinlock, and the notifier's slow path drains wakers in FIFO
//! registration order.
//!
//! ## The lost-wake argument, restated for wakers
//!
//! The race is the same store-buffering pattern the blocking cell closes
//! (see `eventcount.rs` module docs): a task checks the queue (empty), and
//! before its waker is visible the producer publishes an item and loads
//! `waiters == 0`. Both sides close it with the same SC-fence pair:
//!
//! * **Waiter:** [`AsyncWaitCell::register`] inserts the waker *and*
//!   increments `waiters` (SeqCst RMW) inside the registry lock, then
//!   issues a SeqCst fence before returning. The caller MUST re-check its
//!   condition after `register` and before returning `Poll::Pending` —
//!   the re-check is ordered after the registration in the SC total order.
//! * **Notifier:** [`AsyncWaitCell::notify`] issues a SeqCst fence after
//!   the caller's publication and before its `waiters` load.
//!
//! Either the notifier's fence precedes the registration — then the
//! waiter's re-check sees the publication and the task completes without
//! sleeping — or the registration precedes the fence, the notifier sees
//! `waiters != 0` and takes the registry lock. The lock closes the second
//! half: the waker was inserted before `waiters` was incremented (both
//! under the lock), so a notifier that observed the increment finds the
//! waker when it acquires the lock. The blocking cell needed the futex's
//! atomic compare-and-sleep for this half; here mutual exclusion does the
//! job, and `seq` survives as the wake-generation counter (bumped Release
//! before wakers are drained) for parity and diagnostics.
//!
//! The `loom_async_*` models at the bottom of this file check exactly this:
//! a registered waker that parks on a model futex until woken turns a lost
//! wake into a model deadlock, and the `should_panic` model demonstrates
//! that skipping the post-register re-check resurrects the race.
//!
//! ## Consumed registrations and wake handoff
//!
//! A notifier *consumes* registrations: it takes the waker out and the
//! token becomes stale. [`AsyncWaitCell::deregister`] reports this — `false`
//! means "your waker was already taken; a wake was (or is being) delivered
//! to you". A future that is dropped while its token is consumed has
//! swallowed a wake some other task may have needed; cancellation-safe
//! callers MUST pass it on by calling [`AsyncWaitCell::notify`] again.
//! This is the rank-handoff-on-drop protocol `ffq-async` builds on (see
//! ALGORITHM.md §12).
//!
//! Wakers are process-local by construction, so unlike the blocking cell
//! there is no `shared` parameter: an `AsyncWaitCell` must not be placed
//! in cross-process shared memory.

use core::cell::UnsafeCell;
use std::collections::VecDeque;
use std::task::Waker;

use crate::atomic::{fence, spin_loop, AtomicU32, Ordering};

/// Proof of a live waker registration, returned by
/// [`AsyncWaitCell::register`].
///
/// Deliberately not `Copy`/`Clone`: a token is redeemed exactly once, by
/// [`AsyncWaitCell::deregister`] (explicitly) or by a notifier (implicitly,
/// which `deregister` then reports as `false`).
#[derive(Debug)]
pub struct WaitToken {
    slot: u32,
    epoch: u32,
}

/// One registry slot. `epoch` distinguishes reuses of the slot: every
/// removal (consume or deregister) bumps it, invalidating outstanding
/// tokens that point here.
#[derive(Debug)]
struct Slot {
    epoch: u32,
    waker: Option<Waker>,
}

/// Waker storage: a slab of slots plus a FIFO of registration order.
///
/// `order` entries carry the epoch observed at registration; entries whose
/// epoch no longer matches their slot are stale (the registration was
/// deregistered) and are skipped during drains. This makes `deregister`
/// O(1) — it never has to search the queue.
#[derive(Debug)]
struct Registry {
    slots: Vec<Slot>,
    free: Vec<u32>,
    order: VecDeque<(u32, u32)>,
}

/// A waker-registry eventcount: the park/wake rendezvous for one wait
/// direction of one queue, async edition.
///
/// Shares the notifier fast path with [`crate::WaitCell`] — publication,
/// SeqCst fence, one relaxed load — so queues that carry both a blocking
/// and an async cell pay one extra fence+load per publish, nothing more.
#[derive(Debug)]
pub struct AsyncWaitCell {
    /// Wake generation. Bumped (Release) before each drain, mirroring the
    /// blocking cell's pre-`futex_wake` bump; here it is diagnostic (the
    /// registry lock prevents the park/wake race the futex compare closed).
    seq: AtomicU32,
    /// Number of live registrations. Notifiers skip the lock entirely
    /// while this reads zero — the queue hot path's only added cost.
    waiters: AtomicU32,
    /// Spinlock over `registry`. Held for O(1)-ish slot bookkeeping only;
    /// wakers are invoked (and dropped) outside it.
    lock: AtomicU32,
    registry: UnsafeCell<Registry>,
}

// SAFETY: `registry` is only touched while `lock` is held (acquired with an
// Acquire CAS, released with a Release store), and `Waker` is Send + Sync.
unsafe impl Send for AsyncWaitCell {}
unsafe impl Sync for AsyncWaitCell {}

impl AsyncWaitCell {
    /// An empty cell: no waiters, generation zero.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            seq: AtomicU32::new(0),
            waiters: AtomicU32::new(0),
            lock: AtomicU32::new(0),
            registry: UnsafeCell::new(Registry {
                slots: Vec::new(),
                free: Vec::new(),
                order: VecDeque::new(),
            }),
        }
    }

    /// Spins on the CAS itself (no test-and-test-and-set load): an RMW
    /// must read the latest value in coherence order, so the loop is
    /// guaranteed to observe an unlock — a plain relaxed re-check load may
    /// legally stay stale forever on the abstract machine (and does, in
    /// the loom model, where it shows up as a livelock).
    #[inline]
    fn lock(&self) -> RegistryGuard<'_> {
        loop {
            if self
                .lock
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return RegistryGuard { cell: self };
            }
            spin_loop();
        }
    }

    /// Registers `waker` and returns the token proving the registration.
    ///
    /// The caller MUST re-check the condition it is about to sleep on
    /// *after* this returns and before returning `Poll::Pending`; if the
    /// re-check finds the condition ready it must redeem the token with
    /// [`Self::deregister`] (honouring the handoff contract there). This
    /// is the waiter half of the SC-fence pair described in the module
    /// docs.
    #[must_use]
    pub fn register(&self, waker: &Waker) -> WaitToken {
        let token;
        {
            let guard = self.lock();
            let reg = guard.registry();
            let slot = match reg.free.pop() {
                Some(i) => i,
                None => {
                    let i = u32::try_from(reg.slots.len()).expect("waker slot overflow");
                    reg.slots.push(Slot {
                        epoch: 0,
                        waker: None,
                    });
                    i
                }
            };
            let s = &mut reg.slots[slot as usize];
            s.waker = Some(waker.clone());
            let epoch = s.epoch;
            reg.order.push_back((slot, epoch));
            // Inside the lock, *after* the waker is findable: a notifier
            // that observes this increment and takes the lock is
            // guaranteed to find the waker.
            self.waiters.fetch_add(1, Ordering::SeqCst);
            token = WaitToken { slot, epoch };
        }
        // An SC RMW alone does not order the caller's later non-SC
        // condition loads on the abstract machine; the fence does (same
        // fence as `WaitCell::begin_wait`).
        fence(Ordering::SeqCst);
        token
    }

    /// Replaces the waker of a still-live registration in place, keeping
    /// its FIFO position and without count churn.
    ///
    /// Returns `false` if the token is stale (consumed by a notifier or
    /// already deregistered) — the caller must then [`Self::register`]
    /// afresh and re-check its condition. This is the re-poll fast path:
    /// a future polled again with a different task waker updates rather
    /// than churning deregister/register.
    pub fn update(&self, token: &WaitToken, waker: &Waker) -> bool {
        let guard = self.lock();
        let reg = guard.registry();
        match reg.slots.get_mut(token.slot as usize) {
            Some(s) if s.epoch == token.epoch => {
                match &s.waker {
                    Some(w) if w.will_wake(waker) => {}
                    _ => s.waker = Some(waker.clone()),
                }
                true
            }
            _ => false,
        }
    }

    /// Redeems a token: removes the registration if it is still live.
    ///
    /// Returns `true` if the registration was removed here. Returns
    /// `false` if a notifier already consumed it — a wake was delivered
    /// (or is in flight) to the registered waker. **A caller that is
    /// abandoning its wait (future drop, cancellation) and gets `false`
    /// MUST call [`Self::notify`]`(1)` to pass the swallowed wake to the
    /// next waiter**; a caller that is completing its operation may keep
    /// the wake (it represents the very progress being consumed).
    pub fn deregister(&self, token: WaitToken) -> bool {
        let stale_waker;
        let removed;
        {
            let guard = self.lock();
            let reg = guard.registry();
            match reg.slots.get_mut(token.slot as usize) {
                Some(s) if s.epoch == token.epoch => {
                    stale_waker = s.waker.take();
                    s.epoch = s.epoch.wrapping_add(1);
                    reg.free.push(token.slot);
                    // The matching `order` entry goes stale via the epoch
                    // bump; drains skip it.
                    self.waiters.fetch_sub(1, Ordering::Release);
                    removed = true;
                }
                _ => {
                    stale_waker = None;
                    removed = false;
                }
            }
        }
        // Waker drop can run arbitrary code (task teardown); keep it out
        // of the spinlock.
        drop(stale_waker);
        removed
    }

    /// Wakes up to `n` registered waiters, in registration order.
    ///
    /// Call *after* publishing the condition the waiters poll; the SeqCst
    /// fence pairs with the one in [`Self::register`] exactly as in the
    /// blocking cell. Costs one fence + one relaxed load when nobody is
    /// registered.
    #[inline]
    pub fn notify(&self, n: usize) {
        fence(Ordering::SeqCst);
        if self.waiters.load(Ordering::Relaxed) != 0 {
            self.notify_slow(n);
        }
    }

    /// Wakes every registered waiter (disconnects, drops, `notify_all`
    /// semantics for rank-owned progress — see ALGORITHM.md §12).
    #[inline]
    pub fn notify_all(&self) {
        self.notify(usize::MAX);
    }

    #[cold]
    fn notify_slow(&self, n: usize) {
        let mut batch: Vec<Waker> = Vec::new();
        {
            let guard = self.lock();
            let reg = guard.registry();
            self.seq.fetch_add(1, Ordering::Release);
            while batch.len() < n {
                let Some((slot, epoch)) = reg.order.pop_front() else {
                    break;
                };
                let s = &mut reg.slots[slot as usize];
                if s.epoch != epoch {
                    // Stale entry left behind by a deregister; not a
                    // waiter.
                    continue;
                }
                if let Some(w) = s.waker.take() {
                    batch.push(w);
                }
                s.epoch = s.epoch.wrapping_add(1);
                reg.free.push(slot);
                self.waiters.fetch_sub(1, Ordering::Release);
            }
        }
        // Wakers may run arbitrary scheduler code; invoke outside the
        // lock so a waker that immediately re-registers cannot deadlock.
        for w in batch {
            w.wake();
        }
    }

    /// Current live-registration count (diagnostics and tests).
    #[must_use]
    pub fn waiters(&self) -> u32 {
        self.waiters.load(Ordering::Relaxed)
    }

    /// Current wake generation (diagnostics and tests).
    #[must_use]
    pub fn generation(&self) -> u32 {
        self.seq.load(Ordering::Relaxed)
    }
}

impl Default for AsyncWaitCell {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII spinlock guard; unlocks with a Release store.
struct RegistryGuard<'a> {
    cell: &'a AsyncWaitCell,
}

impl RegistryGuard<'_> {
    /// Access to the locked registry.
    ///
    /// Takes `&self` but hands out `&mut Registry`: sound because the
    /// guard proves exclusive ownership of the lock, and the lifetime is
    /// capped by the guard's borrow.
    #[allow(clippy::mut_from_ref)]
    fn registry(&self) -> &mut Registry {
        // SAFETY: the lock is held for the guard's lifetime, so no other
        // thread can observe or touch the registry.
        unsafe { &mut *self.cell.registry.get() }
    }
}

impl Drop for RegistryGuard<'_> {
    fn drop(&mut self) {
        self.cell.lock.store(0, Ordering::Release);
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
    use std::sync::Arc;
    use std::task::Wake;

    /// Test waker that counts its wakes.
    struct Counter(AtomicUsize);

    impl Wake for Counter {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, StdOrdering::SeqCst);
        }
    }

    fn counting_waker() -> (Arc<Counter>, Waker) {
        let c = Arc::new(Counter(AtomicUsize::new(0)));
        let w = Waker::from(Arc::clone(&c));
        (c, w)
    }

    #[test]
    fn notify_without_waiters_is_fence_and_load_only() {
        let cell = AsyncWaitCell::new();
        cell.notify(1);
        cell.notify_all();
        assert_eq!(cell.generation(), 0, "slow path must not run");
        assert_eq!(cell.waiters(), 0);
    }

    #[test]
    fn register_notify_wakes_and_consumes() {
        let cell = AsyncWaitCell::new();
        let (c, w) = counting_waker();
        let tok = cell.register(&w);
        assert_eq!(cell.waiters(), 1);
        cell.notify(1);
        assert_eq!(c.0.load(StdOrdering::SeqCst), 1);
        assert_eq!(cell.waiters(), 0);
        // The notifier consumed the registration.
        assert!(!cell.deregister(tok));
    }

    #[test]
    fn deregister_before_notify_removes_silently() {
        let cell = AsyncWaitCell::new();
        let (c, w) = counting_waker();
        let tok = cell.register(&w);
        assert!(cell.deregister(tok));
        assert_eq!(cell.waiters(), 0);
        cell.notify_all();
        assert_eq!(
            c.0.load(StdOrdering::SeqCst),
            0,
            "deregistered waker must not fire"
        );
    }

    #[test]
    fn wakes_in_fifo_registration_order() {
        let cell = AsyncWaitCell::new();
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));

        struct Tag(usize, Arc<std::sync::Mutex<Vec<usize>>>);
        impl Wake for Tag {
            fn wake(self: Arc<Self>) {
                self.1.lock().unwrap().push(self.0);
            }
        }

        let toks: Vec<_> = (0..3)
            .map(|i| cell.register(&Waker::from(Arc::new(Tag(i, Arc::clone(&order))))))
            .collect();
        cell.notify(1);
        cell.notify(1);
        cell.notify(1);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
        for t in toks {
            assert!(!cell.deregister(t));
        }
    }

    #[test]
    fn deregistered_entry_is_skipped_by_drain() {
        let cell = AsyncWaitCell::new();
        let (ca, wa) = counting_waker();
        let (cb, wb) = counting_waker();
        let ta = cell.register(&wa);
        let _tb = cell.register(&wb);
        assert!(cell.deregister(ta));
        cell.notify(1);
        assert_eq!(ca.0.load(StdOrdering::SeqCst), 0);
        assert_eq!(
            cb.0.load(StdOrdering::SeqCst),
            1,
            "drain must skip the stale entry"
        );
        assert_eq!(cell.waiters(), 0);
    }

    #[test]
    fn update_replaces_waker_in_place() {
        let cell = AsyncWaitCell::new();
        let (c1, w1) = counting_waker();
        let (c2, w2) = counting_waker();
        let tok = cell.register(&w1);
        assert!(cell.update(&tok, &w2));
        assert_eq!(cell.waiters(), 1, "update must not churn the count");
        cell.notify(1);
        assert_eq!(c1.0.load(StdOrdering::SeqCst), 0);
        assert_eq!(c2.0.load(StdOrdering::SeqCst), 1);
        // Consumed → update now fails, caller must re-register.
        assert!(!cell.update(&tok, &w1));
    }

    #[test]
    fn update_keeps_fifo_position() {
        let cell = AsyncWaitCell::new();
        let (ca, wa) = counting_waker();
        let (cb, wb) = counting_waker();
        let (ca2, wa2) = counting_waker();
        let ta = cell.register(&wa);
        let _tb = cell.register(&wb);
        assert!(cell.update(&ta, &wa2));
        cell.notify(1);
        // A registered first; its updated waker must win the first wake.
        assert_eq!(ca2.0.load(StdOrdering::SeqCst), 1);
        assert_eq!(ca.0.load(StdOrdering::SeqCst), 0);
        assert_eq!(cb.0.load(StdOrdering::SeqCst), 0);
    }

    #[test]
    fn notify_all_drains_everyone() {
        let cell = AsyncWaitCell::new();
        let counters: Vec<_> = (0..5).map(|_| counting_waker()).collect();
        let _toks: Vec<_> = counters.iter().map(|(_, w)| cell.register(w)).collect();
        cell.notify_all();
        for (c, _) in &counters {
            assert_eq!(c.0.load(StdOrdering::SeqCst), 1);
        }
        assert_eq!(cell.waiters(), 0);
    }

    #[test]
    fn slots_are_recycled() {
        let cell = AsyncWaitCell::new();
        let (_, w) = counting_waker();
        for _ in 0..64 {
            let t = cell.register(&w);
            assert!(cell.deregister(t));
        }
        // SAFETY-free observation via the public API: a fresh register
        // after heavy churn still works and the count is exact.
        let t = cell.register(&w);
        assert_eq!(cell.waiters(), 1);
        assert!(cell.deregister(t));
    }

    #[test]
    fn stale_token_from_recycled_slot_does_not_remove_new_registration() {
        let cell = AsyncWaitCell::new();
        let (_, w1) = counting_waker();
        let (c2, w2) = counting_waker();
        let t1 = cell.register(&w1);
        cell.notify(1); // consumes t1; slot goes back to the free list
        let _t2 = cell.register(&w2); // reuses the slot at a new epoch
        assert!(!cell.deregister(t1), "stale token must not match");
        assert_eq!(cell.waiters(), 1);
        cell.notify(1);
        assert_eq!(c2.0.load(StdOrdering::SeqCst), 1);
    }

    /// Cross-thread smoke: waiters park on a std condvar-ish loop via
    /// thread::park wakers while a publisher notifies; every waiter must
    /// observe the flag. Exercises the fence pair with real threads.
    #[test]
    fn threaded_publish_then_notify_wakes_parked_waiters() {
        use std::sync::atomic::AtomicBool;

        struct Unparker(std::thread::Thread);
        impl Wake for Unparker {
            fn wake(self: Arc<Self>) {
                self.0.unpark();
            }
        }

        let cell = Arc::new(AsyncWaitCell::new());
        let flag = Arc::new(AtomicBool::new(false));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let flag = Arc::clone(&flag);
                std::thread::spawn(move || {
                    let waker = Waker::from(Arc::new(Unparker(std::thread::current())));
                    loop {
                        if flag.load(StdOrdering::Acquire) {
                            return;
                        }
                        let tok = cell.register(&waker);
                        if flag.load(StdOrdering::Acquire) {
                            // Completing, not abandoning: keep the wake if
                            // it was consumed.
                            let _ = cell.deregister(tok);
                            return;
                        }
                        std::thread::park();
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        flag.store(true, StdOrdering::Release);
        cell.notify_all();
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(cell.waiters(), 0);
    }
}

/// Model checks. Run with `RUSTFLAGS="--cfg loom" cargo test -p ffq-sync
/// --release -- loom_`. A registered waker parks its thread on a *model*
/// futex with no timeout, so a lost wake is a hard model deadlock.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use crate::atomic::{AtomicU32, Ordering};
    use crate::futex::{futex_wait, futex_wake};
    use std::sync::Arc;
    use std::task::Wake;

    /// A waker whose wake sets a model word and futex-wakes it; the task
    /// "parks" by futex-waiting on the word. Lost wake ⇒ model deadlock.
    struct ModelWaker {
        signal: Arc<AtomicU32>,
    }

    impl Wake for ModelWaker {
        fn wake(self: Arc<Self>) {
            self.signal.store(1, Ordering::Release);
            futex_wake(&self.signal, u32::MAX, false);
        }
    }

    fn model_waker(signal: &Arc<AtomicU32>) -> std::task::Waker {
        std::task::Waker::from(Arc::new(ModelWaker {
            signal: Arc::clone(signal),
        }))
    }

    /// Parks until `signal` is raised, then lowers it.
    fn park_on(signal: &AtomicU32) {
        while signal.load(Ordering::Acquire) == 0 {
            futex_wait(signal, 0, None, false);
        }
        signal.store(0, Ordering::Relaxed);
    }

    /// The core protocol: publish → notify on one side, register →
    /// re-check → park on the other. Every interleaving must terminate.
    #[test]
    fn loom_async_waitcell_no_lost_wake() {
        ffq_loom::model(|| {
            let cell = Arc::new(AsyncWaitCell::new());
            let flag = Arc::new(AtomicU32::new(0));

            let producer = {
                let cell = Arc::clone(&cell);
                let flag = Arc::clone(&flag);
                ffq_loom::thread::spawn(move || {
                    flag.store(1, Ordering::Release);
                    cell.notify(1);
                })
            };

            let signal = Arc::new(AtomicU32::new(0));
            let waker = model_waker(&signal);
            loop {
                if flag.load(Ordering::Acquire) != 0 {
                    break;
                }
                let tok = cell.register(&waker);
                // The mandatory post-registration re-check.
                if flag.load(Ordering::Acquire) != 0 {
                    let _ = cell.deregister(tok);
                    break;
                }
                park_on(&signal);
            }
            producer.join().unwrap();
        });
    }

    /// Drop-handoff: waiter A cancels; if its registration was consumed it
    /// re-notifies, so waiter B's wake can never be swallowed. B parks
    /// unboundedly — a swallowed wake deadlocks the model.
    #[test]
    fn loom_async_waitcell_handoff_on_cancel() {
        ffq_loom::model(|| {
            let cell = Arc::new(AsyncWaitCell::new());

            let sig_a = Arc::new(AtomicU32::new(0));
            let tok_a = cell.register(&model_waker(&sig_a));

            let producer = {
                let cell = Arc::clone(&cell);
                ffq_loom::thread::spawn(move || {
                    cell.notify(1);
                })
            };

            let sig_b = Arc::new(AtomicU32::new(0));
            let _tok_b = cell.register(&model_waker(&sig_b));

            // A abandons its wait. FIFO order means any notify that ran so
            // far consumed A, not B; the handoff passes that wake on.
            if !cell.deregister(tok_a) {
                cell.notify(1);
            }

            // B must be woken in every interleaving.
            park_on(&sig_b);
            producer.join().unwrap();
        });
    }

    /// `notify_all` must drain every registration.
    #[test]
    fn loom_async_waitcell_notify_all_wakes_all() {
        ffq_loom::model(|| {
            let cell = Arc::new(AsyncWaitCell::new());
            let sig_a = Arc::new(AtomicU32::new(0));
            let sig_b = Arc::new(AtomicU32::new(0));
            let _ta = cell.register(&model_waker(&sig_a));
            let _tb = cell.register(&model_waker(&sig_b));

            let producer = {
                let cell = Arc::clone(&cell);
                ffq_loom::thread::spawn(move || {
                    cell.notify_all();
                })
            };

            park_on(&sig_a);
            park_on(&sig_b);
            producer.join().unwrap();
            assert_eq!(cell.waiters(), 0);
        });
    }

    /// The race the API contract exists to prevent: checking the condition
    /// only *before* registering. The producer can publish and notify in
    /// the check→register window, see `waiters == 0`, and skip the wake —
    /// the waiter then parks forever. Pinned as a must-deadlock model.
    #[test]
    #[should_panic(expected = "deadlock")]
    fn loom_async_waitcell_missing_recheck_deadlocks() {
        ffq_loom::model(|| {
            let cell = Arc::new(AsyncWaitCell::new());
            let flag = Arc::new(AtomicU32::new(0));

            let producer = {
                let cell = Arc::clone(&cell);
                let flag = Arc::clone(&flag);
                ffq_loom::thread::spawn(move || {
                    flag.store(1, Ordering::Release);
                    cell.notify(1);
                })
            };

            let signal = Arc::new(AtomicU32::new(0));
            let waker = model_waker(&signal);
            if flag.load(Ordering::Acquire) == 0 {
                let _tok = cell.register(&waker);
                // BUG under test: park without re-checking `flag`.
                park_on(&signal);
            }
            producer.join().unwrap();
        });
    }

    /// ALGORITHM.md §12's failure-path rule, as the circular wait it
    /// prevents. A consumer's *failed* dequeue is not a no-op: it claims
    /// a fresh head rank (advancing `head` — exactly what a producer
    /// parked on `not_full` is waiting to observe), finds nothing
    /// published, and then parks itself on `not_empty`. The rule: every
    /// failing attempt broadcasts to the *opposite* cell before waiting.
    /// Drop the consumer's `not_full.notify_all()` and both threads park
    /// on opposite cells, each holding the event the other needs — the
    /// model reports the deadlock in a handful of executions.
    #[test]
    fn loom_async_failed_attempt_notifies_opposite_cell() {
        ffq_loom::model(|| {
            let not_empty = Arc::new(AsyncWaitCell::new());
            let not_full = Arc::new(AsyncWaitCell::new());
            // The shared state a failed try_recv mutates: the head rank
            // counter a full producer's wait predicate reads.
            let head = Arc::new(AtomicU32::new(0));
            let published = Arc::new(AtomicU32::new(0));

            let consumer = {
                let (not_empty, not_full) = (Arc::clone(&not_empty), Arc::clone(&not_full));
                let (head, published) = (Arc::clone(&head), Arc::clone(&published));
                ffq_loom::thread::spawn(move || {
                    // Failed try_recv: claim a head rank, find the cell
                    // unpublished — Empty.
                    head.fetch_add(1, Ordering::AcqRel);
                    // The rule under test: the failure mutated state the
                    // opposite side may be parked on, so announce it.
                    not_full.notify_all();
                    // Then wait for a publish like any empty-handed
                    // receiver (register → re-check → park).
                    let signal = Arc::new(AtomicU32::new(0));
                    let waker = model_waker(&signal);
                    loop {
                        if published.load(Ordering::Acquire) != 0 {
                            break;
                        }
                        let tok = not_empty.register(&waker);
                        if published.load(Ordering::Acquire) != 0 {
                            let _ = not_empty.deregister(tok);
                            break;
                        }
                        park_on(&signal);
                    }
                })
            };

            // Producer blocked on a full ring: waits for `head` to
            // advance, then publishes and notifies its own opposite cell.
            let signal = Arc::new(AtomicU32::new(0));
            let waker = model_waker(&signal);
            loop {
                if head.load(Ordering::Acquire) != 0 {
                    break;
                }
                let tok = not_full.register(&waker);
                if head.load(Ordering::Acquire) != 0 {
                    let _ = not_full.deregister(tok);
                    break;
                }
                park_on(&signal);
            }
            published.store(1, Ordering::Release);
            not_empty.notify_all();
            consumer.join().unwrap();
        });
    }
}
