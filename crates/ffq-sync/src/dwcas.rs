//! Double-word (128-bit) compare-and-set.
//!
//! Algorithm 2 of the paper (FFQ-m) resolves producer/producer races with a
//! `double-compare-and-set` over the *adjacent* `rank` and `gap` fields of a
//! cell, noting that it "can be supported by simply using a 128-bit version
//! of the compare-and-set operation ... and placing the rank and gap fields
//! consecutively". LCRQ needs the same primitive for its `(safe:idx, value)`
//! cells.
//!
//! Rust has no stable `AtomicU128`, so [`DoubleWord`] provides exactly this:
//! a 16-byte-aligned pair of `i64` words with
//!
//! * single-word atomic loads/stores on each half,
//! * untorn snapshots of the pair, and
//! * an atomic [`compare_exchange`](DoubleWord::compare_exchange) over the
//!   whole pair.
//!
//! On `x86_64` with the `cmpxchg16b` feature (every CPU the paper targets)
//! the pair CAS is a native `lock cmpxchg16b`. On other targets — or the rare
//! x86_64 CPU without the feature — a lock-striped software emulation is
//! used; in that mode single-word *stores* also take the stripe lock so they
//! cannot interleave with an in-flight emulated CAS (real `cmpxchg16b` is
//! ordered against plain stores by cache coherence; a mutex-based emulation
//! is not, unless stores participate), and paired *reads* must go through
//! [`load_pair`](DoubleWord::load_pair) or
//! [`load_pair_untorn`](DoubleWord::load_pair_untorn) — two separate half
//! loads can observe a torn pair mid-CAS.
//!
//! All pair CAS operations behave as `SeqCst`: `lock`-prefixed instructions
//! are full fences on x86, and the emulation brackets every operation in a
//! mutex.
//!
//! Under `cfg(loom)` the pair is a single 128-bit model atomic, so pair-CAS
//! atomicity and per-half coherence hold by construction and the loom models
//! exercise the same call sites. (One modeling caveat: a half *load* under
//! loom acquires the clock of whichever pair store it reads, even if only
//! the other half changed — a slight over-synchronization that can hide at
//! most missing lo↔hi ordering, which the non-loom TSan job still covers.)

use crate::atomic::Ordering;

#[cfg(not(loom))]
use crate::atomic::AtomicI64;

#[cfg(all(not(loom), target_arch = "x86_64"))]
use crate::atomic::AtomicU8;

/// A 16-byte aligned, atomically CAS-able pair of `i64` words.
///
/// The first word is `lo` ("rank" in FFQ-m cells), the second `hi` ("gap").
#[cfg(not(loom))]
#[repr(C, align(16))]
pub struct DoubleWord {
    lo: AtomicI64,
    hi: AtomicI64,
}

/// Model build: the pair is one 128-bit model location.
#[cfg(loom)]
pub struct DoubleWord {
    pair: ffq_loom::sync::atomic::AtomicU128,
}

/// Number of stripe locks for the software fallback. Power of two.
#[cfg(not(loom))]
const STRIPES: usize = 64;

/// Stripe locks for the emulated path, shared process-wide. Collisions
/// between unrelated `DoubleWord`s only cost performance, never correctness.
#[cfg(not(loom))]
fn stripe(addr: usize) -> std::sync::MutexGuard<'static, ()> {
    static LOCKS: [std::sync::Mutex<()>; STRIPES] = [const { std::sync::Mutex::new(()) }; STRIPES];
    // The pair is 16-byte aligned, so the low 4 bits carry no information.
    LOCKS[(addr >> 4) % STRIPES]
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Whether the native 128-bit CAS is available on this CPU.
#[cfg(not(loom))]
#[inline]
pub fn has_native_dwcas() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // 0 = unknown, 1 = yes, 2 = no. Feature detection is cheap but not
        // free; cache it.
        static CACHE: AtomicU8 = AtomicU8::new(0);
        match CACHE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let yes = std::is_x86_feature_detected!("cmpxchg16b");
                CACHE.store(if yes { 1 } else { 2 }, Ordering::Relaxed);
                yes
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The model pair is always atomic; report "native" so no caller takes a
/// (non-modeled) stripe-lock slow path under loom.
#[cfg(loom)]
#[inline]
pub fn has_native_dwcas() -> bool {
    true
}

/// `lock cmpxchg16b` on the 16-byte pair at `ptr`.
///
/// Returns the value observed in memory and whether the exchange happened.
///
/// # Safety
/// `ptr` must be 16-byte aligned, valid for reads and writes, and the CPU
/// must support `cmpxchg16b` (check [`has_native_dwcas`]).
#[cfg(all(not(loom), target_arch = "x86_64"))]
#[inline]
unsafe fn cmpxchg16b(ptr: *mut i64, expected: (i64, i64), new: (i64, i64)) -> ((i64, i64), bool) {
    debug_assert_eq!(ptr as usize % 16, 0);
    let ok: u64;
    let out_lo: i64;
    let out_hi: i64;
    // `lock cmpxchg16b` compares rdx:rax with [ptr]; on match it stores
    // rcx:rbx, else it loads [ptr] into rdx:rax. ZF reports which happened,
    // and the lock prefix makes the instruction a full memory barrier.
    //
    // rbx cannot be named as an operand (LLVM reserves it), so the new-low
    // word is swapped in and out around the instruction. Every *other*
    // operand is pinned to a named register on purpose: despite the
    // reservation, LLVM has been observed allocating rbx to a `reg`-class
    // operand in frames that juggle rbx themselves (e.g. with an inlined
    // `cpuid` from feature detection), which turned a `[{ptr}]` form of
    // this asm into `cmpxchg16b [rbx]` — a wild write to the new-low
    // *value*. With named registers only, the allocator has nothing left
    // to misplace, and the xchg dance keeps rbx itself net-unchanged.
    unsafe {
        core::arch::asm!(
            "xor r8d, r8d",
            "xchg rbx, rsi",
            "lock cmpxchg16b [rdi]",
            "sete r8b",
            "xchg rbx, rsi",
            in("rdi") ptr,
            inout("rsi") new.0 => _,
            out("r8") ok,
            inout("rax") expected.0 => out_lo,
            inout("rdx") expected.1 => out_hi,
            in("rcx") new.1,
        );
    }
    ((out_lo, out_hi), ok != 0)
}

#[cfg(not(loom))]
impl DoubleWord {
    /// Creates a pair initialized to `(lo, hi)`.
    pub const fn new(lo: i64, hi: i64) -> Self {
        Self {
            lo: AtomicI64::new(lo),
            hi: AtomicI64::new(hi),
        }
    }

    /// Direct access to the low word as an `AtomicI64`.
    ///
    /// Intended for algorithms that never use the pair CAS on this value
    /// (e.g. LCRQ-style baselines): plain atomic operations on a half are
    /// only ordered against [`compare_exchange`](Self::compare_exchange)
    /// on the *native* path, not under the lock-striped emulation — mixing
    /// them there is a logic error. Callers that also pair-CAS must go
    /// through [`store_lo`](Self::store_lo)/[`store_hi`](Self::store_hi).
    /// Not available under `cfg(loom)` (the model pair has no per-half
    /// atomics); model-checked code uses the `DoubleWord` methods instead.
    #[inline]
    pub fn lo_atomic(&self) -> &AtomicI64 {
        &self.lo
    }

    /// Direct access to the high word (see [`lo_atomic`](Self::lo_atomic)).
    #[inline]
    pub fn hi_atomic(&self) -> &AtomicI64 {
        &self.hi
    }

    /// Atomically loads the low word.
    #[inline]
    pub fn load_lo(&self, order: Ordering) -> i64 {
        self.lo.load(order)
    }

    /// Atomically loads the high word.
    #[inline]
    pub fn load_hi(&self, order: Ordering) -> i64 {
        self.hi.load(order)
    }

    /// Atomically stores the low word.
    ///
    /// Ordered against concurrent [`compare_exchange`](Self::compare_exchange)
    /// calls: a pair CAS either sees the store or happens entirely before it.
    #[inline]
    pub fn store_lo(&self, value: i64, order: Ordering) {
        if has_native_dwcas() {
            self.lo.store(value, order);
        } else {
            let _g = stripe(self as *const _ as usize);
            self.lo.store(value, order);
        }
    }

    /// Atomically stores the high word (see [`store_lo`](Self::store_lo)).
    #[inline]
    pub fn store_hi(&self, value: i64, order: Ordering) {
        if has_native_dwcas() {
            self.hi.store(value, order);
        } else {
            let _g = stripe(self as *const _ as usize);
            self.hi.store(value, order);
        }
    }

    /// Stores the low word without stripe synchronization.
    ///
    /// Only for cells that are *never* pair-CASed (the single-producer
    /// variants): skips the emulation stripe lock that `store_lo` would
    /// take on CPUs without a native pair CAS.
    #[inline]
    pub fn store_lo_unpaired(&self, value: i64, order: Ordering) {
        self.lo.store(value, order);
    }

    /// Stores the high word without stripe synchronization (see
    /// [`store_lo_unpaired`](Self::store_lo_unpaired)).
    #[inline]
    pub fn store_hi_unpaired(&self, value: i64, order: Ordering) {
        self.hi.store(value, order);
    }

    /// Atomically swaps the low word without stripe synchronization,
    /// returning the previous value. Only for cells that are never
    /// pair-CASed (see [`store_lo_unpaired`](Self::store_lo_unpaired)).
    ///
    /// Unlike a plain store this is a read-modify-write, so it accepts
    /// `AcqRel`: the broadcast lane's seqlock writer uses exactly that to
    /// enter the odd write phase — the Acquire half keeps the payload
    /// stores that follow from being hoisted above the phase transition,
    /// which a Release-only store cannot guarantee (cf. the version
    /// `fetch_add` in [`crate::SeqLock::write_sync`]).
    #[inline]
    pub fn swap_lo_unpaired(&self, value: i64, order: Ordering) -> i64 {
        self.lo.swap(value, order)
    }

    /// Atomically loads both words as one 128-bit snapshot.
    #[inline]
    pub fn load_pair(&self) -> (i64, i64) {
        #[cfg(target_arch = "x86_64")]
        if has_native_dwcas() {
            // cmpxchg16b always returns the current memory value in rdx:rax.
            // Guess the current value so the (harmless) success path rewrites
            // the same bytes.
            let guess = (
                self.lo.load(Ordering::Relaxed),
                self.hi.load(Ordering::Relaxed),
            );
            let ptr = self as *const Self as *mut i64;
            // SAFETY: `self` is a live, 16-byte aligned DoubleWord and the
            // feature was detected.
            let (cur, _) = unsafe { cmpxchg16b(ptr, guess, guess) };
            return cur;
        }
        let _g = stripe(self as *const _ as usize);
        (
            self.lo.load(Ordering::Relaxed),
            self.hi.load(Ordering::Relaxed),
        )
    }

    /// Loads both words as an *untorn* pair with the given per-half
    /// ordering: two plain loads where halves are coherent against the pair
    /// CAS (native path), the stripe lock where they are not (emulation).
    ///
    /// Cheaper than [`load_pair`](Self::load_pair) on the native path (no
    /// `lock` instruction) but weaker: the two halves are each atomic and
    /// cannot be torn by an emulated CAS, yet the snapshot is not a single
    /// point in the pair's modification order. That is exactly what the
    /// FFQ consumer's paired `(rank, gap)` reads need — each half is
    /// re-validated by the protocol, but a torn emulated write must never
    /// be visible.
    #[inline]
    pub fn load_pair_untorn(&self, order: Ordering) -> (i64, i64) {
        if has_native_dwcas() {
            (self.lo.load(order), self.hi.load(order))
        } else {
            let _g = stripe(self as *const _ as usize);
            (self.lo.load(order), self.hi.load(order))
        }
    }

    /// Atomically replaces `(lo, hi)` with `new` iff it currently equals
    /// `expected`.
    ///
    /// Returns `Ok(())` on success and `Err(observed_pair)` on failure.
    /// Sequentially consistent in both outcomes.
    #[inline]
    pub fn compare_exchange(
        &self,
        expected: (i64, i64),
        new: (i64, i64),
    ) -> Result<(), (i64, i64)> {
        #[cfg(target_arch = "x86_64")]
        if has_native_dwcas() {
            let ptr = self as *const Self as *mut i64;
            // SAFETY: as in `load_pair`.
            let (cur, ok) = unsafe { cmpxchg16b(ptr, expected, new) };
            return if ok { Ok(()) } else { Err(cur) };
        }
        let _g = stripe(self as *const _ as usize);
        let cur = (
            self.lo.load(Ordering::Relaxed),
            self.hi.load(Ordering::Relaxed),
        );
        if cur == expected {
            self.lo.store(new.0, Ordering::Relaxed);
            self.hi.store(new.1, Ordering::Relaxed);
            // Emulated path: the mutex release publishes the stores.
            Ok(())
        } else {
            Err(cur)
        }
    }
}

#[cfg(loom)]
impl DoubleWord {
    #[inline]
    fn pack(lo: i64, hi: i64) -> u128 {
        (lo as u64 as u128) | ((hi as u64 as u128) << 64)
    }

    #[inline]
    fn unpack(v: u128) -> (i64, i64) {
        (v as u64 as i64, (v >> 64) as u64 as i64)
    }

    /// Creates a pair initialized to `(lo, hi)`.
    pub const fn new(lo: i64, hi: i64) -> Self {
        Self {
            pair: ffq_loom::sync::atomic::AtomicU128::new(
                (lo as u64 as u128) | ((hi as u64 as u128) << 64),
            ),
        }
    }

    /// Atomically loads the low word.
    #[inline]
    pub fn load_lo(&self, order: Ordering) -> i64 {
        Self::unpack(self.pair.load(order)).0
    }

    /// Atomically loads the high word.
    #[inline]
    pub fn load_hi(&self, order: Ordering) -> i64 {
        Self::unpack(self.pair.load(order)).1
    }

    /// Atomically stores the low word (modeled as a pair RMW so the other
    /// half keeps per-half coherence).
    #[inline]
    pub fn store_lo(&self, value: i64, order: Ordering) {
        self.pair.rmw_update(order, |cur| {
            let (_, hi) = Self::unpack(cur);
            Self::pack(value, hi)
        });
    }

    /// Atomically stores the high word.
    #[inline]
    pub fn store_hi(&self, value: i64, order: Ordering) {
        self.pair.rmw_update(order, |cur| {
            let (lo, _) = Self::unpack(cur);
            Self::pack(lo, value)
        });
    }

    /// Same as [`store_lo`](Self::store_lo) under the model.
    #[inline]
    pub fn store_lo_unpaired(&self, value: i64, order: Ordering) {
        self.store_lo(value, order);
    }

    /// Same as [`store_hi`](Self::store_hi) under the model.
    #[inline]
    pub fn store_hi_unpaired(&self, value: i64, order: Ordering) {
        self.store_hi(value, order);
    }

    /// Atomic low-word swap (modeled as a pair RMW), returning the
    /// previous low word.
    #[inline]
    pub fn swap_lo_unpaired(&self, value: i64, order: Ordering) -> i64 {
        let prev = self.pair.rmw_update(order, |cur| {
            let (_, hi) = Self::unpack(cur);
            Self::pack(value, hi)
        });
        Self::unpack(prev).0
    }

    /// Atomically loads both words as one snapshot.
    #[inline]
    pub fn load_pair(&self) -> (i64, i64) {
        Self::unpack(self.pair.load(Ordering::SeqCst))
    }

    /// Untorn pair load (a single model location is always untorn).
    #[inline]
    pub fn load_pair_untorn(&self, order: Ordering) -> (i64, i64) {
        Self::unpack(self.pair.load(order))
    }

    /// Atomic pair compare-exchange (SeqCst both outcomes, like native).
    #[inline]
    pub fn compare_exchange(
        &self,
        expected: (i64, i64),
        new: (i64, i64),
    ) -> Result<(), (i64, i64)> {
        match self.pair.compare_exchange(
            Self::pack(expected.0, expected.1),
            Self::pack(new.0, new.1),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => Ok(()),
            Err(cur) => Err(Self::unpack(cur)),
        }
    }
}

impl core::fmt::Debug for DoubleWord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (lo, hi) = self.load_pair();
        f.debug_struct("DoubleWord")
            .field("lo", &lo)
            .field("hi", &hi)
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn layout_is_16_byte_aligned_pair() {
        assert_eq!(core::mem::size_of::<DoubleWord>(), 16);
        assert_eq!(core::mem::align_of::<DoubleWord>(), 16);
    }

    #[test]
    fn single_thread_cas_semantics() {
        let d = DoubleWord::new(1, 2);
        assert_eq!(d.load_pair(), (1, 2));
        assert_eq!(d.compare_exchange((0, 0), (9, 9)), Err((1, 2)));
        assert_eq!(d.compare_exchange((1, 2), (3, 4)), Ok(()));
        assert_eq!(d.load_pair(), (3, 4));
        assert_eq!(d.load_lo(Ordering::Relaxed), 3);
        assert_eq!(d.load_hi(Ordering::Relaxed), 4);
        assert_eq!(d.load_pair_untorn(Ordering::Acquire), (3, 4));
    }

    #[test]
    fn half_word_stores_visible_to_cas() {
        let d = DoubleWord::new(-1, -1);
        d.store_lo(7, Ordering::SeqCst);
        d.store_hi(8, Ordering::SeqCst);
        assert_eq!(d.compare_exchange((7, 8), (0, 0)), Ok(()));
    }

    #[test]
    fn unpaired_stores_visible_to_unpaired_reads() {
        let d = DoubleWord::new(-1, -1);
        d.store_lo_unpaired(5, Ordering::Release);
        d.store_hi_unpaired(6, Ordering::Release);
        assert_eq!(d.load_pair_untorn(Ordering::Acquire), (5, 6));
    }

    #[test]
    fn swap_lo_returns_previous_and_keeps_hi() {
        let d = DoubleWord::new(3, 9);
        assert_eq!(d.swap_lo_unpaired(7, Ordering::AcqRel), 3);
        assert_eq!(d.load_lo(Ordering::Relaxed), 7);
        assert_eq!(d.load_hi(Ordering::Relaxed), 9, "hi word untouched");
    }

    #[test]
    fn native_detection_is_stable() {
        let a = has_native_dwcas();
        let b = has_native_dwcas();
        assert_eq!(a, b);
        // This repository's CI target is x86_64; make regressions loud there.
        #[cfg(target_arch = "x86_64")]
        assert!(a, "cmpxchg16b expected on x86_64 test hosts");
    }

    /// Writers only ever install pairs with lo == hi; readers must never
    /// observe a torn pair.
    #[test]
    fn no_torn_pairs_under_contention() {
        let d = Arc::new(DoubleWord::new(0, 0));
        let stop = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for t in 0..2 {
            let d = Arc::clone(&d);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = t as i64;
                while stop.load(Ordering::Relaxed) == 0 {
                    let cur = d.load_pair();
                    let _ = d.compare_exchange(cur, (i, i));
                    i += 2;
                }
            }));
        }
        for _ in 0..100_000 {
            let (lo, hi) = d.load_pair();
            assert_eq!(lo, hi, "torn 128-bit read: ({lo}, {hi})");
        }
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Concurrent CAS-increments of both halves must not lose updates.
    #[test]
    fn cas_increments_lose_nothing() {
        const THREADS: usize = 4;
        const PER_THREAD: i64 = 20_000;
        let d = Arc::new(DoubleWord::new(0, 0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        loop {
                            let cur = d.load_pair();
                            if d.compare_exchange(cur, (cur.0 + 1, cur.1 + 2)).is_ok() {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = THREADS as i64 * PER_THREAD;
        assert_eq!(d.load_pair(), (total, 2 * total));
    }
}
