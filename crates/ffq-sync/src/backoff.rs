/// One burst of `n` spin-loop hints. Under loom a burst collapses to a
/// single model yield: the hint count is a real-time tuning knob with no
/// schedule-visible meaning, and a yield is what lets the model hand the
/// CPU to the thread being waited on.
#[inline]
fn spin_burst(n: u32) {
    #[cfg(loom)]
    {
        let _ = n;
        crate::atomic::spin_loop();
    }
    #[cfg(not(loom))]
    for _ in 0..n {
        core::hint::spin_loop();
    }
}

/// Bounded exponential back-off for spin loops.
///
/// Algorithm 1 line 32 of the paper has a consumer "back off" while the
/// producer is still writing the cell it was assigned. This type implements
/// the usual two-phase policy: a few rounds of exponentially growing
/// `spin_loop` hints (which keep the hardware thread available to its
/// sibling), then `yield_now` once spinning has clearly stopped paying off —
/// essential on over-subscribed machines where the thread we wait for may not
/// even be scheduled.
///
/// Both phase boundaries are tunable via [`Backoff::with_limits`]; the
/// yield limit is the *snooze threshold* consumed by
/// [`WaitStrategy`](crate::WaitStrategy), which escalates from this ladder
/// into bounded futex parks once [`is_parkable`](Self::is_parkable) turns
/// true.
pub struct Backoff {
    step: u32,
    spin_limit: u32,
    yield_limit: u32,
}

impl Backoff {
    /// Default spin rounds before the first `2^SPIN_LIMIT`-iteration spin is
    /// reached.
    const SPIN_LIMIT: u32 = 6;
    /// Default steps (including spin steps) before every wait becomes a
    /// yield.
    const YIELD_LIMIT: u32 = 10;
    /// Hard cap on the spin shift: a single burst never exceeds `2^16`
    /// `spin_loop` hints no matter how the limits are tuned, so the
    /// exponential phase cannot grow into a multi-millisecond busy stall
    /// (or overflow the `1 << step` shift).
    const MAX_SPIN_SHIFT: u32 = 16;

    /// Creates a fresh back-off with zero accumulated delay and the default
    /// phase limits.
    pub const fn new() -> Self {
        Self::with_limits(Self::SPIN_LIMIT, Self::YIELD_LIMIT)
    }

    /// Creates a back-off with explicit phase boundaries: busy-spin while
    /// `step <= spin_limit`, yield while `step <= yield_limit`, report
    /// [`is_parkable`](Self::is_parkable) past that.
    ///
    /// `spin_limit` is clamped to `2^16` iterations per burst and
    /// `yield_limit` is raised to at least `spin_limit`, so every
    /// configuration yields a sane spin → yield → parkable progression.
    pub const fn with_limits(spin_limit: u32, yield_limit: u32) -> Self {
        let spin_limit = if spin_limit > Self::MAX_SPIN_SHIFT {
            Self::MAX_SPIN_SHIFT
        } else {
            spin_limit
        };
        let yield_limit = if yield_limit < spin_limit {
            spin_limit
        } else {
            yield_limit
        };
        Self {
            step: 0,
            spin_limit,
            yield_limit,
        }
    }

    /// Resets the accumulated delay to zero.
    ///
    /// Call after making progress, so the next contention episode starts with
    /// short waits again.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Waits a little longer than the previous call did.
    pub fn wait(&mut self) {
        if self.step <= self.spin_limit {
            spin_burst(1u32 << self.step);
        } else {
            crate::atomic::yield_now();
        }
        if self.step <= self.yield_limit {
            self.step += 1;
        }
    }

    /// Like [`wait`](Self::wait) but never yields to the OS — for callers
    /// that must stay on-CPU (e.g. latency measurements).
    pub fn spin(&mut self) {
        let cap = self.step.min(self.spin_limit);
        spin_burst(1u32 << cap);
        if self.step <= self.yield_limit {
            self.step += 1;
        }
    }

    /// True once the back-off has escalated past pure spinning; callers that
    /// cannot park should start yielding or return `WouldBlock` here.
    pub fn is_completed(&self) -> bool {
        self.step > self.spin_limit
    }

    /// True once the back-off has escalated past yielding too — the snooze
    /// threshold. [`WaitStrategy`](crate::WaitStrategy) parks the thread on
    /// a futex at this point; callers without a futex word can sleep.
    pub fn is_parkable(&self) -> bool {
        self.step > self.yield_limit
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_then_saturates() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=Backoff::SPIN_LIMIT {
            b.wait();
        }
        assert!(b.is_completed());
        // Saturates instead of overflowing.
        for _ in 0..100 {
            b.wait();
        }
        assert_eq!(b.step, Backoff::YIELD_LIMIT + 1);
    }

    #[test]
    fn reset_restarts_spin_phase() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.wait();
        }
        b.reset();
        assert!(!b.is_completed());
        assert_eq!(b.step, 0);
    }

    #[test]
    fn spin_never_panics_and_advances() {
        let mut b = Backoff::new();
        for _ in 0..50 {
            b.spin();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn phase_transitions_follow_the_limits() {
        let mut b = Backoff::with_limits(2, 4);
        // Steps 0..=2: spinning.
        for step in 0..=2u32 {
            assert!(!b.is_completed(), "step {step} should still spin");
            assert!(!b.is_parkable());
            b.wait();
        }
        // Steps 3..=4: yielding.
        for step in 3..=4u32 {
            assert!(b.is_completed(), "step {step} should yield");
            assert!(!b.is_parkable(), "step {step} should not park yet");
            b.wait();
        }
        // Step 5 and beyond: parkable, saturated.
        assert!(b.is_parkable());
        b.wait();
        assert_eq!(b.step, 5);
        assert!(b.is_parkable());
    }

    #[test]
    fn spin_growth_is_capped() {
        // A pathological spin limit must clamp to MAX_SPIN_SHIFT rather
        // than overflow `1 << step` or stall for seconds.
        let mut b = Backoff::with_limits(40, 50);
        assert_eq!(b.spin_limit, Backoff::MAX_SPIN_SHIFT);
        for _ in 0..60 {
            b.wait();
        }
        assert_eq!(b.step, 51);
        assert!(b.is_parkable());
    }

    #[test]
    fn yield_limit_never_undercuts_spin_limit() {
        let b = Backoff::with_limits(8, 3);
        assert_eq!(b.spin_limit, 8);
        assert_eq!(b.yield_limit, 8);
    }
}
