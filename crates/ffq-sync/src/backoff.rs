use core::hint;

/// Bounded exponential back-off for spin loops.
///
/// Algorithm 1 line 32 of the paper has a consumer "back off" while the
/// producer is still writing the cell it was assigned. This type implements
/// the usual two-phase policy: a few rounds of exponentially growing
/// `spin_loop` hints (which keep the hardware thread available to its
/// sibling), then `yield_now` once spinning has clearly stopped paying off —
/// essential on over-subscribed machines where the thread we wait for may not
/// even be scheduled.
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Spin rounds before the first `2^SPIN_LIMIT`-iteration spin is reached.
    const SPIN_LIMIT: u32 = 6;
    /// Steps (including spin steps) before every wait becomes a yield.
    const YIELD_LIMIT: u32 = 10;

    /// Creates a fresh back-off with zero accumulated delay.
    pub const fn new() -> Self {
        Self { step: 0 }
    }

    /// Resets the accumulated delay to zero.
    ///
    /// Call after making progress, so the next contention episode starts with
    /// short waits again.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Waits a little longer than the previous call did.
    pub fn wait(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// Like [`wait`](Self::wait) but never yields to the OS — for callers
    /// that must stay on-CPU (e.g. latency measurements).
    pub fn spin(&mut self) {
        let cap = self.step.min(Self::SPIN_LIMIT);
        for _ in 0..(1u32 << cap) {
            hint::spin_loop();
        }
        if self.step <= Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// True once the back-off has escalated past pure spinning; callers that
    /// can park or return `WouldBlock` should do so at this point.
    pub fn is_completed(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_then_saturates() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=Backoff::SPIN_LIMIT {
            b.wait();
        }
        assert!(b.is_completed());
        // Saturates instead of overflowing.
        for _ in 0..100 {
            b.wait();
        }
        assert_eq!(b.step, Backoff::YIELD_LIMIT + 1);
    }

    #[test]
    fn reset_restarts_spin_phase() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.wait();
        }
        b.reset();
        assert!(!b.is_completed());
        assert_eq!(b.step, 0);
    }

    #[test]
    fn spin_never_panics_and_advances() {
        let mut b = Backoff::new();
        for _ in 0..50 {
            b.spin();
        }
        assert!(b.is_completed());
    }
}
