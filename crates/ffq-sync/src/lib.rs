//! Low-level synchronization primitives shared by the FFQ reproduction.
//!
//! This crate provides the building blocks that the paper's algorithms assume
//! exist on the target hardware:
//!
//! * [`CachePadded`] — cache-line isolation for shared variables (§IV-A of the
//!   paper, "dedicated cache lines").
//! * [`Backoff`] — the bounded exponential back-off consumers use while a
//!   producer is still writing a cell (Algorithm 1, line 32).
//! * [`dwcas`] — the 128-bit *double-word compare-and-set* that FFQ-m
//!   (Algorithm 2) and LCRQ rely on. On `x86_64` this is a native
//!   `lock cmpxchg16b`; elsewhere a documented lock-striped emulation.
//! * [`SeqLock`] — a sequence lock for cheap consistent snapshots of small
//!   plain-data records (used for statistics snapshots).
//! * [`WaitCell`] / [`WaitStrategy`] — the adaptive spin-then-park waiting
//!   layer (futex-backed eventcount) that turns the paper's busy-wait loops
//!   into blocking operations without touching the queue protocol. See
//!   [`eventcount`] for the protocol and its memory-ordering argument.
//! * [`AsyncWaitCell`] — the waker-registry twin of [`WaitCell`] for async
//!   callers: same notifier fast path and fence protocol, wakers in a slot
//!   list instead of threads on a futex. See [`async_eventcount`].
//! * [`EraRegistry`] — per-handle era slots for deferred reclamation of the
//!   unbounded tier's ring segments. See [`epoch`].

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod async_eventcount;
pub mod atomic;
mod backoff;
pub mod dwcas;
pub mod epoch;
pub mod eventcount;
pub mod futex;
pub mod lifecycle;
mod padded;
mod seqlock;

pub use async_eventcount::{AsyncWaitCell, WaitToken};
pub use backoff::Backoff;
pub use dwcas::DoubleWord;
pub use epoch::{EraRegistry, ERA_IDLE};
pub use eventcount::{WaitCell, WaitConfig, WaitRound, WaitStrategy};
pub use futex::{futex_wait, futex_wake};
pub use padded::CachePadded;
pub use seqlock::{read_racy, write_racy, SeqLock};

/// The cache-line granularity assumed throughout the reproduction.
///
/// 64 bytes on every x86_64 and POWER8 system the paper evaluates. Padding
/// types round up to 128 bytes because Intel's spatial prefetcher pulls
/// cache lines in aligned pairs, so 128-byte isolation is what actually
/// prevents cross-thread interference on the paper's Skylake/Haswell hosts.
pub const CACHE_LINE: usize = 64;
