use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicU64, Ordering};

/// A sequence lock for single-writer / multi-reader snapshots of small
/// `Copy` records.
///
/// Writers increment a version counter to odd before mutating and to even
/// after; readers retry whenever they observe an odd version or a version
/// change across their read. Readers never block the writer — exactly the
/// property needed for statistics snapshots taken while a benchmark producer
/// keeps running.
///
/// Only one writer may call [`write`](Self::write) at a time; this is
/// enforced by requiring `&mut self` or external serialization via
/// [`write_sync`](Self::write_sync).
pub struct SeqLock<T: Copy> {
    version: AtomicU64,
    data: UnsafeCell<T>,
}

// SAFETY: readers copy the data out and validate with the version protocol;
// writers are externally serialized. `T: Copy` rules out types with drop glue
// or interior references that a torn read could corrupt — a torn read of plain
// old data is discarded by the version check before being returned.
unsafe impl<T: Copy + Send> Send for SeqLock<T> {}
unsafe impl<T: Copy + Send> Sync for SeqLock<T> {}

impl<T: Copy> SeqLock<T> {
    /// Creates a sequence lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            version: AtomicU64::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Takes a consistent snapshot, retrying while a write is in flight.
    pub fn read(&self) -> T {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 % 2 == 1 {
                core::hint::spin_loop();
                continue;
            }
            // SAFETY: the copy may race with a writer, but `T: Copy` means a
            // torn copy is still a valid bit pattern to *produce*; it is only
            // *returned* if the version check below proves no writer ran.
            let value = unsafe { core::ptr::read_volatile(self.data.get()) };
            // The Acquire fence orders the volatile read before the second
            // version load.
            core::sync::atomic::fence(Ordering::Acquire);
            let v2 = self.version.load(Ordering::Relaxed);
            if v1 == v2 {
                return value;
            }
        }
    }

    /// Mutates the record through `f`. Requires exclusive access.
    pub fn write(&mut self, f: impl FnOnce(&mut T)) {
        // &mut self: no concurrent writer, readers still use the protocol.
        self.write_sync(f);
    }

    /// Mutates the record through `f` from a shared reference.
    ///
    /// # Contract
    /// The caller must ensure writers are serialized (e.g. only the producer
    /// thread ever writes). Concurrent `write_sync` calls are a logic error
    /// and may corrupt the version protocol; a debug assertion catches the
    /// common case.
    pub fn write_sync(&self, f: impl FnOnce(&mut T)) {
        let v = self.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(v.is_multiple_of(2), "concurrent SeqLock writers detected");
        // SAFETY: writers are serialized per the contract; readers validate.
        f(unsafe { &mut *self.data.get() });
        self.version.store(v.wrapping_add(2), Ordering::Release);
    }
}

impl<T: Copy + Default> Default for SeqLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Copies a `T`-sized record out of memory a concurrent seqlock writer may
/// be overwriting, without a formal data race.
///
/// [`SeqLock::read`] above uses `read_volatile`, whose race with the
/// writer's plain stores is undefined behavior that sanitizers rightly
/// flag. The broadcast lane runs its payload reads under Miri and TSan, so
/// this helper moves the bytes through **relaxed atomic chunks** instead:
/// 8-byte chunks where the address allows, byte chunks for the remainder.
/// Both sides derive identical chunk boundaries from the same base address,
/// so paired [`write_racy`] stores and these loads are same-size atomic
/// accesses on every byte.
///
/// The result is returned still wrapped in `MaybeUninit`: a torn copy may
/// not be a valid `T` bit pattern, so the caller must only `assume_init`
/// after its seqlock version check proves no writer interleaved.
///
/// Under `cfg(loom)` this is a plain `read` — model executions are
/// serialized, so a "torn" read simply observes the newest value and the
/// caller's version check discards it; loom's value for the seqlock
/// protocol is in the control-word orderings, which stay fully modeled.
///
/// # Safety
/// `src` is valid for reads of `size_of::<T>()` bytes, and every byte in
/// that range was initialized at some point (the seqlock protocol
/// guarantees this: readers only copy after observing a published
/// version).
pub unsafe fn read_racy<T: Copy>(src: *const T) -> core::mem::MaybeUninit<T> {
    #[cfg(loom)]
    // SAFETY: forwarded from the caller; loom executions are serialized so
    // the plain read cannot tear mid-instruction.
    unsafe {
        core::ptr::read(src as *const core::mem::MaybeUninit<T>)
    }
    #[cfg(not(loom))]
    {
        let mut out = core::mem::MaybeUninit::<T>::uninit();
        let mut s = src as *const u8;
        let mut d = out.as_mut_ptr() as *mut u8;
        let mut n = core::mem::size_of::<T>();
        // SAFETY: stays inside the `n`-byte source and destination ranges;
        // the 8-byte chunks are taken only at 8-aligned source addresses.
        unsafe {
            while n >= 8 && (s as usize).is_multiple_of(8) {
                let v = (*(s as *const AtomicU64)).load(Ordering::Relaxed);
                (d as *mut u64).write_unaligned(v);
                s = s.add(8);
                d = d.add(8);
                n -= 8;
            }
            while n > 0 {
                *d = (*(s as *const core::sync::atomic::AtomicU8)).load(Ordering::Relaxed);
                s = s.add(1);
                d = d.add(1);
                n -= 1;
            }
        }
        out
    }
}

/// The writer-side counterpart of [`read_racy`]: stores `value` into `dst`
/// through relaxed atomic chunks so concurrent [`read_racy`] readers race
/// benignly instead of undefinedly. Chunk boundaries match `read_racy`'s
/// exactly (same base-address rule).
///
/// # Safety
/// `dst` is valid for writes of `size_of::<T>()` bytes and the seqlock
/// protocol serializes writers (this helper adds no write/write
/// synchronization).
pub unsafe fn write_racy<T: Copy>(dst: *mut T, value: T) {
    #[cfg(loom)]
    // SAFETY: forwarded from the caller.
    unsafe {
        core::ptr::write(dst, value)
    }
    #[cfg(not(loom))]
    {
        let src = &value as *const T;
        let mut s = src as *const u8;
        let mut d = dst as *mut u8;
        let mut n = core::mem::size_of::<T>();
        // SAFETY: stays inside the `n`-byte ranges; 8-byte chunks only at
        // 8-aligned destination addresses (src is a local, read plainly).
        unsafe {
            while n >= 8 && (d as usize).is_multiple_of(8) {
                let v = (s as *const u64).read_unaligned();
                (*(d as *const AtomicU64)).store(v, Ordering::Relaxed);
                s = s.add(8);
                d = d.add(8);
                n -= 8;
            }
            while n > 0 {
                (*(d as *const core::sync::atomic::AtomicU8)).store(*s, Ordering::Relaxed);
                s = s.add(1);
                d = d.add(1);
                n -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn read_returns_initial_value() {
        let l = SeqLock::new((1u64, 2u64));
        assert_eq!(l.read(), (1, 2));
    }

    #[test]
    fn racy_copy_round_trips_mixed_sizes() {
        // Word-multiple, sub-word, and odd-tail sizes all round-trip, since
        // the chunking degrades from 8-byte to byte loads as needed.
        let mut a = [0u64; 4];
        unsafe { write_racy(&mut a, [1u64, 2, 3, 4]) };
        assert_eq!(unsafe { read_racy(&a).assume_init() }, [1u64, 2, 3, 4]);

        let mut b = 7u32;
        unsafe { write_racy(&mut b, 99u32) };
        assert_eq!(unsafe { read_racy(&b).assume_init() }, 99);

        let mut c = [0u8; 13];
        unsafe { write_racy(&mut c, *b"hello, world!") };
        assert_eq!(&unsafe { read_racy(&c).assume_init() }, b"hello, world!");
    }

    /// Concurrent racy reads against a racy writer must be sanitizer-clean
    /// (every byte moves through same-size atomic accesses) and, combined
    /// with a version check, must never surface a torn record.
    #[test]
    fn racy_copy_with_version_check_never_tears() {
        struct SharedArr(UnsafeCell<[u64; 8]>);
        // SAFETY: all cross-thread access goes through the racy-copy
        // helpers, whose accesses are atomic per byte.
        unsafe impl Sync for SharedArr {}
        let version = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let data = Arc::new(SharedArr(UnsafeCell::new([0u64; 8])));
        let stop = Arc::new(AtomicBool::new(false));
        let w = {
            let version = Arc::clone(&version);
            let data = Arc::clone(&data);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    version.fetch_add(1, Ordering::AcqRel);
                    unsafe { write_racy(data.0.get(), [i; 8]) };
                    version.fetch_add(1, Ordering::Release);
                }
            })
        };
        for _ in 0..100_000 {
            let v1 = version.load(Ordering::Acquire);
            let copy = unsafe { read_racy(data.0.get() as *const [u64; 8]) };
            core::sync::atomic::fence(Ordering::Acquire);
            let v2 = version.load(Ordering::Relaxed);
            if v1 == v2 && v1.is_multiple_of(2) {
                let arr = unsafe { copy.assume_init() };
                assert!(arr.windows(2).all(|w| w[0] == w[1]), "torn read: {arr:?}");
            }
        }
        stop.store(true, Ordering::Relaxed);
        w.join().unwrap();
    }

    #[test]
    fn write_is_visible() {
        let mut l = SeqLock::new(0u64);
        l.write(|v| *v = 99);
        assert_eq!(l.read(), 99);
    }

    /// The writer maintains the invariant a == b; readers must never see it
    /// violated even under heavy concurrent snapshots.
    #[test]
    fn readers_never_observe_torn_writes() {
        #[derive(Clone, Copy)]
        struct Pair {
            a: u64,
            b: u64,
            // Padding widens the race window for torn copies.
            _pad: [u64; 14],
        }
        let lock = Arc::new(SeqLock::new(Pair {
            a: 0,
            b: 0,
            _pad: [0; 14],
        }));
        let stop = Arc::new(AtomicBool::new(false));

        let w = {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    lock.write_sync(|p| {
                        i += 1;
                        p.a = i;
                        p.b = i;
                    });
                }
            })
        };
        for _ in 0..200_000 {
            let p = lock.read();
            assert_eq!(p.a, p.b);
        }
        stop.store(true, Ordering::Relaxed);
        w.join().unwrap();
    }
}
