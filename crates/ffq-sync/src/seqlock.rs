use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicU64, Ordering};

/// A sequence lock for single-writer / multi-reader snapshots of small
/// `Copy` records.
///
/// Writers increment a version counter to odd before mutating and to even
/// after; readers retry whenever they observe an odd version or a version
/// change across their read. Readers never block the writer — exactly the
/// property needed for statistics snapshots taken while a benchmark producer
/// keeps running.
///
/// Only one writer may call [`write`](Self::write) at a time; this is
/// enforced by requiring `&mut self` or external serialization via
/// [`write_sync`](Self::write_sync).
pub struct SeqLock<T: Copy> {
    version: AtomicU64,
    data: UnsafeCell<T>,
}

// SAFETY: readers copy the data out and validate with the version protocol;
// writers are externally serialized. `T: Copy` rules out types with drop glue
// or interior references that a torn read could corrupt — a torn read of plain
// old data is discarded by the version check before being returned.
unsafe impl<T: Copy + Send> Send for SeqLock<T> {}
unsafe impl<T: Copy + Send> Sync for SeqLock<T> {}

impl<T: Copy> SeqLock<T> {
    /// Creates a sequence lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            version: AtomicU64::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Takes a consistent snapshot, retrying while a write is in flight.
    pub fn read(&self) -> T {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 % 2 == 1 {
                core::hint::spin_loop();
                continue;
            }
            // SAFETY: the copy may race with a writer, but `T: Copy` means a
            // torn copy is still a valid bit pattern to *produce*; it is only
            // *returned* if the version check below proves no writer ran.
            let value = unsafe { core::ptr::read_volatile(self.data.get()) };
            // The Acquire fence orders the volatile read before the second
            // version load.
            core::sync::atomic::fence(Ordering::Acquire);
            let v2 = self.version.load(Ordering::Relaxed);
            if v1 == v2 {
                return value;
            }
        }
    }

    /// Mutates the record through `f`. Requires exclusive access.
    pub fn write(&mut self, f: impl FnOnce(&mut T)) {
        // &mut self: no concurrent writer, readers still use the protocol.
        self.write_sync(f);
    }

    /// Mutates the record through `f` from a shared reference.
    ///
    /// # Contract
    /// The caller must ensure writers are serialized (e.g. only the producer
    /// thread ever writes). Concurrent `write_sync` calls are a logic error
    /// and may corrupt the version protocol; a debug assertion catches the
    /// common case.
    pub fn write_sync(&self, f: impl FnOnce(&mut T)) {
        let v = self.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(v.is_multiple_of(2), "concurrent SeqLock writers detected");
        // SAFETY: writers are serialized per the contract; readers validate.
        f(unsafe { &mut *self.data.get() });
        self.version.store(v.wrapping_add(2), Ordering::Release);
    }
}

impl<T: Copy + Default> Default for SeqLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn read_returns_initial_value() {
        let l = SeqLock::new((1u64, 2u64));
        assert_eq!(l.read(), (1, 2));
    }

    #[test]
    fn write_is_visible() {
        let mut l = SeqLock::new(0u64);
        l.write(|v| *v = 99);
        assert_eq!(l.read(), 99);
    }

    /// The writer maintains the invariant a == b; readers must never see it
    /// violated even under heavy concurrent snapshots.
    #[test]
    fn readers_never_observe_torn_writes() {
        #[derive(Clone, Copy)]
        struct Pair {
            a: u64,
            b: u64,
            // Padding widens the race window for torn copies.
            _pad: [u64; 14],
        }
        let lock = Arc::new(SeqLock::new(Pair {
            a: 0,
            b: 0,
            _pad: [0; 14],
        }));
        let stop = Arc::new(AtomicBool::new(false));

        let w = {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    lock.write_sync(|p| {
                        i += 1;
                        p.a = i;
                        p.b = i;
                    });
                }
            })
        };
        for _ in 0..200_000 {
            let p = lock.read();
            assert_eq!(p.a, p.b);
        }
        stop.store(true, Ordering::Relaxed);
        w.join().unwrap();
    }
}
