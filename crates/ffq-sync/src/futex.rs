//! Raw futex wait/wake over an `AtomicU32` word.
//!
//! The thinnest possible portability layer under [`crate::WaitCell`]: put a
//! thread to sleep while a 32-bit word holds an expected value, and wake up
//! to `n` such sleepers. On Linux this is the `futex(2)` syscall — which
//! also works across *processes* when the word lives in a `MAP_SHARED`
//! mapping and the `FUTEX_PRIVATE_FLAG` optimization is turned off (the
//! `shared` parameter below). Elsewhere a process-local parking registry
//! emulates it; cross-process wakes then degrade to the caller's bounded
//! timeout.
//!
//! Every wait here is *timed*. The wait protocol built on top (see
//! [`crate::WaitCell`]) deliberately tolerates a missed wake by bounding
//! each sleep, so this module never needs to distinguish "woken" from
//! "timed out" from "interrupted by a signal": callers re-check their
//! condition after every return, whatever its cause.

use core::sync::atomic::AtomicU32;
use std::time::Duration;

/// Sleeps while `*word == expected`, for at most `timeout`.
///
/// Returns on a wake, on a word change (the compare-and-sleep is atomic, so
/// a stale `expected` returns immediately), on a signal, or on timeout —
/// the caller must re-check its wake condition in all cases. `shared`
/// selects cross-process visibility: pass `true` iff `word` lives in
/// memory mapped by more than one process.
#[inline]
pub fn futex_wait(word: &AtomicU32, expected: u32, timeout: Duration, shared: bool) {
    sys::wait(word, expected, timeout, shared);
}

/// Wakes up to `n` threads currently sleeping on `word`; returns the number
/// woken (best effort — 0 when nobody slept there).
#[inline]
pub fn futex_wake(word: &AtomicU32, n: u32, shared: bool) -> usize {
    sys::wake(word, n, shared)
}

#[cfg(target_os = "linux")]
mod sys {
    use core::sync::atomic::AtomicU32;
    use std::time::Duration;

    const FUTEX_WAIT: libc::c_int = 0;
    const FUTEX_WAKE: libc::c_int = 1;
    /// Skips the cross-process hash lookup; only valid when every waiter
    /// and waker maps the word in the same address space.
    const FUTEX_PRIVATE_FLAG: libc::c_int = 128;

    #[inline]
    fn op(base: libc::c_int, shared: bool) -> libc::c_int {
        if shared {
            base
        } else {
            base | FUTEX_PRIVATE_FLAG
        }
    }

    pub(super) fn wait(word: &AtomicU32, expected: u32, timeout: Duration, shared: bool) {
        let ts = libc::timespec {
            tv_sec: timeout.as_secs().min(i64::MAX as u64) as libc::time_t,
            tv_nsec: libc::c_long::from(timeout.subsec_nanos()),
        };
        // SAFETY: `word` outlives the call and `ts` is a valid relative
        // timeout. FUTEX_WAIT compares and sleeps atomically; every error
        // return (EAGAIN on a stale `expected`, EINTR, ETIMEDOUT) is
        // equivalent to a spurious wake for our callers, so the result is
        // deliberately ignored. Arguments are passed as `c_long` uniformly,
        // which is what the variadic `syscall(2)` wrapper expects.
        unsafe {
            libc::syscall(
                libc::SYS_futex,
                word.as_ptr() as libc::c_long,
                op(FUTEX_WAIT, shared) as libc::c_long,
                expected as libc::c_long,
                &ts as *const libc::timespec as libc::c_long,
                0 as libc::c_long,
                0 as libc::c_long,
            );
        }
    }

    pub(super) fn wake(word: &AtomicU32, n: u32, shared: bool) -> usize {
        let n = n.min(i32::MAX as u32);
        // SAFETY: FUTEX_WAKE only inspects the kernel's wait-queue hash for
        // the word's address; it never dereferences user memory.
        let r = unsafe {
            libc::syscall(
                libc::SYS_futex,
                word.as_ptr() as libc::c_long,
                op(FUTEX_WAKE, shared) as libc::c_long,
                n as libc::c_long,
                0 as libc::c_long,
                0 as libc::c_long,
                0 as libc::c_long,
            )
        };
        usize::try_from(r).unwrap_or(0)
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use core::sync::atomic::{AtomicU32, Ordering};
    use std::collections::HashMap;
    use std::sync::OnceLock;
    use std::thread::Thread;
    use std::time::Duration;

    use parking_lot::Mutex;

    /// Process-local stand-in for the kernel's futex hash: word address →
    /// threads parked on it. The registry lock makes the "check word, then
    /// register" step atomic against `wake`, so an in-process wake is never
    /// lost; `thread::park_timeout` provides the bounded sleep.
    fn registry() -> &'static Mutex<HashMap<usize, Vec<Thread>>> {
        static REGISTRY: OnceLock<Mutex<HashMap<usize, Vec<Thread>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub(super) fn wait(word: &AtomicU32, expected: u32, timeout: Duration, _shared: bool) {
        let key = word.as_ptr() as usize;
        {
            let mut map = registry().lock();
            if word.load(Ordering::Acquire) != expected {
                return;
            }
            map.entry(key).or_default().push(std::thread::current());
        }
        std::thread::park_timeout(timeout);
        // Deregister if still present (timeout/spurious path); a waker may
        // have removed us already.
        let mut map = registry().lock();
        if let Some(parked) = map.get_mut(&key) {
            let me = std::thread::current().id();
            parked.retain(|t| t.id() != me);
            if parked.is_empty() {
                map.remove(&key);
            }
        }
    }

    pub(super) fn wake(word: &AtomicU32, n: u32, _shared: bool) -> usize {
        let key = word.as_ptr() as usize;
        let mut woken = 0usize;
        let mut map = registry().lock();
        if let Some(parked) = map.get_mut(&key) {
            while woken < n as usize {
                match parked.pop() {
                    Some(t) => {
                        t.unpark();
                        woken += 1;
                    }
                    None => break,
                }
            }
            if parked.is_empty() {
                map.remove(&key);
            }
        }
        woken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn stale_expected_returns_immediately() {
        let word = AtomicU32::new(1);
        let start = Instant::now();
        futex_wait(&word, 0, Duration::from_secs(5), false);
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn timeout_bounds_the_sleep() {
        let word = AtomicU32::new(0);
        let start = Instant::now();
        futex_wait(&word, 0, Duration::from_millis(30), false);
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(25),
            "woke early: {elapsed:?}"
        );
        assert!(elapsed < Duration::from_secs(2), "overslept: {elapsed:?}");
    }

    #[test]
    fn wake_unblocks_a_waiter() {
        let word = Arc::new(AtomicU32::new(0));
        let w = Arc::clone(&word);
        let waiter = std::thread::spawn(move || {
            // Re-check loop: waits until the word changes, each sleep
            // bounded so a pre-wake race cannot hang the test.
            while w.load(Ordering::Acquire) == 0 {
                futex_wait(&w, 0, Duration::from_millis(100), false);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        word.store(1, Ordering::Release);
        futex_wake(&word, 1, false);
        waiter.join().unwrap();
    }
}
