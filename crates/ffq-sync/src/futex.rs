//! Raw futex wait/wake over an `AtomicU32` word.
//!
//! The thinnest possible portability layer under [`crate::WaitCell`]: put a
//! thread to sleep while a 32-bit word holds an expected value, and wake up
//! to `n` such sleepers. On Linux this is the `futex(2)` syscall — which
//! also works across *processes* when the word lives in a `MAP_SHARED`
//! mapping and the `FUTEX_PRIVATE_FLAG` optimization is turned off (the
//! `shared` parameter below). Elsewhere a process-local parking registry
//! emulates it; cross-process wakes then need the caller's opt-in bounded
//! timeout.
//!
//! Waits may be *unbounded* (`timeout: None`). That is safe because the
//! compare-and-sleep is atomic — the kernel (or the registry lock) re-reads
//! the word after the waiter is queued, so a wake between "decide to sleep"
//! and "actually asleep" is never lost. The eventcount layered on top
//! ([`crate::WaitCell`]) bumps the word before every wake, which makes the
//! stale-`expected` early return do the final lost-wake validation.
//! Callers must still re-check their condition after every return (wake,
//! word change, signal, or timeout are indistinguishable on purpose).
//!
//! The Linux path issues the syscall directly (no libc dependency); other
//! platforms — and Linux architectures this crate has not been audited on —
//! fall back to the registry.

use crate::atomic::AtomicU32;
use std::time::Duration;

/// Sleeps while `*word == expected`, for at most `timeout` (forever when
/// `None`).
///
/// Returns on a wake, on a word change (the compare-and-sleep is atomic, so
/// a stale `expected` returns immediately), on a signal, or on timeout —
/// the caller must re-check its wake condition in all cases. `shared`
/// selects cross-process visibility: pass `true` iff `word` lives in
/// memory mapped by more than one process.
#[inline]
pub fn futex_wait(word: &AtomicU32, expected: u32, timeout: Option<Duration>, shared: bool) {
    sys::wait(word, expected, timeout, shared);
}

/// Wakes up to `n` threads currently sleeping on `word`; returns the number
/// woken (best effort — 0 when nobody slept there).
#[inline]
pub fn futex_wake(word: &AtomicU32, n: u32, shared: bool) -> usize {
    sys::wake(word, n, shared)
}

/// Model backend: parks are unbounded and lost wakes become model
/// deadlocks, which is exactly what the loom regression tests pin down.
#[cfg(loom)]
mod sys {
    use crate::atomic::AtomicU32;
    use std::time::Duration;

    pub(super) fn wait(word: &AtomicU32, expected: u32, _timeout: Option<Duration>, _shared: bool) {
        ffq_loom::futex::futex_wait(word, expected);
    }

    pub(super) fn wake(word: &AtomicU32, n: u32, _shared: bool) -> usize {
        ffq_loom::futex::futex_wake(word, n as usize)
    }
}

#[cfg(all(
    not(loom),
    target_os = "linux",
    any(
        target_arch = "x86_64",
        target_arch = "aarch64",
        target_arch = "riscv64"
    )
))]
mod sys {
    use core::sync::atomic::AtomicU32;
    use std::time::Duration;

    const FUTEX_WAIT: i32 = 0;
    const FUTEX_WAKE: i32 = 1;
    /// Skips the cross-process hash lookup; only valid when every waiter
    /// and waker maps the word in the same address space.
    const FUTEX_PRIVATE_FLAG: i32 = 128;

    #[cfg(target_arch = "x86_64")]
    const SYS_FUTEX: i64 = 202;
    #[cfg(any(target_arch = "aarch64", target_arch = "riscv64"))]
    const SYS_FUTEX: i64 = 98;

    /// Matches the kernel's `struct timespec` on all three 64-bit
    /// architectures gated above.
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        /// The variadic libc `syscall(2)` wrapper; declared directly so the
        /// crate carries no libc *crate* dependency. All arguments are
        /// passed as register-width integers, which is what the kernel ABI
        /// takes on the gated 64-bit targets.
        fn syscall(num: i64, ...) -> i64;
    }

    #[inline]
    fn op(base: i32, shared: bool) -> i64 {
        (if shared {
            base
        } else {
            base | FUTEX_PRIVATE_FLAG
        }) as i64
    }

    pub(super) fn wait(word: &AtomicU32, expected: u32, timeout: Option<Duration>, shared: bool) {
        let ts = timeout.map(|t| Timespec {
            tv_sec: t.as_secs().min(i64::MAX as u64) as i64,
            tv_nsec: i64::from(t.subsec_nanos()),
        });
        let ts_ptr = match &ts {
            Some(ts) => ts as *const Timespec,
            // Null timespec = wait forever; safe because the kernel re-reads
            // the word after queueing the waiter, so wakes cannot be lost.
            None => core::ptr::null(),
        };
        // SAFETY: `word` outlives the call and `ts_ptr` is null or points
        // at a valid relative timeout. FUTEX_WAIT compares and sleeps
        // atomically; every error return (EAGAIN on a stale `expected`,
        // EINTR, ETIMEDOUT) is equivalent to a spurious wake for our
        // callers, so the result is deliberately ignored.
        unsafe {
            syscall(
                SYS_FUTEX,
                word.as_ptr() as i64,
                op(FUTEX_WAIT, shared),
                expected as i64,
                ts_ptr as i64,
                0i64,
                0i64,
            );
        }
    }

    pub(super) fn wake(word: &AtomicU32, n: u32, shared: bool) -> usize {
        let n = n.min(i32::MAX as u32);
        // SAFETY: FUTEX_WAKE only inspects the kernel's wait-queue hash for
        // the word's address; it never dereferences user memory.
        let r = unsafe {
            syscall(
                SYS_FUTEX,
                word.as_ptr() as i64,
                op(FUTEX_WAKE, shared),
                n as i64,
                0i64,
                0i64,
                0i64,
            )
        };
        usize::try_from(r).unwrap_or(0)
    }
}

#[cfg(all(
    not(loom),
    not(all(
        target_os = "linux",
        any(
            target_arch = "x86_64",
            target_arch = "aarch64",
            target_arch = "riscv64"
        )
    ))
))]
mod sys {
    use core::sync::atomic::{AtomicU32, Ordering};
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
    use std::thread::Thread;
    use std::time::Duration;

    /// Process-local stand-in for the kernel's futex hash: word address →
    /// threads parked on it. The registry lock makes the "check word, then
    /// register" step atomic against `wake`, so an in-process wake is never
    /// lost; `thread::park[_timeout]` provides the sleep.
    fn registry() -> MutexGuard<'static, HashMap<usize, Vec<Thread>>> {
        static REGISTRY: OnceLock<Mutex<HashMap<usize, Vec<Thread>>>> = OnceLock::new();
        REGISTRY
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    pub(super) fn wait(word: &AtomicU32, expected: u32, timeout: Option<Duration>, _shared: bool) {
        let key = word.as_ptr() as usize;
        {
            let mut map = registry();
            if word.load(Ordering::Acquire) != expected {
                return;
            }
            map.entry(key).or_default().push(std::thread::current());
        }
        // A wake between the registry unlock and the park is not lost:
        // `unpark` on a not-yet-parked thread makes the next park return
        // immediately (std's park token).
        match timeout {
            Some(t) => std::thread::park_timeout(t),
            None => std::thread::park(),
        }
        // Deregister if still present (timeout/spurious path); a waker may
        // have removed us already.
        let mut map = registry();
        if let Some(parked) = map.get_mut(&key) {
            let me = std::thread::current().id();
            parked.retain(|t| t.id() != me);
            if parked.is_empty() {
                map.remove(&key);
            }
        }
    }

    pub(super) fn wake(word: &AtomicU32, n: u32, _shared: bool) -> usize {
        let key = word.as_ptr() as usize;
        let mut woken = 0usize;
        let mut map = registry();
        if let Some(parked) = map.get_mut(&key) {
            while woken < n as usize {
                match parked.pop() {
                    Some(t) => {
                        t.unpark();
                        woken += 1;
                    }
                    None => break,
                }
            }
            if parked.is_empty() {
                map.remove(&key);
            }
        }
        woken
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use core::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn stale_expected_returns_immediately() {
        let word = AtomicU32::new(1);
        let start = Instant::now();
        futex_wait(&word, 0, Some(Duration::from_secs(5)), false);
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn timeout_bounds_the_sleep() {
        let word = AtomicU32::new(0);
        let start = Instant::now();
        futex_wait(&word, 0, Some(Duration::from_millis(30)), false);
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(25),
            "woke early: {elapsed:?}"
        );
        assert!(elapsed < Duration::from_secs(2), "overslept: {elapsed:?}");
    }

    #[test]
    fn wake_unblocks_a_waiter() {
        let word = Arc::new(AtomicU32::new(0));
        let w = Arc::clone(&word);
        let waiter = std::thread::spawn(move || {
            // Re-check loop: waits until the word changes, each sleep
            // bounded so a pre-wake race cannot hang the test.
            while w.load(Ordering::Acquire) == 0 {
                futex_wait(&w, 0, Some(Duration::from_millis(100)), false);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        word.store(1, Ordering::Release);
        futex_wake(&word, 1, false);
        waiter.join().unwrap();
    }

    #[test]
    fn unbounded_wait_returns_on_wake() {
        let word = Arc::new(AtomicU32::new(0));
        let w = Arc::clone(&word);
        let waiter = std::thread::spawn(move || {
            while w.load(Ordering::Acquire) == 0 {
                // No timeout: this hangs forever if the wake below is lost,
                // which is exactly the regression this test pins.
                futex_wait(&w, 0, None, false);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        word.store(1, Ordering::Release);
        futex_wake(&word, 1, false);
        waiter.join().unwrap();
    }
}
