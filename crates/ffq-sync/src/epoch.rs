//! Era-slot reclamation for the segmented unbounded tier.
//!
//! The unbounded queue (`ffq::unbounded`) is a singly-linked list of
//! fixed-capacity ring segments. Segments are unlinked from the front as
//! they drain, but a consumer that was descheduled right after loading a
//! segment pointer may still dereference it arbitrarily late — classic
//! deferred-reclamation territory. Hazard pointers would be overkill here
//! because handles only ever walk the list *forward* from a segment they
//! already protect; a single monotone era per handle is enough.
//!
//! ## Protocol
//!
//! Every segment carries a monotonically increasing sequence number (its
//! *era*), assigned when the producer links it. Every queue handle owns one
//! slot in an [`EraRegistry`] and keeps it equal to the era of the oldest
//! segment it may still touch:
//!
//! * On creation the handle [`acquire`](EraRegistry::acquire)s a slot
//!   holding its starting segment's era. The caller must guarantee that
//!   segment cannot be retired while the handle is being constructed —
//!   in `ffq::unbounded` a clone's source handle protects it (the source's
//!   slot era is ≤ the cloned era), and a channel constructor runs before
//!   any consumer exists.
//! * On advancing from segment *k* to *k + 1* the handle
//!   [`set`](EraRegistry::set)s its slot to the new era **after** reading
//!   the `next` pointer (which the still-current slot value protects) —
//!   raising the slot is the handle's statement that it will never touch
//!   era *k* again.
//! * On drop the handle [`release`](EraRegistry::release)s its slot.
//!
//! A retired segment with era `e` may be freed once
//! `e < `[`min_active`](EraRegistry::min_active) — no live handle can
//! reach it anymore, because reaching it would require walking backwards.
//!
//! ## Memory ordering
//!
//! Slot writes and `min_active` loads are all `SeqCst`, putting the
//! reclaimer's scan and every handle's era raise into one total order: if
//! the reclaimer observes slot > *e*, the owning handle's last access to
//! era *e* is ordered before the scan, so freeing is safe. Era changes
//! happen once per *segment* (thousands of items), so the fence cost is
//! noise. Everything routes through [`crate::atomic`], making the module
//! loom-checkable; the `loom_segment_epoch_*` model below drives the
//! retire-versus-late-reader race through this exact code.

use crate::atomic::{AtomicU64, Ordering};
use crate::CachePadded;

/// Slot value meaning "unallocated": no constraint on reclamation.
///
/// `u64::MAX` so idle slots fall out of [`EraRegistry::min_active`]'s
/// minimum without a branch. A real era can never reach it (one era per
/// segment; the sun burns out first).
pub const ERA_IDLE: u64 = u64::MAX;

/// A fixed-capacity array of per-handle era slots.
///
/// Each slot is cache-line padded: a handle bumps only its own slot on the
/// (cold) segment-advance path, and the reclaimer's scan is colder still,
/// so slots should never false-share with each other or with queue state.
///
/// Slot indices are handed out by [`acquire`](EraRegistry::acquire) and
/// returned by [`release`](EraRegistry::release); the registry itself is
/// plain shared state with interior mutability — clone an `Arc` around it.
#[derive(Debug)]
pub struct EraRegistry {
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl EraRegistry {
    /// Creates a registry with `capacity` slots (the maximum number of
    /// simultaneously live handles), all idle.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "era registry needs at least one slot");
        let slots = (0..capacity)
            .map(|_| CachePadded::new(AtomicU64::new(ERA_IDLE)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { slots }
    }

    /// Number of slots (live-handle capacity).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Claims an idle slot and publishes `era` in it, returning the slot
    /// index for later [`set`](Self::set)/[`release`](Self::release) calls.
    ///
    /// # Panics
    ///
    /// Panics if every slot is taken (more live handles than
    /// [`capacity`](Self::capacity)) or if `era == `[`ERA_IDLE`].
    pub fn acquire(&self, era: u64) -> usize {
        assert_ne!(era, ERA_IDLE, "ERA_IDLE is not a valid era");
        for (idx, slot) in self.slots.iter().enumerate() {
            if slot.load(Ordering::Relaxed) != ERA_IDLE {
                continue;
            }
            if slot
                .compare_exchange(ERA_IDLE, era, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return idx;
            }
        }
        panic!(
            "era registry exhausted: more than {} live unbounded-queue handles",
            self.slots.len()
        );
    }

    /// Raises the era published in `slot` (segment-advance path).
    ///
    /// Eras are monotone per slot; lowering one would retroactively claim
    /// protection the reclaimer may already have disproved.
    pub fn set(&self, slot: usize, era: u64) {
        debug_assert_ne!(era, ERA_IDLE, "ERA_IDLE is not a valid era");
        debug_assert!(
            {
                let cur = self.slots[slot].load(Ordering::Relaxed);
                cur != ERA_IDLE && cur <= era
            },
            "era slots only move forward"
        );
        self.slots[slot].store(era, Ordering::SeqCst);
    }

    /// Returns `slot` to the idle pool (handle drop path).
    pub fn release(&self, slot: usize) {
        self.slots[slot].store(ERA_IDLE, Ordering::SeqCst);
    }

    /// The oldest era any live handle may still touch ([`ERA_IDLE`] when
    /// no slot is active): a retired segment is freeable iff its era is
    /// strictly below this.
    pub fn min_active(&self) -> u64 {
        let mut min = ERA_IDLE;
        for slot in self.slots.iter() {
            let era = slot.load(Ordering::SeqCst);
            if era < min {
                min = era;
            }
        }
        min
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn idle_registry_has_no_minimum() {
        let reg = EraRegistry::new(4);
        assert_eq!(reg.capacity(), 4);
        assert_eq!(reg.min_active(), ERA_IDLE);
    }

    #[test]
    fn acquire_set_release_roundtrip() {
        let reg = EraRegistry::new(4);
        let a = reg.acquire(3);
        let b = reg.acquire(7);
        assert_ne!(a, b);
        assert_eq!(reg.min_active(), 3);
        reg.set(a, 9);
        assert_eq!(reg.min_active(), 7);
        reg.release(b);
        assert_eq!(reg.min_active(), 9);
        reg.release(a);
        assert_eq!(reg.min_active(), ERA_IDLE);
    }

    #[test]
    fn released_slots_are_reusable() {
        let reg = EraRegistry::new(2);
        let a = reg.acquire(1);
        let b = reg.acquire(1);
        reg.release(a);
        let c = reg.acquire(2);
        assert_eq!(reg.min_active(), 1);
        reg.release(b);
        reg.release(c);
        // Full churn several times over capacity: no slot is ever leaked.
        for era in 3..20 {
            let x = reg.acquire(era);
            let y = reg.acquire(era);
            reg.release(x);
            reg.release(y);
        }
        assert_eq!(reg.min_active(), ERA_IDLE);
    }

    #[test]
    #[should_panic(expected = "era registry exhausted")]
    fn exhaustion_panics() {
        let reg = EraRegistry::new(2);
        let _a = reg.acquire(1);
        let _b = reg.acquire(1);
        let _c = reg.acquire(1);
    }

    #[test]
    fn concurrent_churn_keeps_min_conservative() {
        // Threads cycle acquire(era)/release while a scanner asserts that
        // min_active never exceeds an era currently claimed as held (the
        // holder publishes what it holds *after* acquiring, so the scan
        // may lag behind but must never run ahead).
        use std::sync::atomic::{AtomicBool, AtomicU64 as StdU64, Ordering as O};
        use std::sync::Arc;

        let reg = Arc::new(EraRegistry::new(8));
        let stop = Arc::new(AtomicBool::new(false));
        let held = Arc::new(StdU64::new(u64::MAX));
        let worker = {
            let (reg, stop, held) = (Arc::clone(&reg), Arc::clone(&stop), Arc::clone(&held));
            std::thread::spawn(move || {
                let mut era = 1u64;
                while !stop.load(O::Relaxed) {
                    let slot = reg.acquire(era);
                    held.store(era, O::SeqCst);
                    std::hint::black_box(&reg);
                    held.store(u64::MAX, O::SeqCst);
                    reg.release(slot);
                    era += 1;
                }
            })
        };
        for _ in 0..10_000 {
            let h = held.load(O::SeqCst);
            let m = reg.min_active();
            if h != u64::MAX {
                // While an era is declared held, the minimum observed
                // afterwards can only be it or older — never newer.
                assert!(m <= h || held.load(O::SeqCst) != h);
            }
        }
        stop.store(true, O::Relaxed);
        worker.join().unwrap();
    }
}

/// Retire-versus-late-reader model for the unbounded tier's reclamation
/// (ISSUE 7 model (b)). Run with
/// `RUSTFLAGS="--cfg loom" cargo test -p ffq-sync --release -- loom_`.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use ffq_loom::sync::Arc;
    use ffq_loom::thread;

    /// A reader holds a slot at era 0 while it accesses an era-0 object; a
    /// reclaimer frees the object only once `min_active() > 0`. The
    /// object's liveness is modeled as an atomic flag so the model tracks
    /// its visibility: if the SeqCst slot protocol were weakened, the
    /// model would find a schedule where the reclaimer's free overtakes
    /// the reader's still-in-progress access and the assert fires.
    #[test]
    fn loom_segment_epoch_retire_vs_late_reader() {
        ffq_loom::model(|| {
            let reg = Arc::new(EraRegistry::new(2));
            // 1 = era-0 object alive, 0 = freed.
            let alive = Arc::new(AtomicU64::new(1));
            // Acquire before the reclaimer exists: mirrors `unbounded`,
            // where a handle is constructed while its starting segment is
            // provably unretirable.
            let slot = reg.acquire(0);

            let reader = {
                let (reg, alive) = (Arc::clone(&reg), Arc::clone(&alive));
                thread::spawn(move || {
                    // Protected access window: slot holds era 0.
                    assert_eq!(
                        alive.load(Ordering::SeqCst),
                        1,
                        "era-0 object freed while a slot still protected it"
                    );
                    // Advance to era 1 — the reader's promise never to
                    // touch era 0 again — then drop the handle.
                    reg.set(slot, 1);
                    reg.release(slot);
                })
            };
            let reclaimer = {
                let (reg, alive) = (Arc::clone(&reg), Arc::clone(&alive));
                thread::spawn(move || {
                    // One retire attempt: free era 0 iff no slot can still
                    // reach it. Seeing min > 0 must imply the reader's
                    // access completed.
                    if reg.min_active() > 0 {
                        alive.store(0, Ordering::SeqCst);
                    }
                })
            };
            reader.join().unwrap();
            reclaimer.join().unwrap();
            // After both handles are gone the object is always freeable.
            assert_eq!(reg.min_active(), ERA_IDLE);
        });
    }

    /// Acquire racing acquire: two handles grabbing slots concurrently
    /// never share one, and both are visible to a subsequent scan.
    #[test]
    fn loom_segment_epoch_concurrent_acquire_distinct_slots() {
        ffq_loom::model(|| {
            let reg = Arc::new(EraRegistry::new(2));
            let t = {
                let reg = Arc::clone(&reg);
                thread::spawn(move || reg.acquire(5))
            };
            let a = reg.acquire(3);
            let b = t.join().unwrap();
            assert_ne!(a, b, "two live handles share an era slot");
            assert_eq!(reg.min_active(), 3);
        });
    }
}
