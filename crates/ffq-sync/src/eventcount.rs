//! Adaptive spin-then-park waiting: an eventcount over a futex word.
//!
//! FFQ's protocol busy-waits: a consumer polls its claimed cell's rank, a
//! producer polls `head` until a slot frees. That is optimal when every
//! thread owns a core and traffic never pauses, and pathological otherwise —
//! oversubscribed threads burn their quantum spinning on a condition only a
//! descheduled peer can satisfy, and idle consumers convert electricity to
//! heat. This module adds the classic fix without touching the queue
//! protocol itself: a *wait strategy* that spins briefly, backs off, and
//! finally parks the thread on a kernel futex until the other side signals.
//!
//! The design splits into three pieces:
//!
//! * [`WaitCell`] — a 2-word eventcount (`seq`, `waiters`) that lives next
//!   to the queue indices. Notifiers pay one relaxed load and a predicted
//!   branch when nobody is parked; waiters pay two RMWs plus a syscall only
//!   once they decide to sleep.
//! * [`WaitConfig`] — the knobs: how long to spin, when to start yielding,
//!   the park bound, and whether parking is enabled at all.
//! * [`WaitStrategy`] — per-wait-loop state machine driving a
//!   `Backoff`-style spin phase into bounded parks, with adaptive deadline
//!   checking so a timed wait stays cheap while spinning yet wakes within
//!   about a millisecond of its deadline once parked.
//!
//! ## The lost-wake problem, and why every park is bounded
//!
//! The canonical eventcount race: a waiter checks the queue (empty), and
//! before it parks the producer publishes an item and checks `waiters`
//! (zero — the waiter hasn't registered yet, or the store hasn't
//! propagated). Registration *before* the final condition re-check, with a
//! sequentially-consistent RMW on `waiters`, closes the ordering hole on
//! the waiter's side: if the producer's `waiters` load sees zero, the
//! waiter's subsequent condition re-check is guaranteed to see the
//! producer's publication, so it will not park on stale information.
//!
//! The producer side keeps its hot path to a *relaxed* load on purpose —
//! promoting it to a fence or RMW would tax every enqueue to optimize the
//! rare sleepy case. The price is a residual store→load reordering window
//! (the store-buffering pattern): on x86-TSO the producer's publication
//! store may sit in its store buffer while its `waiters == 0` load
//! executes, at the same time as the waiter's registration sits in *its*
//! buffer while the condition re-check loads stale data. Both sides then
//! miss each other. Rather than close this with a SeqCst fence per
//! enqueue, every park is bounded by [`WaitConfig::max_park`]
//! (default 2 ms): a missed wake costs one bounded oversleep, never a
//! hang. The same bound is what lets a *cross-process* waiter in an
//! `ffq-shm` region observe dead-peer poisoning in bounded time even if
//! the poisoning process dies before issuing the wake.
//!
//! Progress: a parked thread holds no lock and blocks nobody; threads that
//! never park run the identical lock-free/wait-free paths as before. The
//! strategy only ever *adds* sleeping to threads that had nothing to do.

use core::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use crate::backoff::Backoff;
use crate::futex::{futex_wait, futex_wake};

/// How often a spinning (not yet parked) timed wait samples the clock, in
/// wait rounds. Parked rounds sample every time — the park itself costs a
/// syscall, so a clock read is noise there, and it is what bounds deadline
/// overshoot to roughly the final park slice.
const SPIN_DEADLINE_STRIDE: u32 = 8;

/// A futex-backed eventcount: the park/wake rendezvous for one wait
/// direction of one queue.
///
/// Two live in every `QueueState` — one consumers sleep on (`not_empty`),
/// one producers sleep on (`not_full`). `#[repr(C)]` with two `u32`s keeps
/// the layout identical across processes so the cell works inside a
/// shared-memory mapping; all state is position-independent.
#[repr(C)]
#[derive(Debug)]
pub struct WaitCell {
    /// Wake sequence number. Incremented (Release) before every wake so a
    /// waiter that observed the pre-increment value either sees the bump
    /// when it tries to park (futex compare fails, no sleep) or is woken
    /// by the `futex_wake` that follows.
    seq: AtomicU32,
    /// Number of threads between `begin_wait` and their matching
    /// `cancel_wait`/wake. Notifiers skip the syscall entirely while this
    /// reads zero.
    waiters: AtomicU32,
}

impl WaitCell {
    /// A cell with no waiters and sequence zero (the all-zeroes state, so
    /// zero-filled shared memory is a valid cell).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            seq: AtomicU32::new(0),
            waiters: AtomicU32::new(0),
        }
    }

    /// Wakes up to `n` parked threads, if any are registered.
    ///
    /// This is the notifier hot path: one relaxed load and one
    /// almost-always-untaken branch when the queue is running hot and
    /// nobody sleeps. `shared` must be `true` iff the cell lives in
    /// memory mapped by multiple processes.
    #[inline]
    pub fn notify(&self, n: usize, shared: bool) {
        if self.waiters.load(Ordering::Relaxed) != 0 {
            self.notify_slow(n, shared);
        }
    }

    /// Wakes every parked thread (disconnects, poisoning, drops).
    #[inline]
    pub fn notify_all(&self, shared: bool) {
        self.notify(usize::MAX, shared);
    }

    #[cold]
    fn notify_slow(&self, n: usize, shared: bool) {
        // Release: the bump happens-after the notifier's queue publication,
        // so a waiter whose futex compare fails on the new value re-checks
        // the queue with Acquire and must observe that publication.
        self.seq.fetch_add(1, Ordering::Release);
        futex_wake(&self.seq, n.min(u32::MAX as usize) as u32, shared);
    }

    /// Registers the caller as a waiter and snapshots the wake sequence.
    ///
    /// Must be called *before* the final not-ready check that justifies
    /// parking; pair with [`Self::park`] (then [`Self::cancel_wait`]) or
    /// with [`Self::cancel_wait`] alone if the condition turned ready.
    ///
    /// The SeqCst RMW orders the registration store before the caller's
    /// subsequent condition loads in the single total order, which is what
    /// makes "notifier saw `waiters == 0`" imply "waiter's re-check sees
    /// the publication".
    #[inline]
    #[must_use]
    pub fn begin_wait(&self) -> u32 {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        self.seq.load(Ordering::Acquire)
    }

    /// Deregisters the caller (after a park returns, or instead of one).
    #[inline]
    pub fn cancel_wait(&self) {
        self.waiters.fetch_sub(1, Ordering::Release);
    }

    /// Sleeps until the wake sequence moves past `observed_seq`, a wake
    /// arrives, or `timeout` elapses — whichever is first. The caller must
    /// still hold a `begin_wait` registration and must re-check its
    /// condition afterwards.
    #[inline]
    pub fn park(&self, observed_seq: u32, timeout: Duration, shared: bool) {
        futex_wait(&self.seq, observed_seq, timeout, shared);
    }

    /// Current registered-waiter count (diagnostics and tests).
    #[must_use]
    pub fn waiters(&self) -> u32 {
        self.waiters.load(Ordering::Relaxed)
    }
}

impl Default for WaitCell {
    fn default() -> Self {
        Self::new()
    }
}

/// Tunables for the spin → yield → park progression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitConfig {
    /// `Backoff` step up to which a wait round busy-spins with
    /// exponentially growing `spin_loop` bursts.
    pub spin_limit: u32,
    /// `Backoff` step up to which a wait round yields to the OS scheduler
    /// instead of parking; past it the thread parks (the snooze
    /// threshold).
    pub yield_limit: u32,
    /// Upper bound on a single park. This is the recovery latency for a
    /// lost wake and for cross-process poisoning observed while parked,
    /// so it trades idle wakeup rate against worst-case responsiveness.
    pub max_park: Duration,
    /// When `false` the strategy never parks — it degenerates to the
    /// pre-existing pure spin/yield loop (useful for latency-critical
    /// pinned deployments and as the benchmark baseline).
    pub park: bool,
}

impl WaitConfig {
    /// The default adaptive profile: spin like the original `Backoff`
    /// (steps 0–6 spinning, 7–10 yielding), then park in bounded 2 ms
    /// slices.
    #[must_use]
    pub const fn adaptive() -> Self {
        Self {
            spin_limit: 6,
            yield_limit: 10,
            max_park: Duration::from_millis(2),
            park: false,
        }
        .parking()
    }

    /// Spin/yield only — byte-for-byte the waiting behaviour this crate
    /// shipped before parking existed.
    #[must_use]
    pub const fn spin_only() -> Self {
        Self {
            spin_limit: 6,
            yield_limit: 10,
            max_park: Duration::from_millis(2),
            park: false,
        }
    }

    const fn parking(mut self) -> Self {
        self.park = true;
        self
    }
}

impl Default for WaitConfig {
    fn default() -> Self {
        Self::adaptive()
    }
}

/// What a single [`WaitStrategy::wait_round`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitRound {
    /// Spun or yielded; the condition may or may not be ready — loop and
    /// re-check.
    Spun,
    /// Parked on the futex (possibly waking early); re-check the
    /// condition.
    Parked,
    /// The deadline passed. The caller should do one final ready check
    /// and then give up.
    Expired,
}

/// Per-wait-loop driver: owns the spin/yield/park progression for one
/// blocking or timed operation.
///
/// Usage shape (the queue crates wrap this):
///
/// ```ignore
/// let mut strat = WaitStrategy::new(cfg);
/// loop {
///     if let Some(v) = try_the_operation() { return Ok(v); }
///     match strat.wait_round(&cell, shared, deadline, &mut || condition_ready()) {
///         WaitRound::Expired => return Err(Timeout),
///         _ => {}
///     }
/// }
/// ```
pub struct WaitStrategy {
    cfg: WaitConfig,
    /// The spin/yield ladder; its configured yield limit is the snooze
    /// threshold past which rounds park. Reset by [`Self::reset`] after
    /// progress.
    backoff: Backoff,
    /// Wait rounds since the last deadline sample (spin phase only).
    since_deadline_check: u32,
    /// Parks performed, for the `parks` statistics counters.
    parks: u64,
}

impl WaitStrategy {
    /// A fresh strategy at the start of its spin phase.
    #[must_use]
    pub fn new(cfg: WaitConfig) -> Self {
        Self {
            cfg,
            backoff: Backoff::with_limits(cfg.spin_limit, cfg.yield_limit),
            since_deadline_check: 0,
            parks: 0,
        }
    }

    /// Re-arms the spin phase after the caller made progress, so bursts
    /// stay fast while only true idleness escalates to parking.
    #[inline]
    pub fn reset(&mut self) {
        self.backoff.reset();
        self.since_deadline_check = 0;
    }

    /// Number of futex parks this strategy has performed.
    #[must_use]
    pub fn parks(&self) -> u64 {
        self.parks
    }

    /// True once the next `wait_round` would park rather than spin/yield.
    #[must_use]
    pub fn is_parkable(&self) -> bool {
        self.cfg.park && self.backoff.is_parkable()
    }

    /// Executes one round of waiting: an exponential `spin_loop` burst, a
    /// `yield_now`, or a bounded park on `cell`, per the current phase.
    ///
    /// `ready` is the wake condition; it is only consulted on the park
    /// path (between waiter registration and the sleep — the final
    /// re-check that makes parking sound) so the spin path stays exactly
    /// as cheap as the old `Backoff` loop. `deadline` of `None` waits
    /// forever. Returns what happened; on anything but `Expired` the
    /// caller re-polls its operation and loops.
    pub fn wait_round(
        &mut self,
        cell: &WaitCell,
        shared: bool,
        deadline: Option<Instant>,
        ready: &mut dyn FnMut() -> bool,
    ) -> WaitRound {
        // Phase 1+2: the classic backoff ladder, with the deadline sampled
        // on a stride so the hot spin phase rarely touches the clock.
        if !self.backoff.is_parkable() || !self.cfg.park {
            if let Some(d) = deadline {
                self.since_deadline_check += 1;
                // Always sample in the (cheap, scheduler-bound) yield
                // phase; sample on a stride while busy-spinning.
                if self.backoff.is_completed() || self.since_deadline_check >= SPIN_DEADLINE_STRIDE
                {
                    self.since_deadline_check = 0;
                    if Instant::now() >= d {
                        return WaitRound::Expired;
                    }
                }
            }
            self.backoff.wait();
            return WaitRound::Spun;
        }

        // Phase 3: park. Register first, then re-check the condition —
        // the ordering that makes a wake between check and sleep
        // impossible to lose (see module docs).
        let seq = cell.begin_wait();
        if ready() {
            cell.cancel_wait();
            return WaitRound::Spun;
        }
        let mut slice = self.cfg.max_park;
        if let Some(d) = deadline {
            // Parked rounds check the deadline every time and clamp the
            // sleep to the time remaining, so a timed wait overshoots by
            // syscall jitter, not by up to `max_park`.
            let now = Instant::now();
            if now >= d {
                cell.cancel_wait();
                return WaitRound::Expired;
            }
            slice = slice.min(d - now);
        }
        cell.park(seq, slice, shared);
        cell.cancel_wait();
        self.parks += 1;
        WaitRound::Parked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// A config that reaches the park phase almost immediately.
    fn eager() -> WaitConfig {
        WaitConfig {
            spin_limit: 1,
            yield_limit: 2,
            max_park: Duration::from_millis(50),
            park: true,
        }
    }

    #[test]
    fn notify_without_waiters_skips_the_sequence_bump() {
        let cell = WaitCell::new();
        cell.notify(1, false);
        cell.notify_all(false);
        assert_eq!(cell.seq.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn notify_with_a_registration_bumps_the_sequence() {
        let cell = WaitCell::new();
        let seq = cell.begin_wait();
        cell.notify(1, false);
        assert_eq!(cell.seq.load(Ordering::Relaxed), seq + 1);
        cell.cancel_wait();
        assert_eq!(cell.waiters(), 0);
    }

    #[test]
    fn strategy_progresses_spin_then_park() {
        let cfg = eager();
        let cell = WaitCell::new();
        let mut strat = WaitStrategy::new(cfg);
        let mut rounds = Vec::new();
        for _ in 0..(cfg.yield_limit + 3) {
            rounds.push(strat.wait_round(&cell, false, None, &mut || false));
            if matches!(rounds.last(), Some(WaitRound::Parked)) {
                break;
            }
        }
        // yield_limit + 1 spin/yield rounds, then parking begins.
        let spun = rounds
            .iter()
            .take_while(|r| matches!(r, WaitRound::Spun))
            .count();
        assert_eq!(spun, cfg.yield_limit as usize + 1);
        assert!(strat.is_parkable());
        assert!(matches!(rounds.last(), Some(WaitRound::Parked)));
        assert_eq!(strat.parks(), 1);
    }

    #[test]
    fn spin_only_config_never_parks() {
        let cell = WaitCell::new();
        let mut strat = WaitStrategy::new(WaitConfig {
            park: false,
            ..eager()
        });
        for _ in 0..64 {
            let r = strat.wait_round(&cell, false, None, &mut || false);
            assert_eq!(r, WaitRound::Spun);
        }
        assert_eq!(strat.parks(), 0);
        assert!(!strat.is_parkable());
        assert_eq!(cell.waiters(), 0);
    }

    #[test]
    fn ready_recheck_skips_the_park() {
        let cell = WaitCell::new();
        let mut strat = WaitStrategy::new(eager());
        // Burn through the spin phase.
        while !strat.is_parkable() {
            strat.wait_round(&cell, false, None, &mut || false);
        }
        let r = strat.wait_round(&cell, false, None, &mut || true);
        assert_eq!(r, WaitRound::Spun);
        assert_eq!(strat.parks(), 0);
        assert_eq!(cell.waiters(), 0);
    }

    #[test]
    fn parked_thread_wakes_on_notify() {
        let cell = Arc::new(WaitCell::new());
        let go = Arc::new(AtomicBool::new(false));
        let (c, g) = (Arc::clone(&cell), Arc::clone(&go));
        let waiter = std::thread::spawn(move || {
            let mut strat = WaitStrategy::new(WaitConfig {
                max_park: Duration::from_secs(2),
                ..eager()
            });
            let started = Instant::now();
            while !g.load(Ordering::Acquire) {
                strat.wait_round(&c, false, None, &mut || g.load(Ordering::Acquire));
            }
            (strat.parks(), started.elapsed())
        });
        // Give the waiter time to reach the park phase, then publish.
        std::thread::sleep(Duration::from_millis(50));
        go.store(true, Ordering::Release);
        cell.notify_all(false);
        let (parks, waited) = waiter.join().unwrap();
        assert!(parks >= 1, "waiter should have parked (parks = {parks})");
        // Well under the 2 s park bound proves the wake, not the timeout,
        // ended the sleep.
        assert!(
            waited < Duration::from_secs(1),
            "woke via timeout: {waited:?}"
        );
        assert_eq!(cell.waiters(), 0);
    }

    #[test]
    fn timed_wait_expires_close_to_its_deadline() {
        let cell = WaitCell::new();
        let mut strat = WaitStrategy::new(WaitConfig {
            max_park: Duration::from_millis(20),
            ..eager()
        });
        let timeout = Duration::from_millis(60);
        let start = Instant::now();
        let deadline = start + timeout;
        loop {
            if strat.wait_round(&cell, false, Some(deadline), &mut || false) == WaitRound::Expired {
                break;
            }
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "wait failed to expire"
            );
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= timeout, "expired early: {elapsed:?}");
        // Parked rounds clamp the sleep to the remaining time, so overshoot
        // is syscall jitter — a loose bound keeps this robust in CI.
        assert!(
            elapsed < timeout + Duration::from_millis(25),
            "overshot deadline by {:?}",
            elapsed - timeout
        );
        assert!(strat.parks() >= 1);
    }
}
