//! Adaptive spin-then-park waiting: an eventcount over a futex word.
//!
//! FFQ's protocol busy-waits: a consumer polls its claimed cell's rank, a
//! producer polls `head` until a slot frees. That is optimal when every
//! thread owns a core and traffic never pauses, and pathological otherwise —
//! oversubscribed threads burn their quantum spinning on a condition only a
//! descheduled peer can satisfy, and idle consumers convert electricity to
//! heat. This module adds the classic fix without touching the queue
//! protocol itself: a *wait strategy* that spins briefly, backs off, and
//! finally parks the thread on a kernel futex until the other side signals.
//!
//! The design splits into three pieces:
//!
//! * [`WaitCell`] — a 2-word eventcount (`seq`, `waiters`) that lives next
//!   to the queue indices. Notifiers pay one fence plus one load when
//!   nobody is parked; waiters pay an RMW, a fence, and a syscall only once
//!   they decide to sleep.
//! * [`WaitConfig`] — the knobs: how long to spin, when to start yielding,
//!   whether parking is enabled, and an optional park watchdog for
//!   cross-process use.
//! * [`WaitStrategy`] — per-wait-loop state machine driving a
//!   `Backoff`-style spin phase into parks, with adaptive deadline
//!   checking so a timed wait stays cheap while spinning yet wakes within
//!   about a millisecond of its deadline once parked.
//!
//! ## The lost-wake problem, and why unbounded parks are safe
//!
//! The canonical eventcount race: a waiter checks the queue (empty), and
//! before it parks the producer publishes an item and checks `waiters`
//! (zero — the waiter hasn't registered yet, or the store hasn't
//! propagated). If both sides can miss each other, the waiter sleeps on a
//! wake that will never come. This is the store-buffering (SB) litmus
//! pattern — publication store / flag load on one side, flag store (the
//! registration RMW) / publication load on the other — and release/acquire
//! alone does *not* exclude the outcome where both loads read stale values.
//!
//! The protocol closes it from both sides, the same way folly's
//! `EventCount` and crossbeam's parker do:
//!
//! * **Waiter:** [`WaitCell::begin_wait`] registers with a SeqCst RMW on
//!   `waiters` and then issues a SeqCst fence, *before* the caller's final
//!   condition re-check. The re-check is therefore ordered after the
//!   registration in the single total order of SC operations.
//! * **Notifier:** [`WaitCell::notify`] issues a SeqCst fence *after* the
//!   caller's publication and *before* its `waiters` load.
//!
//! With both fences in the SC order, one of two things must hold: the
//! notifier's fence precedes the waiter's registration — then the waiter's
//! re-check sees the publication and it never parks; or the registration
//! precedes the notifier's fence — then the notifier's `waiters` load sees
//! the registration and performs a real wake. In that second case the wake
//! itself cannot be lost either: the notifier bumps `seq` *before*
//! `futex_wake`, and the waiter's park ([`WaitCell::park`]) passes the
//! `seq` it snapshotted at registration to `futex_wait`, whose atomic
//! compare-and-sleep refuses to sleep on a stale sequence. Parks therefore
//! need **no timeout for correctness**, and the default configuration
//! sleeps unboundedly — an idle consumer wakes exactly zero times. The
//! `cfg(loom)` model in this file checks precisely this protocol (with
//! unbounded model parks, so a lost wake is a hard deadlock), and the
//! checked-in pre-fix model demonstrates the race the fences close.
//!
//! The notifier-side fence is a real (if small) cost on every wake-eligible
//! publish — it is the price of not hanging, and it is the same price
//! crossbeam-channel pays on its send path. What used to bound this risk
//! instead, a mandatory 2 ms `max_park`, survives as an *opt-in watchdog*
//! ([`WaitConfig::with_max_park`]): the cross-process `ffq-shm` path still
//! bounds its parks, not because wakes can be lost, but because a peer
//! process can die *without running its poisoning/wake code at all* — only
//! a periodic liveness probe can observe that.
//!
//! Progress: a parked thread holds no lock and blocks nobody; threads that
//! never park run the identical lock-free/wait-free paths as before. The
//! strategy only ever *adds* sleeping to threads that had nothing to do.

use crate::atomic::{fence, AtomicU32, Ordering};
use std::time::{Duration, Instant};

use crate::backoff::Backoff;
use crate::futex::{futex_wait, futex_wake};

/// How often a spinning (not yet parked) timed wait samples the clock, in
/// wait rounds. Parked rounds sample every time — the park itself costs a
/// syscall, so a clock read is noise there, and it is what bounds deadline
/// overshoot to roughly the final park slice.
const SPIN_DEADLINE_STRIDE: u32 = 8;

/// A futex-backed eventcount: the park/wake rendezvous for one wait
/// direction of one queue.
///
/// Two live in every `QueueState` — one consumers sleep on (`not_empty`),
/// one producers sleep on (`not_full`). `#[repr(C)]` with two `u32`s keeps
/// the layout identical across processes so the cell works inside a
/// shared-memory mapping; all state is position-independent.
#[repr(C)]
#[derive(Debug)]
pub struct WaitCell {
    /// Wake sequence number. Incremented (Release) before every wake so a
    /// waiter that observed the pre-increment value either sees the bump
    /// when it tries to park (futex compare fails, no sleep) or is woken
    /// by the `futex_wake` that follows.
    seq: AtomicU32,
    /// Number of threads between `begin_wait` and their matching
    /// `cancel_wait`/wake. Notifiers skip the syscall entirely while this
    /// reads zero.
    waiters: AtomicU32,
}

impl WaitCell {
    /// A cell with no waiters and sequence zero (the all-zeroes state, so
    /// zero-filled shared memory is a valid cell).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            seq: AtomicU32::new(0),
            waiters: AtomicU32::new(0),
        }
    }

    /// Wakes up to `n` parked threads, if any are registered.
    ///
    /// Call *after* publishing the condition the waiters poll. The SeqCst
    /// fence pairs with the one in [`Self::begin_wait`]: either this
    /// notifier observes the registration (and wakes), or the waiter's
    /// post-registration re-check observes the publication (and never
    /// parks). See the module docs for the full argument. `shared` must be
    /// `true` iff the cell lives in memory mapped by multiple processes.
    #[inline]
    pub fn notify(&self, n: usize, shared: bool) {
        // The notifier half of the SB-closing fence pair. Without it the
        // publication store can still sit in this core's store buffer while
        // the load below reads a stale `waiters == 0` — the lost-wake race
        // the `loom_prefix_*` regression model demonstrates.
        fence(Ordering::SeqCst);
        if self.waiters.load(Ordering::Relaxed) != 0 {
            self.notify_slow(n, shared);
        }
    }

    /// Wakes every parked thread (disconnects, poisoning, drops).
    #[inline]
    pub fn notify_all(&self, shared: bool) {
        self.notify(usize::MAX, shared);
    }

    #[cold]
    fn notify_slow(&self, n: usize, shared: bool) {
        // Release: the bump happens-after the notifier's queue publication,
        // so a waiter whose futex compare fails on the new value re-checks
        // the queue with Acquire and must observe that publication.
        self.seq.fetch_add(1, Ordering::Release);
        futex_wake(&self.seq, n.min(u32::MAX as usize) as u32, shared);
    }

    /// Registers the caller as a waiter and snapshots the wake sequence.
    ///
    /// Must be called *before* the final not-ready check that justifies
    /// parking; pair with [`Self::park`] (then [`Self::cancel_wait`]) or
    /// with [`Self::cancel_wait`] alone if the condition turned ready.
    ///
    /// The SeqCst RMW plus the trailing SeqCst fence are the waiter half of
    /// the fence pair described in the module docs: they order the
    /// registration before the caller's subsequent condition loads in the
    /// SC total order, which is what makes "notifier saw `waiters == 0`"
    /// imply "waiter's re-check sees the publication".
    #[inline]
    #[must_use]
    pub fn begin_wait(&self) -> u32 {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        // An SC RMW alone does not order later non-SC loads on the C11
        // abstract machine (it compiles to a full barrier on x86/ARM, but
        // the model and TSan reason about the abstract semantics).
        fence(Ordering::SeqCst);
        self.seq.load(Ordering::Acquire)
    }

    /// Deregisters the caller (after a park returns, or instead of one).
    #[inline]
    pub fn cancel_wait(&self) {
        self.waiters.fetch_sub(1, Ordering::Release);
    }

    /// Sleeps until the wake sequence moves past `observed_seq`, a wake
    /// arrives, or `timeout` elapses (`None` sleeps unboundedly — safe
    /// because the futex compare validates `observed_seq` atomically). The
    /// caller must still hold a `begin_wait` registration and must re-check
    /// its condition afterwards.
    #[inline]
    pub fn park(&self, observed_seq: u32, timeout: Option<Duration>, shared: bool) {
        futex_wait(&self.seq, observed_seq, timeout, shared);
    }

    /// Current registered-waiter count (diagnostics and tests).
    #[must_use]
    pub fn waiters(&self) -> u32 {
        self.waiters.load(Ordering::Relaxed)
    }
}

impl Default for WaitCell {
    fn default() -> Self {
        Self::new()
    }
}

/// Tunables for the spin → yield → park progression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitConfig {
    /// `Backoff` step up to which a wait round busy-spins with
    /// exponentially growing `spin_loop` bursts.
    pub spin_limit: u32,
    /// `Backoff` step up to which a wait round yields to the OS scheduler
    /// instead of parking; past it the thread parks (the snooze
    /// threshold).
    pub yield_limit: u32,
    /// Optional upper bound on a single park. `None` (the default) parks
    /// unboundedly — the eventcount protocol guarantees wakes are never
    /// lost, so in-process queues need no watchdog. `Some(bound)` is the
    /// opt-in watchdog for waiters that must observe state changes no wake
    /// will announce — e.g. `ffq-shm` consumers probing whether a peer
    /// process died before it could run its poisoning code.
    pub max_park: Option<Duration>,
    /// When `false` the strategy never parks — it degenerates to the
    /// pre-existing pure spin/yield loop (useful for latency-critical
    /// pinned deployments and as the benchmark baseline).
    pub park: bool,
}

impl WaitConfig {
    /// The default adaptive profile: spin like the original `Backoff`
    /// (steps 0–6 spinning, 7–10 yielding), then park unboundedly.
    #[must_use]
    pub const fn adaptive() -> Self {
        Self {
            spin_limit: 6,
            yield_limit: 10,
            max_park: None,
            park: true,
        }
    }

    /// Spin/yield only — byte-for-byte the waiting behaviour this crate
    /// shipped before parking existed.
    #[must_use]
    pub const fn spin_only() -> Self {
        Self {
            spin_limit: 6,
            yield_limit: 10,
            max_park: None,
            park: false,
        }
    }

    /// Adds a park watchdog: no single park sleeps longer than `bound`.
    /// Only needed when the waited-for state can change without a wake
    /// (cross-process peer death); pure in-process waiters don't want it.
    #[must_use]
    pub const fn with_max_park(mut self, bound: Duration) -> Self {
        self.max_park = Some(bound);
        self
    }
}

impl Default for WaitConfig {
    fn default() -> Self {
        Self::adaptive()
    }
}

/// What a single [`WaitStrategy::wait_round`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitRound {
    /// Spun or yielded; the condition may or may not be ready — loop and
    /// re-check.
    Spun,
    /// Parked on the futex (possibly waking early); re-check the
    /// condition.
    Parked,
    /// The deadline passed. The caller should do one final ready check
    /// and then give up.
    Expired,
}

/// Per-wait-loop driver: owns the spin/yield/park progression for one
/// blocking or timed operation.
///
/// Usage shape (the queue crates wrap this):
///
/// ```ignore
/// let mut strat = WaitStrategy::new(cfg);
/// loop {
///     if let Some(v) = try_the_operation() { return Ok(v); }
///     match strat.wait_round(&cell, shared, deadline, &mut || condition_ready()) {
///         WaitRound::Expired => return Err(Timeout),
///         _ => {}
///     }
/// }
/// ```
pub struct WaitStrategy {
    cfg: WaitConfig,
    /// The spin/yield ladder; its configured yield limit is the snooze
    /// threshold past which rounds park. Reset by [`Self::reset`] after
    /// progress.
    backoff: Backoff,
    /// Wait rounds since the last deadline sample (spin phase only).
    since_deadline_check: u32,
    /// Parks performed, for the `parks` statistics counters.
    parks: u64,
}

impl WaitStrategy {
    /// A fresh strategy at the start of its spin phase.
    #[must_use]
    pub fn new(cfg: WaitConfig) -> Self {
        Self {
            cfg,
            backoff: Backoff::with_limits(cfg.spin_limit, cfg.yield_limit),
            since_deadline_check: 0,
            parks: 0,
        }
    }

    /// Re-arms the spin phase after the caller made progress, so bursts
    /// stay fast while only true idleness escalates to parking.
    #[inline]
    pub fn reset(&mut self) {
        self.backoff.reset();
        self.since_deadline_check = 0;
    }

    /// Number of futex parks this strategy has performed.
    #[must_use]
    pub fn parks(&self) -> u64 {
        self.parks
    }

    /// True once the next `wait_round` would park rather than spin/yield.
    #[must_use]
    pub fn is_parkable(&self) -> bool {
        self.cfg.park && self.backoff.is_parkable()
    }

    /// Executes one round of waiting: an exponential `spin_loop` burst, a
    /// `yield_now`, or a park on `cell`, per the current phase.
    ///
    /// `ready` is the wake condition; it is only consulted on the park
    /// path (between waiter registration and the sleep — the final
    /// re-check that makes parking sound) so the spin path stays exactly
    /// as cheap as the old `Backoff` loop. `deadline` of `None` waits
    /// forever. Returns what happened; on anything but `Expired` the
    /// caller re-polls its operation and loops.
    pub fn wait_round(
        &mut self,
        cell: &WaitCell,
        shared: bool,
        deadline: Option<Instant>,
        ready: &mut dyn FnMut() -> bool,
    ) -> WaitRound {
        // Phase 1+2: the classic backoff ladder, with the deadline sampled
        // on a stride so the hot spin phase rarely touches the clock.
        if !self.backoff.is_parkable() || !self.cfg.park {
            if let Some(d) = deadline {
                self.since_deadline_check += 1;
                // Always sample in the (cheap, scheduler-bound) yield
                // phase; sample on a stride while busy-spinning.
                if self.backoff.is_completed() || self.since_deadline_check >= SPIN_DEADLINE_STRIDE
                {
                    self.since_deadline_check = 0;
                    if Instant::now() >= d {
                        return WaitRound::Expired;
                    }
                }
            }
            self.backoff.wait();
            return WaitRound::Spun;
        }

        // Phase 3: park. Register first, then re-check the condition —
        // the ordering that makes a wake between check and sleep
        // impossible to lose (see module docs).
        let seq = cell.begin_wait();
        if ready() {
            cell.cancel_wait();
            return WaitRound::Spun;
        }
        let mut slice = self.cfg.max_park;
        if let Some(d) = deadline {
            // Parked rounds check the deadline every time and clamp the
            // sleep to the time remaining, so a timed wait overshoots by
            // syscall jitter, not by a full watchdog slice.
            let now = Instant::now();
            if now >= d {
                cell.cancel_wait();
                return WaitRound::Expired;
            }
            let remaining = d - now;
            slice = Some(match slice {
                Some(s) => s.min(remaining),
                None => remaining,
            });
        }
        cell.park(seq, slice, shared);
        cell.cancel_wait();
        self.parks += 1;
        WaitRound::Parked
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// A config that reaches the park phase almost immediately.
    fn eager() -> WaitConfig {
        WaitConfig {
            spin_limit: 1,
            yield_limit: 2,
            max_park: Some(Duration::from_millis(50)),
            park: true,
        }
    }

    #[test]
    fn notify_without_waiters_skips_the_sequence_bump() {
        let cell = WaitCell::new();
        cell.notify(1, false);
        cell.notify_all(false);
        assert_eq!(cell.seq.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn notify_with_a_registration_bumps_the_sequence() {
        let cell = WaitCell::new();
        let seq = cell.begin_wait();
        cell.notify(1, false);
        assert_eq!(cell.seq.load(Ordering::Relaxed), seq + 1);
        cell.cancel_wait();
        assert_eq!(cell.waiters(), 0);
    }

    #[test]
    fn default_config_parks_unboundedly() {
        let cfg = WaitConfig::default();
        assert!(cfg.park);
        assert_eq!(cfg.max_park, None);
        let watched = WaitConfig::adaptive().with_max_park(Duration::from_millis(10));
        assert_eq!(watched.max_park, Some(Duration::from_millis(10)));
    }

    #[test]
    fn strategy_progresses_spin_then_park() {
        let cfg = eager();
        let cell = WaitCell::new();
        let mut strat = WaitStrategy::new(cfg);
        let mut rounds = Vec::new();
        for _ in 0..(cfg.yield_limit + 3) {
            rounds.push(strat.wait_round(&cell, false, None, &mut || false));
            if matches!(rounds.last(), Some(WaitRound::Parked)) {
                break;
            }
        }
        // yield_limit + 1 spin/yield rounds, then parking begins.
        let spun = rounds
            .iter()
            .take_while(|r| matches!(r, WaitRound::Spun))
            .count();
        assert_eq!(spun, cfg.yield_limit as usize + 1);
        assert!(strat.is_parkable());
        assert!(matches!(rounds.last(), Some(WaitRound::Parked)));
        assert_eq!(strat.parks(), 1);
    }

    #[test]
    fn spin_only_config_never_parks() {
        let cell = WaitCell::new();
        let mut strat = WaitStrategy::new(WaitConfig {
            park: false,
            ..eager()
        });
        for _ in 0..64 {
            let r = strat.wait_round(&cell, false, None, &mut || false);
            assert_eq!(r, WaitRound::Spun);
        }
        assert_eq!(strat.parks(), 0);
        assert!(!strat.is_parkable());
        assert_eq!(cell.waiters(), 0);
    }

    #[test]
    fn ready_recheck_skips_the_park() {
        let cell = WaitCell::new();
        let mut strat = WaitStrategy::new(eager());
        // Burn through the spin phase.
        while !strat.is_parkable() {
            strat.wait_round(&cell, false, None, &mut || false);
        }
        let r = strat.wait_round(&cell, false, None, &mut || true);
        assert_eq!(r, WaitRound::Spun);
        assert_eq!(strat.parks(), 0);
        assert_eq!(cell.waiters(), 0);
    }

    #[test]
    fn parked_thread_wakes_on_notify() {
        let cell = Arc::new(WaitCell::new());
        let go = Arc::new(AtomicBool::new(false));
        let (c, g) = (Arc::clone(&cell), Arc::clone(&go));
        let waiter = std::thread::spawn(move || {
            // Unbounded parks: if the wake below were lost, this thread
            // would hang forever (the old 2 ms watchdog can no longer
            // paper over it) — so this doubles as a live lost-wake test.
            let mut strat = WaitStrategy::new(WaitConfig {
                max_park: None,
                ..eager()
            });
            let started = Instant::now();
            while !g.load(Ordering::Acquire) {
                strat.wait_round(&c, false, None, &mut || g.load(Ordering::Acquire));
            }
            (strat.parks(), started.elapsed())
        });
        // Give the waiter time to reach the park phase, then publish.
        std::thread::sleep(Duration::from_millis(50));
        go.store(true, Ordering::Release);
        cell.notify_all(false);
        let (parks, waited) = waiter.join().unwrap();
        assert!(parks >= 1, "waiter should have parked (parks = {parks})");
        assert!(
            waited < Duration::from_secs(10),
            "wake took implausibly long: {waited:?}"
        );
        assert_eq!(cell.waiters(), 0);
    }

    #[test]
    fn timed_wait_expires_close_to_its_deadline() {
        let cell = WaitCell::new();
        let mut strat = WaitStrategy::new(WaitConfig {
            max_park: Some(Duration::from_millis(20)),
            ..eager()
        });
        let timeout = Duration::from_millis(60);
        let start = Instant::now();
        let deadline = start + timeout;
        loop {
            if strat.wait_round(&cell, false, Some(deadline), &mut || false) == WaitRound::Expired {
                break;
            }
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "wait failed to expire"
            );
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= timeout, "expired early: {elapsed:?}");
        // Parked rounds clamp the sleep to the remaining time, so overshoot
        // is syscall jitter — a loose bound keeps this robust in CI.
        assert!(
            elapsed < timeout + Duration::from_millis(25),
            "overshot deadline by {:?}",
            elapsed - timeout
        );
        assert!(strat.parks() >= 1);
    }

    #[test]
    fn unbounded_timed_wait_clamps_to_deadline() {
        // max_park: None must still respect an explicit deadline: the park
        // slice becomes the remaining time, not forever.
        let cell = WaitCell::new();
        let mut strat = WaitStrategy::new(WaitConfig {
            max_park: None,
            ..eager()
        });
        let timeout = Duration::from_millis(40);
        let start = Instant::now();
        let deadline = start + timeout;
        while strat.wait_round(&cell, false, Some(deadline), &mut || false) != WaitRound::Expired {
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "failed to expire"
            );
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= timeout, "expired early: {elapsed:?}");
        assert!(
            elapsed < timeout + Duration::from_millis(50),
            "unbounded slice ignored the deadline: {elapsed:?}"
        );
    }
}

/// Loom models for the eventcount protocol. Run with
/// `RUSTFLAGS="--cfg loom" cargo test -p ffq-sync --release -- loom_`.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use ffq_loom::sync::Arc;
    use ffq_loom::thread;

    /// One producer publishes a flag and notifies; one consumer runs the
    /// real prepare/re-check/park protocol with an *unbounded* park. Under
    /// the model a lost wake is a deadlock, so this passing means the
    /// fence pair closes the race in every explored schedule and
    /// weak-memory outcome.
    #[test]
    fn loom_eventcount_park_notify_no_lost_wake() {
        ffq_loom::model(|| {
            let cell = Arc::new(WaitCell::new());
            let flag = Arc::new(AtomicU32::new(0));
            let (c, f) = (Arc::clone(&cell), Arc::clone(&flag));
            let producer = thread::spawn(move || {
                f.store(1, Ordering::Release);
                c.notify(1, false);
            });
            loop {
                if flag.load(Ordering::Acquire) != 0 {
                    break;
                }
                let seq = cell.begin_wait();
                if flag.load(Ordering::Acquire) != 0 {
                    cell.cancel_wait();
                    break;
                }
                cell.park(seq, None, false);
                cell.cancel_wait();
            }
            producer.join().unwrap();
        });
    }

    /// Same protocol driven through the real `WaitStrategy::wait_round`
    /// code path (tiny spin phase, unbounded park).
    #[test]
    fn loom_wait_round_no_lost_wake() {
        ffq_loom::model(|| {
            let cell = Arc::new(WaitCell::new());
            let flag = Arc::new(AtomicU32::new(0));
            let (c, f) = (Arc::clone(&cell), Arc::clone(&flag));
            let producer = thread::spawn(move || {
                f.store(1, Ordering::Release);
                c.notify_all(false);
            });
            let mut strat = WaitStrategy::new(WaitConfig {
                spin_limit: 0,
                yield_limit: 0,
                max_park: None,
                park: true,
            });
            while flag.load(Ordering::Acquire) == 0 {
                strat.wait_round(&cell, false, None, &mut || {
                    flag.load(Ordering::Acquire) != 0
                });
            }
            producer.join().unwrap();
        });
    }

    /// Two waiters, one notify_all: nobody may be left sleeping.
    #[test]
    fn loom_notify_all_wakes_every_waiter() {
        ffq_loom::model(|| {
            let cell = Arc::new(WaitCell::new());
            let flag = Arc::new(AtomicU32::new(0));
            let mut waiters = Vec::new();
            for _ in 0..2 {
                let (c, f) = (Arc::clone(&cell), Arc::clone(&flag));
                waiters.push(thread::spawn(move || loop {
                    if f.load(Ordering::Acquire) != 0 {
                        break;
                    }
                    let seq = c.begin_wait();
                    if f.load(Ordering::Acquire) != 0 {
                        c.cancel_wait();
                        break;
                    }
                    c.park(seq, None, false);
                    c.cancel_wait();
                }));
            }
            flag.store(1, Ordering::Release);
            cell.notify_all(false);
            for w in waiters {
                w.join().unwrap();
            }
        });
    }

    /// The PR-3 eventcount, verbatim: the notifier read `waiters` with a
    /// plain relaxed load and **no SeqCst fence** (and the waiter had no
    /// fence after its RMW). Its parks were bounded at 2 ms precisely
    /// because this protocol can lose a wake — the module used to document
    /// the race and bound the damage instead of fixing it. This model pins
    /// the bug: with unbounded parks the lost wake is a deadlock, and the
    /// checker finds it. Kept as a regression artifact — if the model
    /// checker ever stops finding this deadlock, its weak-memory modeling
    /// broke.
    struct PreFixWaitCell {
        seq: AtomicU32,
        waiters: AtomicU32,
    }

    impl PreFixWaitCell {
        const fn new() -> Self {
            Self {
                seq: AtomicU32::new(0),
                waiters: AtomicU32::new(0),
            }
        }

        fn notify(&self, n: usize) {
            // Pre-fix: no fence. The publication can miss the waiter while
            // the waiter's registration misses this load (store-buffering).
            if self.waiters.load(Ordering::Relaxed) != 0 {
                self.seq.fetch_add(1, Ordering::Release);
                futex_wake(&self.seq, n.min(u32::MAX as usize) as u32, false);
            }
        }

        fn begin_wait(&self) -> u32 {
            // Pre-fix: SeqCst RMW but no trailing fence.
            self.waiters.fetch_add(1, Ordering::SeqCst);
            self.seq.load(Ordering::Acquire)
        }

        fn cancel_wait(&self) {
            self.waiters.fetch_sub(1, Ordering::Release);
        }

        fn park(&self, observed_seq: u32) {
            futex_wait(&self.seq, observed_seq, None, false);
        }
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn loom_prefix_eventcount_loses_wakes() {
        ffq_loom::model(|| {
            let cell = Arc::new(PreFixWaitCell::new());
            let flag = Arc::new(AtomicU32::new(0));
            let (c, f) = (Arc::clone(&cell), Arc::clone(&flag));
            let producer = thread::spawn(move || {
                f.store(1, Ordering::Release);
                c.notify(1);
            });
            loop {
                if flag.load(Ordering::Acquire) != 0 {
                    break;
                }
                let seq = cell.begin_wait();
                if flag.load(Ordering::Acquire) != 0 {
                    cell.cancel_wait();
                    break;
                }
                cell.park(seq);
                cell.cancel_wait();
            }
            producer.join().unwrap();
        });
    }
}
