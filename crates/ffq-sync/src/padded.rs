use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so that it occupies its own pair of
/// cache lines.
///
/// This is the "dedicated cache lines" technique of §IV-A: two threads that
/// access *distinct* `CachePadded` values can never contend on the same cache
/// line, eliminating false sharing. The alignment is 128 rather than 64
/// because Intel's L2 spatial prefetcher fetches aligned 128-byte line pairs;
/// isolating only to 64 bytes still lets the prefetcher couple neighbouring
/// values (the same choice crossbeam makes on x86_64).
/// `repr(C)` so the padded layout is identical across separately compiled
/// binaries — queue counters wrapped in `CachePadded` live inside shared
/// memory regions mapped by more than one process (`ffq-shm`).
#[derive(Default)]
#[repr(C, align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache-line pair.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_128() {
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(core::mem::align_of::<CachePadded<[u64; 32]>>(), 128);
    }

    #[test]
    fn size_rounds_up_to_alignment() {
        assert_eq!(core::mem::size_of::<CachePadded<u8>>(), 128);
        assert_eq!(core::mem::size_of::<CachePadded<[u8; 129]>>(), 256);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn adjacent_array_elements_do_not_share_lines() {
        let arr = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &*arr[0] as *const u8 as usize;
        let b = &*arr[1] as *const u8 as usize;
        assert!(b - a >= 128);
    }
}
