//! Atomics facade: `core::sync::atomic` in production, the `ffq-loom`
//! model types under `RUSTFLAGS="--cfg loom"`.
//!
//! Everything in this crate (and in `ffq`'s cell protocol) goes through
//! this module so the loom models check the *same* code that ships. The
//! model types are `const`-constructible, so no constructor changes are
//! needed at the call sites.

#[cfg(loom)]
pub use ffq_loom::sync::atomic::*;

#[cfg(not(loom))]
pub use core::sync::atomic::*;

/// Spin-loop hint. Under loom a spin iteration must be a schedule point
/// that can hand control to the thread being waited on — otherwise the
/// model would explore unbounded self-spins — so it maps to a model yield.
#[inline]
pub fn spin_loop() {
    #[cfg(loom)]
    {
        if ffq_loom::in_model() {
            ffq_loom::thread::yield_now();
        } else {
            core::hint::spin_loop();
        }
    }
    #[cfg(not(loom))]
    core::hint::spin_loop();
}

/// OS-thread yield (model yield under loom).
#[inline]
pub fn yield_now() {
    #[cfg(loom)]
    {
        if ffq_loom::in_model() {
            ffq_loom::thread::yield_now();
        } else {
            std::thread::yield_now();
        }
    }
    #[cfg(not(loom))]
    std::thread::yield_now();
}
