//! The region lifecycle word: the `RAW → INITIALIZING → READY` creation
//! handshake with an absorbing `POISONED` state.
//!
//! `ffq-shm` overlays this word on byte 12 of every shared-memory region
//! header; it lives here, behind the [`crate::atomic`] facade, so the
//! loom models check the *same* transition code that runs cross-process
//! (the header itself is mmap-overlaid `#[repr(C)]` state that cannot be
//! driven under a model).
//!
//! The state machine is deliberately tiny:
//!
//! * a fresh (`ftruncate`d, all-zero) region reads as [`Lifecycle::Raw`];
//! * one creator wins the `RAW → INITIALIZING` CAS and formats;
//! * the creator *CASes* `INITIALIZING → READY` — the single publication
//!   point. A CAS, not a store: poisoning is legal from `INITIALIZING`
//!   (a peer can observe the creator's death mid-format), and a blind
//!   `READY` store would overwrite that verdict and resurrect a dead
//!   region (`loom_lifecycle_poison_never_lost` finds the execution);
//! * [`Lifecycle::Poisoned`] absorbs: every transition out is refused.
//!
//! The transition relation is the pure [`lifecycle_step`]; the word's
//! methods are CAS loops over it, so the unit-testable relation and the
//! concurrent object can never drift apart.

use crate::atomic::{AtomicU32, Ordering};

/// The lifecycle states of a region. Numeric values are the on-disk
/// encoding; `Raw` must be 0 so a fresh all-zero region reads as
/// unformatted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Lifecycle {
    /// Fresh zeroed region; nothing valid in it.
    Raw = 0,
    /// A creator won the format race and is writing the region.
    Initializing = 1,
    /// Fully formatted; attach freely.
    Ready = 2,
    /// A peer died mid-operation (or poisoned explicitly); permanently dead.
    Poisoned = 3,
}

impl Lifecycle {
    /// Decodes the on-region word; `None` for values this version never
    /// writes.
    pub fn from_u32(v: u32) -> Option<Self> {
        match v {
            0 => Some(Self::Raw),
            1 => Some(Self::Initializing),
            2 => Some(Self::Ready),
            3 => Some(Self::Poisoned),
            _ => None,
        }
    }
}

/// Events that drive the lifecycle word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// A creator claims the region for formatting.
    BeginInit,
    /// The creator publishes the formatted region.
    Publish,
    /// A handle poisons the queue (dead peer detected, or explicit).
    Poison,
}

/// The pure lifecycle transition relation; `None` means the event is not
/// legal in that state (the on-region CAS fails accordingly).
///
/// Invariants the tests pin down: `Poisoned` is absorbing (no event leaves
/// it, `Poison` keeps it), `Ready` is reachable only through
/// `Raw → Initializing → Ready`, and a `Raw` region cannot be poisoned
/// (there is nothing to protect yet — the format CAS still guards it).
pub fn lifecycle_step(state: Lifecycle, ev: LifecycleEvent) -> Option<Lifecycle> {
    use Lifecycle::*;
    use LifecycleEvent::*;
    match (state, ev) {
        (Raw, BeginInit) => Some(Initializing),
        (Initializing, Publish) => Some(Ready),
        (Initializing, Poison) | (Ready, Poison) | (Poisoned, Poison) => Some(Poisoned),
        _ => None,
    }
}

/// The lifecycle word itself: an atomic `u32` whose transitions are
/// exactly the [`lifecycle_step`] relation, raced through CAS.
///
/// `#[repr(transparent)]` over the facade's `AtomicU32` so `ffq-shm` can
/// embed it at a fixed offset in the `#[repr(C)]` region header (in
/// production the facade type *is* `core::sync::atomic::AtomicU32`; the
/// fat model type only exists under `cfg(loom)`, where no region header
/// is ever built).
#[repr(transparent)]
pub struct LifecycleWord(AtomicU32);

impl LifecycleWord {
    /// A fresh word, reading as [`Lifecycle::Raw`] — the all-zero state a
    /// new region starts in.
    pub const fn new() -> Self {
        Self(AtomicU32::new(Lifecycle::Raw as u32))
    }

    /// Decodes the current state (`Acquire`, so observing `Ready` makes
    /// everything the creator wrote before publication visible). `None`
    /// for corrupt values this version never writes.
    pub fn state(&self) -> Option<Lifecycle> {
        Lifecycle::from_u32(self.0.load(Ordering::Acquire))
    }

    /// Claims the region for formatting: CAS `RAW → INITIALIZING`.
    /// Returns `false` if some other process got there first (in any
    /// state — formatted, mid-format, or poisoned).
    pub fn begin_init(&self) -> bool {
        self.0
            .compare_exchange(
                Lifecycle::Raw as u32,
                Lifecycle::Initializing as u32,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Publishes the formatted region: CAS `INITIALIZING → READY`, the
    /// release point attachers synchronize with.
    ///
    /// Returns `false` if the word is no longer `INITIALIZING` — in
    /// practice, a peer poisoned the region mid-format (it watched the
    /// creator die). The caller must then abandon the region rather than
    /// hand out handles to it; the poison verdict stands.
    pub fn publish_ready(&self) -> bool {
        self.0
            .compare_exchange(
                Lifecycle::Initializing as u32,
                Lifecycle::Ready as u32,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Poisons the region (CAS loop through [`lifecycle_step`]); returns
    /// `true` if the region is poisoned on return (newly or already).
    /// `false` means the word is `RAW` (nothing to poison) or corrupt.
    pub fn poison(&self) -> bool {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let Some(state) = Lifecycle::from_u32(cur) else {
                return false;
            };
            if state == Lifecycle::Poisoned {
                return true;
            }
            match lifecycle_step(state, LifecycleEvent::Poison) {
                None => return false, // RAW: nothing to poison
                Some(next) => {
                    match self.0.compare_exchange_weak(
                        cur,
                        next as u32,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => return true,
                        Err(found) => cur = found,
                    }
                }
            }
        }
    }

    /// `true` once the word reads `POISONED`.
    pub fn is_poisoned(&self) -> bool {
        self.0.load(Ordering::Acquire) == Lifecycle::Poisoned as u32
    }
}

impl Default for LifecycleWord {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn step_relation_invariants() {
        use Lifecycle::*;
        use LifecycleEvent::*;
        // Poisoned absorbs; Raw cannot be poisoned; Ready only via the
        // two-step path.
        for ev in [BeginInit, Publish, Poison] {
            let next = lifecycle_step(Poisoned, ev);
            assert!(matches!(next, None | Some(Poisoned)));
        }
        assert_eq!(lifecycle_step(Raw, Poison), None);
        assert_eq!(lifecycle_step(Raw, Publish), None);
        assert_eq!(lifecycle_step(Raw, BeginInit), Some(Initializing));
        assert_eq!(lifecycle_step(Initializing, Publish), Some(Ready));
        assert_eq!(lifecycle_step(Ready, BeginInit), None);
        assert_eq!(lifecycle_step(Ready, Publish), None);
    }

    #[test]
    fn word_happy_path_and_poison() {
        let w = LifecycleWord::new();
        assert_eq!(w.state(), Some(Lifecycle::Raw));
        assert!(!w.poison(), "RAW cannot be poisoned");
        assert!(w.begin_init());
        assert!(!w.begin_init(), "format claim is exclusive");
        assert!(w.publish_ready());
        assert!(!w.publish_ready(), "publication is one-shot");
        assert_eq!(w.state(), Some(Lifecycle::Ready));
        assert!(w.poison());
        assert!(w.poison(), "poison is idempotent");
        assert!(w.is_poisoned());
        assert!(!w.begin_init());
        assert!(!w.publish_ready(), "poison verdict must stand");
    }

    #[test]
    fn poison_mid_format_blocks_publication() {
        let w = LifecycleWord::new();
        assert!(w.begin_init());
        assert!(w.poison(), "INITIALIZING may be poisoned (dead creator)");
        assert!(
            !w.publish_ready(),
            "a poisoned mid-format region must refuse publication"
        );
        assert!(w.is_poisoned());
    }
}

#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use std::sync::Arc;

    /// The format race: two creators CAS `RAW → INITIALIZING`; exactly
    /// one may win in every interleaving (the loser must not also format).
    #[test]
    fn loom_lifecycle_format_race_single_winner() {
        ffq_loom::model(|| {
            let w = Arc::new(LifecycleWord::new());
            let w2 = Arc::clone(&w);
            let t = ffq_loom::thread::spawn(move || w2.begin_init());
            let mine = w.begin_init();
            let theirs = t.join().unwrap();
            assert!(mine ^ theirs, "the format claim must have one winner");
            assert_eq!(w.state(), Some(Lifecycle::Initializing));
        });
    }

    /// The hole the CAS publication closes: a peer poisons the region
    /// mid-format (it watched the creator die) while the creator races to
    /// publish. Whatever the interleaving, a successful poison verdict is
    /// final — the old blind `READY` store overwrote it, resurrecting a
    /// region some handle had already reported dead.
    #[test]
    fn loom_lifecycle_poison_never_lost() {
        ffq_loom::model(|| {
            let w = Arc::new(LifecycleWord::new());
            assert!(w.begin_init());
            let w2 = Arc::clone(&w);
            let poisoner = ffq_loom::thread::spawn(move || w2.poison());
            let published = w.publish_ready();
            let poisoned = poisoner.join().unwrap();
            assert!(poisoned, "INITIALIZING and READY are both poisonable");
            if published {
                // Publish won the race; the poison landed on READY after.
                assert!(w.is_poisoned());
            } else {
                // Poison won; publication must have refused to overwrite.
                assert_eq!(w.state(), Some(Lifecycle::Poisoned));
            }
            assert!(w.is_poisoned(), "a returned poison verdict is forever");
        });
    }

    /// Publication is a release point: an attacher that observes `READY`
    /// must also observe everything the creator wrote before publishing
    /// (modeled by one relaxed config word, as in the region header).
    #[test]
    fn loom_lifecycle_ready_publishes_config() {
        use crate::atomic::{AtomicU64, Ordering};
        ffq_loom::model(|| {
            let w = Arc::new(LifecycleWord::new());
            let cfg = Arc::new(AtomicU64::new(0));
            let (w2, cfg2) = (Arc::clone(&w), Arc::clone(&cfg));
            let creator = ffq_loom::thread::spawn(move || {
                assert!(w2.begin_init());
                cfg2.store(7, Ordering::Relaxed);
                assert!(w2.publish_ready());
            });
            if w.state() == Some(Lifecycle::Ready) {
                assert_eq!(
                    cfg.load(Ordering::Relaxed),
                    7,
                    "READY observed but the creator's config writes were not"
                );
            }
            creator.join().unwrap();
        });
    }

    /// Concurrent poisons agree: both report the region dead, and the
    /// absorbing state holds against a straggling publish attempt.
    #[test]
    fn loom_lifecycle_double_poison_absorbs() {
        ffq_loom::model(|| {
            let w = Arc::new(LifecycleWord::new());
            assert!(w.begin_init());
            let (w2, w3) = (Arc::clone(&w), Arc::clone(&w));
            let a = ffq_loom::thread::spawn(move || w2.poison());
            let b = ffq_loom::thread::spawn(move || w3.poison());
            assert!(a.join().unwrap());
            assert!(b.join().unwrap());
            assert!(!w.publish_ready());
            assert!(w.is_poisoned());
        });
    }
}
