//! Model threads: `spawn` / `yield_now` / `JoinHandle`, mirroring the
//! subset of `std::thread` (and loom's `loom::thread`) the queues use.

use std::sync::{Arc, Mutex};

use crate::rt;

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
}

/// Spawn a model thread. The child starts with the parent's clock
/// (spawn is a happens-before edge), and begins running only when the
/// scheduler hands it the baton.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (tid, rt_handle) = rt::register_spawn();
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    rt::run_thread(rt_handle, tid, move || {
        let v = f();
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
    });
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result. Mirrors
    /// `std::thread::JoinHandle::join`; the `Err` arm is never produced
    /// because a panicking model thread aborts the whole execution.
    pub fn join(self) -> std::thread::Result<T> {
        rt::join_thread(self.tid);
        match self.result.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(v) => Ok(v),
            // The joined thread panicked; the execution is aborting and the
            // failure is already recorded — unwind quietly.
            None => std::panic::panic_any(rt::Abort),
        }
    }
}

/// A free context switch that must hand the baton to another ready thread
/// when one exists. Spin loops must call this to stay explorable.
pub fn yield_now() {
    rt::yield_now();
}
