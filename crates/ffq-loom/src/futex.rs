//! Model futex.
//!
//! The "kernel" compare reads the newest store in modification order (a real
//! futex reads RAM under the hashed bucket lock, not a stale cache view).
//! Two deliberate differences from the OS futex, both chosen so that
//! protocol bugs surface as hard failures:
//!
//! - **no timeouts** — a park is woken or it blocks forever, so a lost
//!   wakeup becomes a model deadlock instead of a bounded oversleep;
//! - **no spurious wakeups** — callers re-check predicates anyway, and
//!   generating them would only inflate the state space.

use crate::rt;
use crate::sync::atomic::AtomicU32;

/// Model `FUTEX_WAIT`: block iff the word still holds `expected`.
pub fn futex_wait(word: &AtomicU32, expected: u32) {
    let (gid, init) = word.key();
    rt::futex_wait(gid, init, expected);
}

/// Model `FUTEX_WAKE`: make up to `n` parked threads runnable; returns how
/// many were woken.
pub fn futex_wake(word: &AtomicU32, n: usize) -> usize {
    let (gid, init) = word.key();
    rt::futex_wake(gid, init, n)
}
