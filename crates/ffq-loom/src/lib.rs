//! # ffq-loom — a minimal model checker for the FFQ reproduction
//!
//! This crate exists because the `cfg(loom)` builds of `ffq-sync` and `ffq`
//! need a loom-style checker and this workspace builds fully offline with
//! zero external dependencies. It implements the subset of
//! [loom](https://docs.rs/loom)'s API the FFQ crates use — `model`,
//! `thread::{spawn, yield_now}`, `sync::atomic`, plus a model futex — over
//! a small exhaustive runtime:
//!
//! - **schedules**: threads are serialized and every atomic op / fence /
//!   futex call / spawn / join / yield is a schedule point; exploration is
//!   depth-first over recorded decision traces with a preemption bound
//!   (default 2);
//! - **weak memory**: per-location store histories with vector clocks let
//!   loads read stale-but-coherent values (until a yield, which grants
//!   eventual visibility so spin loops terminate), modeling C11 relaxed /
//!   release-acquire / SC semantics including release sequences, fence
//!   synchronization, and an SC clock for `SeqCst` — see `rt` module docs
//!   for the exact rules and the documented simplifications;
//! - **failures**: assertion panics inside the model, deadlocks (every
//!   live thread blocked), and livelocks (op-cap exceeded) abort the run
//!   and re-panic with a description on the calling test thread, so
//!   `#[should_panic(expected = "deadlock")]` works as a regression pin.
//!
//! Unlike real loom the atomic types are `const`-constructible, so
//! production code keeps its `const fn new` constructors; the cost is that
//! `static` atomics reset between executions (create model state fresh in
//! the closure, as all FFQ models do). Data accesses that are not model
//! atomics (e.g. payload writes through `UnsafeCell`) are *not*
//! race-checked; the models verify the control-word protocols that make
//! those accesses well-ordered.

#![warn(missing_docs)]

mod rt;

pub mod futex;
pub mod sync;
pub mod thread;

pub use rt::{in_model, model, model_bounded};
