//! The model-checking runtime.
//!
//! One *model run* (`crate::model`) executes the closure many times. Each
//! execution runs the model threads as real OS threads, but serialized: a
//! single baton (`ExecState::active`) decides who runs, and every visible
//! operation (atomic access, fence, futex call, spawn/join/yield) is a
//! *schedule point* where the runtime may hand the baton to another thread.
//! Every point where more than one continuation is legal — which thread runs
//! next, or which store a load reads from — is recorded as a [`Choice`]; the
//! driver replays the recorded prefix and advances the last choice like a
//! counter (depth-first search) until the space is exhausted.
//!
//! # Memory model
//!
//! Stores are kept per location as an append-only history with vector
//! clocks. A load may read any store that is not stale for the reader:
//! the *coherence floor* is the newest store the reader has already seen or
//! that happens-before the reader, and everything from the floor to the
//! newest store is a legal read-from (one DFS choice). This models C11
//! release/acquire + relaxed semantics closely:
//!
//! - a `Release`-or-stronger store publishes the writer's clock in the
//!   store's `sync_vc`; an `Acquire`-or-stronger load joins it into the
//!   reader's clock (synchronizes-with);
//! - a `Relaxed` load banks the store's `sync_vc` into `acq_pending`,
//!   claimed by a later `fence(Acquire)` (fence synchronization);
//! - a `Relaxed` store after a `fence(Release)` carries the fence clock
//!   (so `fence(Release)` + relaxed store + acquire load synchronizes);
//! - RMWs read the *newest* store and continue the release sequence
//!   (their `sync_vc` joins the overwritten store's `sync_vc`); plain
//!   stores do not (C++20 release-sequence rules);
//! - `SeqCst` operations and fences maintain a per-execution `sc_clock`:
//!   each SC op joins it into the thread clock and then publishes the
//!   thread clock back. This gives SC ops a total order consistent with
//!   happens-before and makes store-buffering outcomes where both SC-fenced
//!   readers miss both stores impossible — exactly the guarantee the
//!   eventcount protocol buys with its SeqCst fences. It is slightly
//!   stronger than C11 in corners (an SC *load* also publishes), which can
//!   only under-approximate the set of explored behaviors for non-SC code.
//! - modification order is execution order (stores append); CAS failures
//!   read the newest store (documented simplification — a stale-read CAS
//!   failure is observationally a spurious failure plus retry, which the
//!   calling loops here all tolerate);
//! - a `yield_now` raises the yielding thread's coherence floor to the
//!   newest store on every location (C++ [intro.progress] eventual
//!   visibility: a thread only yields from a spin loop, and on hardware
//!   that wait is always long enough for completed stores to reach it).
//!   Without this rule every spin iteration is a fresh stale-read choice,
//!   so the DFS contains an infinite all-stale path that trips the
//!   livelock cap even when the awaited store already landed. Stale
//!   reads remain fully explored up to the first yield.
//!
//! # Termination
//!
//! Exploration is bounded by a *preemption bound* (default 2): taking the
//! baton away from a thread that could keep running costs budget; switches
//! at yields, blocks, and exits are free. `yield_now` must hand off to
//! another ready thread when one exists, so spin loops that yield (the
//! `Backoff` used by the queues under `cfg(loom)`) cannot starve the
//! system. A per-thread operation cap and a global execution cap turn
//! accidental infinite loops into loud failures instead of hangs.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Upper bound on threads per execution (including the model's main thread).
pub(crate) const MAX_THREADS: usize = 6;

/// Per-thread schedule-point cap; tripping it means a loop is not yielding.
const MAX_OPS_PER_THREAD: u64 = 200_000;

/// Global cap on executions explored by one `model()` call.
const MAX_EXECUTIONS: u64 = 2_000_000;

/// Default preemption bound (see module docs).
const DEFAULT_PREEMPTION_BOUND: u32 = 2;

/// Sentinel panic payload used to unwind model threads when an execution
/// aborts (failure found). Never shown to the user: `catch_unwind` filters
/// it in `run_thread`.
pub(crate) struct Abort;

/// A vector clock over model threads.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub(crate) struct Vc([u32; MAX_THREADS]);

impl Vc {
    fn join(&mut self, other: &Vc) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(other.0[i]);
        }
    }

    /// `self` happens-after (or equals) `other`.
    fn geq(&self, other: &Vc) -> bool {
        (0..MAX_THREADS).all(|i| self.0[i] >= other.0[i])
    }
}

/// One entry in a location's store history.
struct Store {
    val: u128,
    /// Clock of the writer at the write; used for the coherence floor.
    write_vc: Vc,
    /// Clock released by this store (empty for relaxed stores with no
    /// preceding release fence); acquired by readers per their ordering.
    sync_vc: Vc,
}

/// A model memory location (one atomic variable).
struct Location {
    stores: Vec<Store>,
    /// Newest store index each thread has read or overwritten; a thread
    /// never reads older than its own mark (per-location coherence).
    last_seen: [usize; MAX_THREADS],
}

/// One recorded nondeterministic decision.
#[derive(Clone, Copy, Debug)]
struct Choice {
    chosen: usize,
    n: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockReason {
    /// Parked on the futex modeled by location index.
    Futex(usize),
    /// Waiting in `JoinHandle::join` for the thread id.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Ready,
    Blocked(BlockReason),
    Finished,
}

struct ThreadInfo {
    state: TState,
    vc: Vc,
    /// Pending acquire clock: sync clocks of relaxed-read stores, claimed
    /// by the next `fence(Acquire)`.
    acq_pending: Vc,
    /// Clock at the last `fence(Release)`; carried by later relaxed stores.
    fence_rel: Vc,
    ops: u64,
}

struct ExecState {
    threads: Vec<ThreadInfo>,
    active: usize,
    locations: Vec<Location>,
    loc_map: HashMap<usize, usize>,
    sc_clock: Vc,
    trace: Vec<Choice>,
    cursor: usize,
    preemptions: u32,
    bound: u32,
    failure: Option<String>,
    abort: bool,
    done: bool,
}

pub(crate) struct Rt {
    mx: Mutex<ExecState>,
    cv: Condvar,
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Rt>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn set_current(rt: Arc<Rt>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((rt, tid)));
}

fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

fn current() -> (Arc<Rt>, usize) {
    CURRENT.with(|c| {
        c.borrow().clone().expect(
            "ffq-loom model operation used outside ffq_loom::model(); \
             loom-cfg'd code must only run inside a model closure",
        )
    })
}

/// True when the calling OS thread is inside a model execution.
pub fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn is_sc(ord: Ordering) -> bool {
    ord == Ordering::SeqCst
}

fn acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn fresh_thread(vc: Vc) -> ThreadInfo {
    ThreadInfo {
        state: TState::Ready,
        vc,
        acq_pending: Vc::default(),
        fence_rel: Vc::default(),
        ops: 0,
    }
}

impl ExecState {
    fn new(bound: u32, trace: Vec<Choice>) -> Self {
        ExecState {
            threads: vec![fresh_thread(Vc::default())],
            active: 0,
            locations: Vec::new(),
            loc_map: HashMap::new(),
            sc_clock: Vc::default(),
            trace,
            cursor: 0,
            preemptions: 0,
            bound,
            failure: None,
            abort: false,
            done: false,
        }
    }

    fn ready_others(&self, me: usize) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|&(i, t)| i != me && t.state == TState::Ready)
            .map(|(i, _)| i)
            .collect()
    }

    fn blocked_tids(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|&(_, t)| matches!(t.state, TState::Blocked(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Record or replay one decision among `n` options. Decisions with a
    /// single option are not recorded (they replay trivially).
    fn next_choice(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        if n == 1 {
            return 0;
        }
        if self.cursor < self.trace.len() {
            let c = self.trace[self.cursor];
            self.cursor += 1;
            if c.n != n {
                self.fail(format!(
                    "ffq-loom internal error: nondeterministic replay (recorded \
                     {} options, now {}); model closures must be deterministic \
                     apart from scheduling",
                    c.n, n
                ));
                return c.chosen.min(n - 1);
            }
            c.chosen
        } else {
            self.trace.push(Choice { chosen: 0, n });
            self.cursor += 1;
            0
        }
    }

    fn fail(&mut self, msg: String) {
        self.failure.get_or_insert(msg);
        self.abort = true;
    }
}

impl Rt {
    fn new(bound: u32, trace: Vec<Choice>) -> Rt {
        Rt {
            mx: Mutex::new(ExecState::new(bound, trace)),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.mx.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn notify(&self) {
        self.cv.notify_all();
    }

    /// Park the calling OS thread until it holds the baton (or the
    /// execution aborts, in which case unwind with the sentinel).
    fn wait_active<'a>(
        &'a self,
        mut g: MutexGuard<'a, ExecState>,
        me: usize,
    ) -> MutexGuard<'a, ExecState> {
        loop {
            if g.abort {
                drop(g);
                panic::panic_any(Abort);
            }
            if g.active == me && g.threads[me].state == TState::Ready {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn bump_ops<'a>(
        &'a self,
        mut g: MutexGuard<'a, ExecState>,
        me: usize,
        what: &str,
    ) -> MutexGuard<'a, ExecState> {
        if g.abort {
            if std::thread::panicking() {
                // Already unwinding (Abort or a user panic): destructors
                // may touch model atomics; serve them without scheduling
                // instead of panicking inside a panic.
                return g;
            }
            drop(g);
            panic::panic_any(Abort);
        }
        g.threads[me].ops += 1;
        if g.threads[me].ops > MAX_OPS_PER_THREAD {
            g.fail(format!(
                "thread {me} exceeded {MAX_OPS_PER_THREAD} schedule points in \
                 one execution ({what}): a loop is spinning without making \
                 progress (model livelock)"
            ));
            self.notify();
            if std::thread::panicking() {
                return g;
            }
            drop(g);
            panic::panic_any(Abort);
        }
        g
    }

    /// Schedule point before a visible operation: optionally preempt.
    fn op_point<'a>(
        &'a self,
        g: MutexGuard<'a, ExecState>,
        me: usize,
    ) -> MutexGuard<'a, ExecState> {
        let mut g = self.bump_ops(g, me, "op");
        let others = g.ready_others(me);
        if g.abort || others.is_empty() || g.preemptions >= g.bound {
            // On abort, `bump_ops` only returns (instead of unwinding)
            // for a thread that is already panicking; let its destructors
            // run unscheduled rather than double-panic into a process
            // abort that swallows the failure report.
            return g;
        }
        let c = g.next_choice(others.len() + 1);
        if g.abort {
            self.notify();
            drop(g);
            panic::panic_any(Abort);
        }
        if c == 0 {
            return g;
        }
        g.preemptions += 1;
        g.active = others[c - 1];
        self.notify();
        self.wait_active(g, me)
    }

    /// `yield_now`: a free switch that must pick another ready thread when
    /// one exists (this is what bounds spin loops).
    fn yield_point<'a>(
        &'a self,
        g: MutexGuard<'a, ExecState>,
        me: usize,
    ) -> MutexGuard<'a, ExecState> {
        let mut g = self.bump_ops(g, me, "yield");
        // Eventual visibility (C++ [intro.progress]): an implementation
        // "should ensure" every store becomes visible to all threads in a
        // finite amount of time. A thread only reaches a yield from a spin
        // loop, i.e. after choosing to wait — on hardware that wait is
        // always long enough for completed stores to reach it. Raise the
        // yielder's coherence floor to the newest store everywhere so its
        // re-reads cannot stay stale forever: without this, every spin
        // iteration is a fresh stale-read choice and the DFS contains an
        // infinite all-stale path that trips the livelock cap even though
        // the awaited store already landed. Stale reads remain fully
        // explored up to the first yield.
        for loc in g.locations.iter_mut() {
            loc.last_seen[me] = loc.stores.len() - 1;
        }
        let others = g.ready_others(me);
        if g.abort || others.is_empty() {
            // See `op_point`: an aborting, already-panicking thread must
            // not re-enter the scheduler.
            return g;
        }
        let c = g.next_choice(others.len());
        if g.abort {
            self.notify();
            drop(g);
            panic::panic_any(Abort);
        }
        g.active = others[c];
        self.notify();
        self.wait_active(g, me)
    }

    /// The caller has marked itself `Blocked`; hand the baton on. Returns
    /// once some other thread made this one ready and scheduled it.
    fn block_point<'a>(
        &'a self,
        mut g: MutexGuard<'a, ExecState>,
        me: usize,
        what: &str,
    ) -> MutexGuard<'a, ExecState> {
        debug_assert!(matches!(g.threads[me].state, TState::Blocked(_)));
        let ready = g.ready_others(me);
        if ready.is_empty() {
            let blocked = g.blocked_tids();
            g.fail(format!(
                "deadlock: all live threads are blocked ({blocked:?}); thread \
                 {me} blocked on {what} with no thread left to wake it"
            ));
            self.notify();
            // Fall through: wait_active sees `abort` and unwinds.
        } else {
            let c = g.next_choice(ready.len());
            g.active = ready[c];
            self.notify();
        }
        self.wait_active(g, me)
    }

    /// The caller is done; pass the baton and return (the OS thread exits).
    fn finish_point(&self, mut g: MutexGuard<'_, ExecState>, me: usize) {
        g.threads[me].state = TState::Finished;
        let final_vc = g.threads[me].vc;
        for t in g.threads.iter_mut() {
            if t.state == TState::Blocked(BlockReason::Join(me)) {
                t.state = TState::Ready;
                t.vc.join(&final_vc);
            }
        }
        let ready = g.ready_others(me);
        if ready.is_empty() {
            if g.threads.iter().all(|t| t.state == TState::Finished) {
                g.done = true;
            } else {
                let blocked = g.blocked_tids();
                g.fail(format!(
                    "deadlock: last runnable thread {me} exited while threads \
                     {blocked:?} are still blocked (lost wakeup?)"
                ));
            }
        } else {
            let c = g.next_choice(ready.len());
            g.active = ready[c];
        }
        self.notify();
    }
}

// ---------------------------------------------------------------------------
// Memory-model operations, called from sync.rs / futex.rs. Each resolves
// the current runtime, takes the lock, runs the schedule point, then
// performs the operation under the vector-clock semantics above.
// ---------------------------------------------------------------------------

/// Resolve (or create) the location index for a model atomic identified by
/// its global id, seeding the history with the atomic's `const new` value.
fn loc_index(st: &mut ExecState, gid: usize, init: u128) -> usize {
    if let Some(&i) = st.loc_map.get(&gid) {
        return i;
    }
    let i = st.locations.len();
    st.locations.push(Location {
        stores: vec![Store {
            val: init,
            write_vc: Vc::default(),
            sync_vc: Vc::default(),
        }],
        last_seen: [0; MAX_THREADS],
    });
    st.loc_map.insert(gid, i);
    i
}

/// Coherence floor: the oldest store index this thread may still read.
fn floor_of(st: &ExecState, li: usize, me: usize) -> usize {
    let loc = &st.locations[li];
    let mut floor = loc.last_seen[me];
    let vc = st.threads[me].vc;
    for (i, s) in loc.stores.iter().enumerate().skip(floor + 1) {
        if vc.geq(&s.write_vc) {
            floor = i;
        }
    }
    floor
}

fn sc_pre(g: &mut ExecState, me: usize, ord: Ordering) {
    if is_sc(ord) {
        let sc = g.sc_clock;
        g.threads[me].vc.join(&sc);
    }
}

fn sc_post(g: &mut ExecState, me: usize, ord: Ordering) {
    if is_sc(ord) {
        let vc = g.threads[me].vc;
        g.sc_clock.join(&vc);
    }
}

fn absorb_read(g: &mut ExecState, me: usize, sync: Vc, ord: Ordering) {
    if acquires(ord) {
        g.threads[me].vc.join(&sync);
    } else {
        g.threads[me].acq_pending.join(&sync);
    }
}

pub(crate) fn atomic_load(gid: usize, init: u128, ord: Ordering) -> u128 {
    let (rt, me) = current();
    let mut g = rt.op_point(rt.lock(), me);
    sc_pre(&mut g, me, ord);
    let li = loc_index(&mut g, gid, init);
    let floor = floor_of(&g, li, me);
    let newest = g.locations[li].stores.len() - 1;
    let pick = floor + g.next_choice(newest - floor + 1);
    let loc = &mut g.locations[li];
    loc.last_seen[me] = loc.last_seen[me].max(pick);
    let val = loc.stores[pick].val;
    let sync = loc.stores[pick].sync_vc;
    absorb_read(&mut g, me, sync, ord);
    sc_post(&mut g, me, ord);
    val
}

pub(crate) fn atomic_store(gid: usize, init: u128, val: u128, ord: Ordering) {
    let (rt, me) = current();
    let mut g = rt.op_point(rt.lock(), me);
    sc_pre(&mut g, me, ord);
    let li = loc_index(&mut g, gid, init);
    g.threads[me].vc.0[me] += 1;
    let write_vc = g.threads[me].vc;
    let sync_vc = if releases(ord) {
        write_vc
    } else {
        g.threads[me].fence_rel
    };
    let loc = &mut g.locations[li];
    loc.stores.push(Store {
        val,
        write_vc,
        sync_vc,
    });
    loc.last_seen[me] = loc.stores.len() - 1;
    sc_post(&mut g, me, ord);
}

/// Read-modify-write. Reads the newest store (atomicity pins the read to
/// the tail of modification order), applies `f`, appends the result.
/// Continues the release sequence per C++20 (sync joins the read store's
/// sync clock).
pub(crate) fn atomic_rmw(
    gid: usize,
    init: u128,
    ord: Ordering,
    f: impl FnOnce(u128) -> u128,
) -> u128 {
    let (rt, me) = current();
    let mut g = rt.op_point(rt.lock(), me);
    sc_pre(&mut g, me, ord);
    let li = loc_index(&mut g, gid, init);
    let newest = g.locations[li].stores.len() - 1;
    let old = g.locations[li].stores[newest].val;
    let old_sync = g.locations[li].stores[newest].sync_vc;
    absorb_read(&mut g, me, old_sync, ord);
    g.threads[me].vc.0[me] += 1;
    let write_vc = g.threads[me].vc;
    let mut sync_vc = if releases(ord) {
        write_vc
    } else {
        g.threads[me].fence_rel
    };
    sync_vc.join(&old_sync);
    let newv = f(old);
    let loc = &mut g.locations[li];
    loc.stores.push(Store {
        val: newv,
        write_vc,
        sync_vc,
    });
    loc.last_seen[me] = loc.stores.len() - 1;
    sc_post(&mut g, me, ord);
    old
}

/// Compare-exchange. Success is an RMW; failure is a load of the newest
/// store with the failure ordering (documented simplification: failures
/// never read stale values — callers retry anyway).
pub(crate) fn atomic_cas(
    gid: usize,
    init: u128,
    expected: u128,
    new: u128,
    success: Ordering,
    failure: Ordering,
) -> Result<u128, u128> {
    let (rt, me) = current();
    let mut g = rt.op_point(rt.lock(), me);
    let li = loc_index(&mut g, gid, init);
    let newest = g.locations[li].stores.len() - 1;
    let cur = g.locations[li].stores[newest].val;
    if cur == expected {
        sc_pre(&mut g, me, success);
        let old_sync = g.locations[li].stores[newest].sync_vc;
        absorb_read(&mut g, me, old_sync, success);
        g.threads[me].vc.0[me] += 1;
        let write_vc = g.threads[me].vc;
        let mut sync_vc = if releases(success) {
            write_vc
        } else {
            g.threads[me].fence_rel
        };
        sync_vc.join(&old_sync);
        let loc = &mut g.locations[li];
        loc.stores.push(Store {
            val: new,
            write_vc,
            sync_vc,
        });
        loc.last_seen[me] = loc.stores.len() - 1;
        sc_post(&mut g, me, success);
        Ok(cur)
    } else {
        sc_pre(&mut g, me, failure);
        let sync = g.locations[li].stores[newest].sync_vc;
        absorb_read(&mut g, me, sync, failure);
        g.locations[li].last_seen[me] = newest;
        sc_post(&mut g, me, failure);
        Err(cur)
    }
}

pub(crate) fn fence(ord: Ordering) {
    let (rt, me) = current();
    let mut g = rt.op_point(rt.lock(), me);
    match ord {
        Ordering::Acquire => {
            let pending = g.threads[me].acq_pending;
            g.threads[me].vc.join(&pending);
        }
        Ordering::Release => {
            let vc = g.threads[me].vc;
            g.threads[me].fence_rel = vc;
        }
        Ordering::AcqRel => {
            let pending = g.threads[me].acq_pending;
            g.threads[me].vc.join(&pending);
            let vc = g.threads[me].vc;
            g.threads[me].fence_rel = vc;
        }
        Ordering::SeqCst => {
            let sc = g.sc_clock;
            g.threads[me].vc.join(&sc);
            let pending = g.threads[me].acq_pending;
            g.threads[me].vc.join(&pending);
            let vc = g.threads[me].vc;
            g.threads[me].fence_rel = vc;
            g.sc_clock.join(&vc);
        }
        _ => panic!("fence does not accept {ord:?}"),
    }
}

// ---------------------------------------------------------------------------
// Futex model. The "kernel" reads the newest store in modification order
// (real futexes read RAM, not a thread's cache view). Timeouts are
// intentionally NOT modeled: a park is either woken or counts as blocked
// forever, so a lost wake shows up as a hard deadlock failure instead of
// being masked by a watchdog. Spurious wakeups are not generated (callers
// re-check predicates anyway; adding them would only grow the state space).
// ---------------------------------------------------------------------------

pub(crate) fn futex_wait(gid: usize, init: u128, expected: u32) {
    let (rt, me) = current();
    let mut g = rt.op_point(rt.lock(), me);
    let li = loc_index(&mut g, gid, init);
    let newest = g.locations[li].stores.len() - 1;
    let cur = g.locations[li].stores[newest].val as u32;
    // The kernel's compare told the caller the current value: advance its
    // coherence floor so later loads of this word cannot travel back in
    // time. No clock absorption — futex synchronizes nothing — but without
    // the floor a retry loop (stale `seq` read -> EAGAIN -> reread the same
    // stale store) is an infinite execution the DFS would chase to the op
    // cap. Real memory systems propagate stores in finite time; this is the
    // model's finite-propagation assumption, applied at the one blocking
    // primitive whose whole contract is "I read RAM".
    let loc = &mut g.locations[li];
    loc.last_seen[me] = loc.last_seen[me].max(newest);
    if cur != expected || g.abort {
        // On abort the execution is being torn down; never park a
        // destructor-running (already panicking) thread.
        return;
    }
    g.threads[me].state = TState::Blocked(BlockReason::Futex(li));
    let _g = rt.block_point(g, me, "futex_wait");
}

pub(crate) fn futex_wake(gid: usize, init: u128, n: usize) -> usize {
    let (rt, me) = current();
    let mut g = rt.op_point(rt.lock(), me);
    let li = loc_index(&mut g, gid, init);
    let mut woken = 0;
    for t in g.threads.iter_mut() {
        if woken == n {
            break;
        }
        if t.state == TState::Blocked(BlockReason::Futex(li)) {
            t.state = TState::Ready;
            woken += 1;
        }
    }
    woken
}

// ---------------------------------------------------------------------------
// Threads.
// ---------------------------------------------------------------------------

pub(crate) fn yield_now() {
    let (rt, me) = current();
    let g = rt.lock();
    let _g = rt.yield_point(g, me);
}

/// Register a child thread and return `(tid, runtime)` for `run_thread`.
pub(crate) fn register_spawn() -> (usize, Arc<Rt>) {
    let (rt, _) = current();
    (register_thread(), rt)
}

/// Register a child thread (happens-before edge: child clock starts at the
/// parent's clock) and hand back its tid; the caller then creates the OS
/// thread with `run_thread`. Also a schedule point.
fn register_thread() -> usize {
    let (rt, me) = current();
    let mut g = rt.op_point(rt.lock(), me);
    if g.threads.len() >= MAX_THREADS {
        g.fail(format!("model spawned more than {MAX_THREADS} threads"));
        rt.notify();
        drop(g);
        panic::panic_any(Abort);
    }
    g.threads[me].vc.0[me] += 1;
    let vc = g.threads[me].vc;
    let tid = g.threads.len();
    g.threads.push(fresh_thread(vc));
    tid
}

/// Body wrapper for every model OS thread (including the main model
/// thread). Waits for first activation, runs `f` under `catch_unwind`,
/// records user panics as execution failures, then passes the baton.
pub(crate) fn run_thread<F: FnOnce() + Send + 'static>(rt: Arc<Rt>, tid: usize, f: F) {
    let rt2 = Arc::clone(&rt);
    let h = std::thread::spawn(move || {
        set_current(Arc::clone(&rt2), tid);
        {
            let g = rt2.lock();
            let g = rt2.wait_active(g, tid);
            drop(g);
        }
        let res = panic::catch_unwind(AssertUnwindSafe(f));
        let mut g = rt2.lock();
        if let Err(payload) = res {
            if payload.downcast_ref::<Abort>().is_none() {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "model thread panicked".to_string());
                g.fail(format!("thread {tid} panicked: {msg}"));
                rt2.notify();
            }
        }
        rt2.finish_point(g, tid);
        clear_current();
    });
    rt.os_handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(h);
}

/// Block until `tid` finishes, then apply the join happens-before edge.
pub(crate) fn join_thread(tid: usize) {
    let (rt, me) = current();
    let mut g = rt.op_point(rt.lock(), me);
    if g.threads[tid].state != TState::Finished {
        g.threads[me].state = TState::Blocked(BlockReason::Join(tid));
        g = rt.block_point(g, me, "thread join");
    }
    let final_vc = g.threads[tid].vc;
    g.threads[me].vc.join(&final_vc);
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

/// Run `f` under every schedule and read-from combination the bounded
/// exploration generates. Panics with the failure message of the first
/// failing execution.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_bounded(DEFAULT_PREEMPTION_BOUND, f)
}

/// [`model`] with an explicit preemption bound. Larger bounds explore more
/// interleavings at (steeply) higher cost; 2 catches most protocol bugs.
pub fn model_bounded<F>(bound: u32, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut trace: Vec<Choice> = Vec::new();
    let mut execs: u64 = 0;
    loop {
        execs += 1;
        if execs > MAX_EXECUTIONS {
            panic!("ffq-loom: exceeded {MAX_EXECUTIONS} executions; state space too large");
        }
        let rt = Arc::new(Rt::new(bound, std::mem::take(&mut trace)));
        let fc = Arc::clone(&f);
        run_thread(Arc::clone(&rt), 0, move || fc());
        // The main model thread (tid 0) already holds the baton
        // (ExecState::active starts at 0); wake it.
        rt.notify();
        {
            let mut g = rt.lock();
            while !g.done && !g.abort {
                g = rt.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }
        // Join every OS thread spawned during the execution. New threads
        // cannot appear once done/abort is set (spawning threads unwind at
        // their next schedule point before reaching std::thread::spawn).
        loop {
            let h = rt
                .os_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop();
            match h {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        let mut g = rt.lock();
        if let Some(msg) = g.failure.take() {
            drop(g);
            panic!("ffq-loom: model failed after {execs} execution(s): {msg}");
        }
        trace = std::mem::take(&mut g.trace);
        drop(g);
        // Depth-first advance: bump the last choice that still has room,
        // discard the suffix; done when no choice can advance.
        let advanced = loop {
            match trace.last_mut() {
                Some(last) => {
                    if last.chosen + 1 < last.n {
                        last.chosen += 1;
                        break true;
                    }
                    trace.pop();
                }
                None => break false,
            }
        };
        if !advanced {
            break;
        }
    }
}
