//! Model `sync` namespace: atomics, fence, and `Arc`.
//!
//! The atomic types are `const`-constructible (unlike real loom's): each
//! instance carries its initial value plus a lazily assigned global id, and
//! the per-execution store history is seeded from the initial value the
//! first time the location is touched. This lets `cfg(loom)` builds keep
//! the exact `const fn new` constructors of the production types. The
//! trade-off is that `static` model atomics carry state *reset* (not
//! carried over) between executions — model closures should create their
//! atomics fresh per execution, which all the FFQ models do.

use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

use crate::rt;

/// `Arc` needs no modeling (its refcounts only control deallocation);
/// re-export std's.
pub use std::sync::Arc;

pub mod atomic {
    //! Model atomic integers with the `core::sync::atomic` API subset the
    //! FFQ crates use. `Ordering` is re-exported from core so call sites
    //! keep their `use core::sync::atomic::Ordering` imports.

    use super::*;

    pub use std::sync::atomic::Ordering;

    static NEXT_GID: StdAtomicUsize = StdAtomicUsize::new(1);

    fn assign_gid(id: &StdAtomicUsize) -> usize {
        let cur = id.load(StdOrdering::Relaxed);
        if cur != 0 {
            return cur;
        }
        let fresh = NEXT_GID.fetch_add(1, StdOrdering::Relaxed);
        match id.compare_exchange(0, fresh, StdOrdering::Relaxed, StdOrdering::Relaxed) {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }

    macro_rules! model_atomic_int {
        ($name:ident, $t:ty) => {
            /// Model atomic integer; see module docs.
            pub struct $name {
                init: $t,
                id: StdAtomicUsize,
            }

            impl $name {
                /// Create a new model atomic (const, like core's).
                pub const fn new(v: $t) -> Self {
                    Self {
                        init: v,
                        id: StdAtomicUsize::new(0),
                    }
                }

                pub(crate) fn key(&self) -> (usize, u128) {
                    (assign_gid(&self.id), self.init as u128)
                }

                /// Model load.
                pub fn load(&self, ord: Ordering) -> $t {
                    let (gid, init) = self.key();
                    rt::atomic_load(gid, init, ord) as $t
                }

                /// Model store.
                pub fn store(&self, v: $t, ord: Ordering) {
                    let (gid, init) = self.key();
                    rt::atomic_store(gid, init, v as u128, ord)
                }

                /// Model swap.
                pub fn swap(&self, v: $t, ord: Ordering) -> $t {
                    let (gid, init) = self.key();
                    rt::atomic_rmw(gid, init, ord, |_| v as u128) as $t
                }

                /// Model fetch_add (wrapping).
                pub fn fetch_add(&self, v: $t, ord: Ordering) -> $t {
                    let (gid, init) = self.key();
                    rt::atomic_rmw(gid, init, ord, |old| (old as $t).wrapping_add(v) as u128) as $t
                }

                /// Model fetch_sub (wrapping).
                pub fn fetch_sub(&self, v: $t, ord: Ordering) -> $t {
                    let (gid, init) = self.key();
                    rt::atomic_rmw(gid, init, ord, |old| (old as $t).wrapping_sub(v) as u128) as $t
                }

                /// Model fetch_or.
                pub fn fetch_or(&self, v: $t, ord: Ordering) -> $t {
                    let (gid, init) = self.key();
                    rt::atomic_rmw(gid, init, ord, |old| ((old as $t) | v) as u128) as $t
                }

                /// Model fetch_and.
                pub fn fetch_and(&self, v: $t, ord: Ordering) -> $t {
                    let (gid, init) = self.key();
                    rt::atomic_rmw(gid, init, ord, |old| ((old as $t) & v) as u128) as $t
                }

                /// Model compare_exchange. Failures read the newest store
                /// (no stale-read failures; callers retry regardless).
                pub fn compare_exchange(
                    &self,
                    current: $t,
                    new: $t,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$t, $t> {
                    let (gid, init) = self.key();
                    rt::atomic_cas(gid, init, current as u128, new as u128, success, failure)
                        .map(|v| v as $t)
                        .map_err(|v| v as $t)
                }

                /// Model compare_exchange_weak — no spurious failures are
                /// generated (they only add retry iterations, which the
                /// calling loops already exercise).
                pub fn compare_exchange_weak(
                    &self,
                    current: $t,
                    new: $t,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$t, $t> {
                    self.compare_exchange(current, new, success, failure)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(0 as $t)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_struct(stringify!($name)).finish_non_exhaustive()
                }
            }
        };
    }

    model_atomic_int!(AtomicU32, u32);
    model_atomic_int!(AtomicU64, u64);
    model_atomic_int!(AtomicUsize, usize);
    model_atomic_int!(AtomicI64, i64);
    model_atomic_int!(AtomicI32, i32);
    model_atomic_int!(AtomicU8, u8);

    /// Model atomic bool.
    pub struct AtomicBool {
        init: bool,
        id: StdAtomicUsize,
    }

    impl AtomicBool {
        /// Create a new model atomic bool (const).
        pub const fn new(v: bool) -> Self {
            Self {
                init: v,
                id: StdAtomicUsize::new(0),
            }
        }

        pub(crate) fn key(&self) -> (usize, u128) {
            (assign_gid(&self.id), self.init as u128)
        }

        /// Model load.
        pub fn load(&self, ord: Ordering) -> bool {
            let (gid, init) = self.key();
            rt::atomic_load(gid, init, ord) != 0
        }

        /// Model store.
        pub fn store(&self, v: bool, ord: Ordering) {
            let (gid, init) = self.key();
            rt::atomic_store(gid, init, v as u128, ord)
        }

        /// Model swap.
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            let (gid, init) = self.key();
            rt::atomic_rmw(gid, init, ord, |_| v as u128) != 0
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    /// Model 128-bit atomic used by the `cfg(loom)` `DoubleWord`: the
    /// `(rank, gap)` pair is one model location, so pair-CAS atomicity and
    /// per-half coherence both fall out of the single store history.
    pub struct AtomicU128 {
        init: u128,
        id: StdAtomicUsize,
    }

    impl AtomicU128 {
        /// Create a new model 128-bit atomic (const).
        pub const fn new(v: u128) -> Self {
            Self {
                init: v,
                id: StdAtomicUsize::new(0),
            }
        }

        pub(crate) fn key(&self) -> (usize, u128) {
            (assign_gid(&self.id), self.init)
        }

        /// Model load.
        pub fn load(&self, ord: Ordering) -> u128 {
            let (gid, init) = self.key();
            rt::atomic_load(gid, init, ord)
        }

        /// Model store.
        pub fn store(&self, v: u128, ord: Ordering) {
            let (gid, init) = self.key();
            rt::atomic_store(gid, init, v, ord)
        }

        /// Model compare_exchange.
        pub fn compare_exchange(
            &self,
            current: u128,
            new: u128,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u128, u128> {
            let (gid, init) = self.key();
            rt::atomic_cas(gid, init, current, new, success, failure)
        }

        /// Atomic read-modify-write with an arbitrary pure update — used to
        /// model single-half stores of the pair without touching the other
        /// half. Returns the previous value.
        pub fn rmw_update(&self, ord: Ordering, f: impl FnOnce(u128) -> u128) -> u128 {
            let (gid, init) = self.key();
            rt::atomic_rmw(gid, init, ord, f)
        }
    }

    /// Model atomic pointer: an integer location holding the address.
    ///
    /// Good enough for the FFQ models because every pointer that crosses
    /// threads in the modeled code targets a heap allocation kept alive by
    /// the model closure (segments are only freed after the epoch check
    /// the model itself exercises), so round-tripping the address through
    /// the store history loses nothing the model checks.
    pub struct AtomicPtr<T> {
        init: *mut T,
        id: StdAtomicUsize,
    }

    // SAFETY: like `core::sync::atomic::AtomicPtr`, all access to the
    // pointer value goes through the (model-)atomic operations; the type
    // never dereferences it.
    unsafe impl<T> Send for AtomicPtr<T> {}
    unsafe impl<T> Sync for AtomicPtr<T> {}

    impl<T> AtomicPtr<T> {
        /// Create a new model atomic pointer (const, like core's).
        pub const fn new(v: *mut T) -> Self {
            Self {
                init: v,
                id: StdAtomicUsize::new(0),
            }
        }

        fn key(&self) -> (usize, u128) {
            (assign_gid(&self.id), self.init as usize as u128)
        }

        /// Model load.
        pub fn load(&self, ord: Ordering) -> *mut T {
            let (gid, init) = self.key();
            rt::atomic_load(gid, init, ord) as usize as *mut T
        }

        /// Model store.
        pub fn store(&self, v: *mut T, ord: Ordering) {
            let (gid, init) = self.key();
            rt::atomic_store(gid, init, v as usize as u128, ord)
        }

        /// Model swap.
        pub fn swap(&self, v: *mut T, ord: Ordering) -> *mut T {
            let (gid, init) = self.key();
            rt::atomic_rmw(gid, init, ord, |_| v as usize as u128) as usize as *mut T
        }

        /// Model compare_exchange.
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            let (gid, init) = self.key();
            rt::atomic_cas(
                gid,
                init,
                current as usize as u128,
                new as usize as u128,
                success,
                failure,
            )
            .map(|v| v as usize as *mut T)
            .map_err(|v| v as usize as *mut T)
        }

        /// Model compare_exchange_weak (no spurious failures; see the
        /// integer models).
        pub fn compare_exchange_weak(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            self.compare_exchange(current, new, success, failure)
        }
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(core::ptr::null_mut())
        }
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("AtomicPtr").finish_non_exhaustive()
        }
    }

    /// Model memory fence.
    pub fn fence(ord: Ordering) {
        rt::fence(ord)
    }
}
