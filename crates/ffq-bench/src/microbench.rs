//! The paper's SPMC microbenchmark (§V-A).
//!
//! "The benchmark spawns a predefined number of producer and consumer
//! threads. The consumers are statically assigned to producers ... Producer
//! threads have a state that consists of a SPMC submission queue and an
//! array with SPSC response queues for each of the consumers assigned to the
//! producer. Producer threads insert a number of 64-bit integers into the
//! submission queue and loop through the response queues for dequeuing
//! values. Consumers repeatedly retrieve a value from the submission queue
//! and enqueue a 64-bit integer into the associated response queue."
//!
//! One *operation* here is a full round trip (submission + response), the
//! unit Figures 2/3/6 count. Flow control mirrors the paper's application:
//! each producer keeps a bounded number of requests outstanding, so the
//! queues can never fill up (§I, observation 2).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ffq::cell::CellSlot;
use ffq::layout::IndexMap;
use ffq_affinity::{pin_to_cpu, Placement, Topology};

use crate::measure::Measurement;

/// Producer/consumer topology of one run.
#[derive(Debug, Clone, Copy)]
pub struct Topo {
    /// Independent producers, each with its own queues.
    pub producers: usize,
    /// Consumers statically assigned to each producer.
    pub consumers_per: usize,
    /// Capacity of every queue (power of two).
    pub queue_size: usize,
}

impl Topo {
    fn inflight_budget(&self) -> usize {
        // Enough to keep all consumers busy, far from the queue bound.
        (self.consumers_per * 4).min(self.queue_size / 2).max(1)
    }
}

/// Runs the microbenchmark with the **MPMC** variant of FFQ for all queues
/// (the Figure 2 configuration: "All experiments were conducted with the
/// MPMC variant of FFQ"), monomorphized over cell layout and index mapping.
pub fn mpmc_roundtrips<C, M>(topo: Topo, duration: Duration, label: &str) -> Measurement
where
    C: CellSlot<u64> + 'static,
    M: IndexMap,
{
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();

    for p in 0..topo.producers {
        let (sub_tx, sub_rx) = ffq::mpmc::channel_with::<u64, C, M>(topo.queue_size);
        let mut resp_consumers = Vec::new();
        for c in 0..topo.consumers_per {
            let (resp_tx, resp_rx) = ffq::mpmc::channel_with::<u64, C, M>(topo.queue_size);
            resp_consumers.push(resp_rx);
            let mut sub_rx = sub_rx.clone();
            let stop = Arc::clone(&stop);
            let mut resp_tx = resp_tx;
            threads.push(std::thread::spawn(move || {
                let _ = (p, c);
                let mut backoff = ffq_sync::Backoff::new();
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(v) = sub_rx.try_dequeue() {
                        resp_tx.enqueue(v.wrapping_add(1));
                        backoff.reset();
                    } else {
                        // Spin first, yield once spinning stops paying off —
                        // essential on oversubscribed hosts where the
                        // producer needs our timeslice to make work.
                        backoff.wait();
                    }
                }
            }));
        }
        drop(sub_rx);

        let stop = Arc::clone(&stop);
        let completed = Arc::clone(&completed);
        let budget = topo.inflight_budget();
        let mut sub_tx = sub_tx;
        threads.push(std::thread::spawn(move || {
            let mut outstanding = 0usize;
            let mut seq = 0u64;
            let mut done = 0u64;
            let mut backoff = ffq_sync::Backoff::new();
            while !stop.load(Ordering::Relaxed) {
                while outstanding < budget {
                    sub_tx.enqueue(seq);
                    seq += 1;
                    outstanding += 1;
                }
                let before = done;
                for rx in resp_consumers.iter_mut() {
                    while let Ok(_v) = rx.try_dequeue() {
                        outstanding -= 1;
                        done += 1;
                    }
                }
                if done == before {
                    backoff.wait();
                } else {
                    backoff.reset();
                }
            }
            completed.fetch_add(done, Ordering::Relaxed);
        }));
    }

    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed();
    for t in threads {
        t.join().unwrap();
    }
    Measurement::new(label, completed.load(Ordering::Relaxed), elapsed)
}

/// Runs the microbenchmark in the paper's native shape — **SPMC** submission
/// queue + **SPSC** response queues — optionally pinning each pair per a
/// placement policy (the Figure 6 configuration).
pub fn spmc_roundtrips(
    topo: Topo,
    duration: Duration,
    placement: Option<(Placement, &Topology)>,
    label: &str,
) -> Measurement {
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();

    for p in 0..topo.producers {
        let assignment = placement.and_then(|(pol, topo_ref)| pol.assign(topo_ref, p));
        let (sub_tx, sub_rx) = ffq::spmc::channel::<u64>(topo.queue_size);
        let mut resp_consumers = Vec::new();
        for _c in 0..topo.consumers_per {
            let (resp_tx, resp_rx) = ffq::spsc::channel::<u64>(topo.queue_size);
            resp_consumers.push(resp_rx);
            let mut sub_rx = sub_rx.clone();
            let stop = Arc::clone(&stop);
            let mut resp_tx = resp_tx;
            let consumer_cpu = assignment.map(|a| a.consumer_cpu);
            threads.push(std::thread::spawn(move || {
                if let Some(cpu) = consumer_cpu {
                    let _ = pin_to_cpu(cpu);
                }
                let mut backoff = ffq_sync::Backoff::new();
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(v) = sub_rx.try_dequeue() {
                        resp_tx.enqueue(v.wrapping_add(1));
                        backoff.reset();
                    } else {
                        backoff.wait();
                    }
                }
            }));
        }
        drop(sub_rx);

        let stop = Arc::clone(&stop);
        let completed = Arc::clone(&completed);
        let budget = topo.inflight_budget();
        let producer_cpu = assignment.map(|a| a.producer_cpu);
        let mut sub_tx = sub_tx;
        threads.push(std::thread::spawn(move || {
            if let Some(cpu) = producer_cpu {
                let _ = pin_to_cpu(cpu);
            }
            let mut outstanding = 0usize;
            let mut seq = 0u64;
            let mut done = 0u64;
            let mut backoff = ffq_sync::Backoff::new();
            while !stop.load(Ordering::Relaxed) {
                while outstanding < budget {
                    sub_tx.enqueue(seq);
                    seq += 1;
                    outstanding += 1;
                }
                let before = done;
                for rx in resp_consumers.iter_mut() {
                    while let Ok(_v) = rx.try_dequeue() {
                        outstanding -= 1;
                        done += 1;
                    }
                }
                if done == before {
                    backoff.wait();
                } else {
                    backoff.reset();
                }
            }
            completed.fetch_add(done, Ordering::Relaxed);
        }));
    }

    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed();
    for t in threads {
        t.join().unwrap();
    }
    Measurement::new(label, completed.load(Ordering::Relaxed), elapsed)
}

/// Single-producer/single-consumer streaming (the Figure 3 configuration):
/// SPSC submission + SPSC response, one round trip per operation.
pub fn spsc_roundtrips(queue_size: usize, duration: Duration, label: &str) -> Measurement {
    let topo = Topo {
        producers: 1,
        consumers_per: 1,
        queue_size,
    };
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));

    let (mut sub_tx, mut sub_rx) = ffq::spsc::channel::<u64>(queue_size);
    let (mut resp_tx, mut resp_rx) = ffq::spsc::channel::<u64>(queue_size);

    let consumer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut backoff = ffq_sync::Backoff::new();
            while !stop.load(Ordering::Relaxed) {
                if let Ok(v) = sub_rx.try_dequeue() {
                    resp_tx.enqueue(v.wrapping_add(1));
                    backoff.reset();
                } else {
                    backoff.wait();
                }
            }
        })
    };

    let producer = {
        let stop = Arc::clone(&stop);
        let completed = Arc::clone(&completed);
        let budget = topo.inflight_budget().max(16).min(queue_size / 2).max(1);
        std::thread::spawn(move || {
            let mut outstanding = 0usize;
            let mut seq = 0u64;
            let mut done = 0u64;
            let mut backoff = ffq_sync::Backoff::new();
            while !stop.load(Ordering::Relaxed) {
                while outstanding < budget {
                    sub_tx.enqueue(seq);
                    seq += 1;
                    outstanding += 1;
                }
                let before = done;
                while let Ok(_v) = resp_rx.try_dequeue() {
                    outstanding -= 1;
                    done += 1;
                }
                if done == before {
                    backoff.wait();
                } else {
                    backoff.reset();
                }
            }
            completed.fetch_add(done, Ordering::Relaxed);
        })
    };

    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed();
    producer.join().unwrap();
    consumer.join().unwrap();
    Measurement::new(label, completed.load(Ordering::Relaxed), elapsed)
}

/// How the consumers of [`spmc_batch_drain`] harvest the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainMode {
    /// The per-item path: `drain_into` with a large cap, which claims one
    /// head rank per item — the baseline the batch API amortizes against.
    PerItem,
    /// `dequeue_batch` with this harvest bound: one head fetch-and-add
    /// claims a whole run of ranks.
    Batch(usize),
}

impl DrainMode {
    /// Short label fragment ("per-item" or "batch=N").
    pub fn label(&self) -> String {
        match self {
            DrainMode::PerItem => "per-item".into(),
            DrainMode::Batch(k) => format!("batch={k}"),
        }
    }
}

/// Aggregated consumer-side cost counters of one [`spmc_batch_drain`] run,
/// the quantities the batch API is meant to shrink.
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct DrainCost {
    /// Items dequeued across all consumers.
    pub items: u64,
    /// Head fetch-and-adds issued across all consumers.
    pub head_rmws: u64,
    /// Head ranks claimed across all consumers.
    pub ranks_claimed: u64,
}

impl DrainCost {
    /// Average ranks claimed per head RMW (`None` before any RMW).
    pub fn ranks_per_rmw(&self) -> Option<f64> {
        (self.head_rmws > 0).then(|| self.ranks_claimed as f64 / self.head_rmws as f64)
    }
}

/// One-way SPMC drain throughput: a single producer bulk-publishes runs
/// with `enqueue_many` while `consumers` threads race to drain, each in the
/// given [`DrainMode`]. Unlike the round-trip benchmarks above there are no
/// response queues — this isolates the consumer-side claim cost that
/// batching amortizes (one `fetch_add` per run instead of per item).
pub fn spmc_batch_drain(
    queue_size: usize,
    consumers: usize,
    mode: DrainMode,
    duration: Duration,
    label: &str,
) -> (Measurement, DrainCost) {
    let stop = Arc::new(AtomicBool::new(false));
    let (mut sub_tx, sub_rx) = ffq::spmc::channel::<u64>(queue_size);

    let workers: Vec<_> = (0..consumers)
        .map(|_| {
            let mut rx = sub_rx.clone();
            std::thread::spawn(move || {
                let mut buf = Vec::with_capacity(queue_size);
                let mut items = 0u64;
                let mut backoff = ffq_sync::Backoff::new();
                // Runs until the producer disconnects (not on the stop flag):
                // the producer may block in `enqueue_many` on a full queue, so
                // someone must keep draining until it has exited.
                loop {
                    buf.clear();
                    let n = match mode {
                        DrainMode::PerItem => rx.drain_into(&mut buf, queue_size),
                        DrainMode::Batch(k) => rx.dequeue_batch(&mut buf, k),
                    };
                    if n > 0 {
                        items += n as u64;
                        backoff.reset();
                        continue;
                    }
                    match rx.try_dequeue() {
                        Ok(_) => {
                            items += 1;
                            backoff.reset();
                        }
                        Err(ffq::TryDequeueError::Disconnected) => break,
                        Err(ffq::TryDequeueError::Empty) => backoff.wait(),
                    }
                }
                let stats = rx.stats();
                DrainCost {
                    items,
                    head_rmws: stats.head_rmws,
                    ranks_claimed: stats.ranks_claimed,
                }
            })
        })
        .collect();
    drop(sub_rx);

    let producer = {
        let stop = Arc::clone(&stop);
        let chunk = (queue_size / 2).max(1) as u64;
        std::thread::spawn(move || {
            let mut seq = 0u64;
            while !stop.load(Ordering::Relaxed) {
                sub_tx.enqueue_many(seq..seq + chunk);
                seq += chunk;
            }
        })
    };

    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed();
    producer.join().unwrap();
    let mut cost = DrainCost::default();
    for w in workers {
        let c = w.join().unwrap();
        cost.items += c.items;
        cost.head_rmws += c.head_rmws;
        cost.ranks_claimed += c.ranks_claimed;
    }
    (Measurement::new(label, cost.items, elapsed), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffq::cell::PaddedCell;
    use ffq::layout::LinearMap;

    const DUR: Duration = Duration::from_millis(80);

    #[test]
    fn mpmc_microbench_completes_roundtrips() {
        let m = mpmc_roundtrips::<PaddedCell<u64>, LinearMap>(
            Topo {
                producers: 1,
                consumers_per: 2,
                queue_size: 256,
            },
            DUR,
            "test",
        );
        assert!(m.ops > 100, "ops {}", m.ops);
    }

    #[test]
    fn spmc_microbench_completes_roundtrips() {
        let m = spmc_roundtrips(
            Topo {
                producers: 2,
                consumers_per: 2,
                queue_size: 256,
            },
            DUR,
            None,
            "test",
        );
        assert!(m.ops > 100, "ops {}", m.ops);
    }

    #[test]
    fn spsc_microbench_completes_roundtrips() {
        let m = spsc_roundtrips(256, DUR, "test");
        assert!(m.ops > 100, "ops {}", m.ops);
    }

    #[test]
    fn batch_drain_modes_complete_and_amortize() {
        let (m, cost) = spmc_batch_drain(256, 2, DrainMode::Batch(32), DUR, "batch");
        assert!(m.ops > 100, "ops {}", m.ops);
        assert_eq!(m.ops, cost.items);
        // A batched harvest must claim several ranks per fetch_add.
        let r = cost.ranks_per_rmw().unwrap_or(0.0);
        assert!(r > 1.5, "ranks/rmw {r}");
        let (m, cost) = spmc_batch_drain(256, 2, DrainMode::PerItem, DUR, "per-item");
        assert!(m.ops > 100, "ops {}", m.ops);
        // The per-item path pays one RMW per claimed rank.
        let r = cost.ranks_per_rmw().unwrap_or(0.0);
        assert!(r <= 1.0 + 1e-9, "ranks/rmw {r}");
    }

    #[test]
    fn pinned_run_still_completes() {
        let topo_hw = Topology::detect().unwrap();
        let m = spmc_roundtrips(
            Topo {
                producers: 1,
                consumers_per: 1,
                queue_size: 128,
            },
            DUR,
            Some((Placement::SameHt, &topo_hw)),
            "pinned",
        );
        assert!(m.ops > 50, "ops {}", m.ops);
    }
}
