//! Shared harness code for the figure regenerators.
//!
//! One binary per figure lives in `src/bin/`:
//!
//! | Binary | Paper figure | What it sweeps |
//! |--------|--------------|----------------|
//! | `fig2_false_sharing` | Fig. 2 | cell alignment × index randomization, {1p/1c, 1p/8c, 8p/8×8c} |
//! | `fig3_queue_size` | Fig. 3 | SPSC throughput vs. queue size |
//! | `fig4_cache_l2` | Fig. 4 | simulated L2 hit ratio + IPC vs. queue size × affinity |
//! | `fig5_cache_l3` | Fig. 5 | simulated L3 hit ratio, misses, DRAM bandwidth |
//! | `fig6_affinity_throughput` | Fig. 6 | throughput vs. queue size × affinity (real + simulated) |
//! | `fig7_enclave` | Fig. 7 | syscall throughput vs. cores; end-to-end latency |
//! | `fig8_comparative` | Fig. 8 | all queues × thread counts, enqueue/dequeue pairs |
//! | `fig_batch_amortization` | — (batch API) | batched vs per-item SPMC drain, batch 1–256 |
//! | `fig_ipc` | — (ffq-shm) | in-process (threads) vs cross-process (fork + shared memory) |
//! | `fig_wait` | — (adaptive waiting) | spin-only vs spin-then-park: idle CPU burn, oversubscribed drain, hot-path overhead |
//! | `fig_scale` | — (bytes lane) | zero-copy vs copy-through payload lanes over sharded MPMC fan-in: p50/p99/p999 latency, burst/drain + slow-consumer |
//!
//! Every binary accepts `--quick` (shorter runs for smoke-testing) and
//! writes machine-readable JSON next to its human-readable table under
//! `target/bench-results/`.

#![warn(missing_docs)]

pub mod delay;
pub mod hist;
pub mod ipc;
pub mod measure;
pub mod microbench;
pub mod output;
pub mod wait;

pub use measure::Measurement;
