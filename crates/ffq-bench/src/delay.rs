//! The comparative benchmark's inter-operation think time.
//!
//! §V-G: "Between two operations, the benchmark adds an arbitrary delay
//! (between 50 and 150 ns) to avoid scenarios where a cache line is held by
//! one thread for a long time."

use std::time::Instant;

/// A tiny xorshift PRNG — per-thread, allocation-free, deterministic per
/// seed (we avoid `rand::thread_rng` in the hot loop).
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seeds the generator; zero is mapped to a fixed odd constant.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next pseudo-random 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform value in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

/// Calibrated spin delay: busy-iterations per nanosecond.
#[derive(Debug, Clone, Copy)]
pub struct SpinDelay {
    iters_per_ns: f64,
}

impl SpinDelay {
    /// Calibrates the spin loop against the monotonic clock.
    pub fn calibrate() -> Self {
        let iters = 2_000_000u64;
        let start = Instant::now();
        for _ in 0..iters {
            core::hint::spin_loop();
        }
        let nanos = start.elapsed().as_nanos().max(1) as f64;
        Self {
            iters_per_ns: iters as f64 / nanos,
        }
    }

    /// Busy-waits roughly `ns` nanoseconds.
    #[inline]
    pub fn wait_ns(&self, ns: u64) {
        let iters = (ns as f64 * self.iters_per_ns) as u64;
        for _ in 0..iters {
            core::hint::spin_loop();
        }
    }

    /// The paper's 50–150 ns arbitrary think time.
    #[inline]
    pub fn think(&self, rng: &mut XorShift) {
        self.wait_ns(rng.range(50, 150));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, 0);
        }
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = XorShift::new(7);
        for _ in 0..10_000 {
            let v = r.range(50, 150);
            assert!((50..150).contains(&v));
        }
    }

    #[test]
    fn calibration_produces_sane_rate() {
        let d = SpinDelay::calibrate();
        assert!(d.iters_per_ns > 0.0);
        // A 100ns wait must not take milliseconds.
        let start = Instant::now();
        for _ in 0..1000 {
            d.wait_ns(100);
        }
        assert!(start.elapsed().as_millis() < 100);
    }
}
