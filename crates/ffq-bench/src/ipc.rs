//! In-process vs cross-process (shared-memory) FFQ comparison.
//!
//! Same protocol, two deployments: the heap-backed `ffq` channels with
//! consumer *threads*, against `ffq-shm` queues in a `memfd` region with
//! forked consumer *processes* on their own mappings. The paper's queues
//! carry only queue-relative ranks, so crossing an address-space boundary
//! changes none of the algorithm — any difference measured here is the
//! cost of the shared-memory deployment itself (page sharing, TLB
//! behaviour, the header's liveness machinery), not of FFQ.
//!
//! Two shapes, mirroring the `fig_ipc` binary's panels:
//!
//! * **SPMC drain throughput** — one producer publishing a fixed item
//!   count to N consumers (threads vs forked processes).
//! * **SPSC round-trip latency** — a request and a response queue between
//!   two parties (thread vs forked process), one message in flight.

use std::time::Instant;

use crate::measure::Measurement;
use ffq_shm::{spmc, spsc, ShmDequeueError, ShmRegion};

/// Forks; runs `f` in the child and `_exit`s with its return value.
/// Callers must reap the pid. The caller must be effectively
/// single-threaded at the moment of the fork (the bench binaries are).
fn fork_child(f: impl FnOnce() -> i32) -> libc::pid_t {
    // SAFETY: the child runs `f` and `_exit`s without unwinding into
    // parent-owned state.
    match unsafe { libc::fork() } {
        -1 => panic!("fork failed: {}", std::io::Error::last_os_error()),
        0 => {
            let code = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or(101);
            // SAFETY: child exit without destructors, by design.
            unsafe { libc::_exit(code) }
        }
        pid => pid,
    }
}

/// Reaps `pid`, asserting a clean exit.
fn reap(pid: libc::pid_t) {
    let mut status = 0;
    // SAFETY: pid is our direct child.
    let r = unsafe { libc::waitpid(pid, &mut status, 0) };
    assert_eq!(r, pid, "waitpid failed");
    assert!(
        libc::WIFEXITED(status) && libc::WEXITSTATUS(status) == 0,
        "bench child failed (status {status:#x})"
    );
}

/// SPMC drain: one producer pushes `items` words to `consumers` heap-queue
/// consumer threads. Wall clock covers first enqueue to last consumer done.
pub fn spmc_drain_in_process(queue_size: usize, consumers: usize, items: u64) -> Measurement {
    let (mut tx, rx) = ffq::spmc::channel::<u64>(queue_size);
    let start = Instant::now();
    let workers: Vec<_> = (0..consumers)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                while rx.dequeue().is_ok() {
                    n += 1;
                }
                n
            })
        })
        .collect();
    drop(rx);
    assert_eq!(tx.enqueue_many(0..items), items as usize);
    drop(tx);
    let mut drained = 0u64;
    for w in workers {
        drained += w.join().expect("consumer panicked");
    }
    let elapsed = start.elapsed();
    assert_eq!(drained, items, "every item drained exactly once");
    Measurement::new(format!("spmc in-process {consumers}c"), items, elapsed)
}

/// SPMC drain through shared memory: same shape, but each consumer is a
/// forked process with its own mapping of a `memfd` region.
pub fn spmc_drain_cross_process(queue_size: usize, consumers: usize, items: u64) -> Measurement {
    let region = ShmRegion::create_memfd(spmc::required_size::<u64>(queue_size).unwrap()).unwrap();
    let start = Instant::now();
    let pids: Vec<_> = (0..consumers)
        .map(|_| {
            let region = region.clone();
            fork_child(move || {
                let mut rx = match spmc::attach_consumer::<u64>(region.remap().unwrap()) {
                    Ok(rx) => rx,
                    Err(_) => return 10,
                };
                loop {
                    match rx.dequeue() {
                        Ok(_) => {}
                        Err(ShmDequeueError::Disconnected) => return 0,
                        Err(ShmDequeueError::Poisoned) => return 11,
                    }
                }
            })
        })
        .collect();
    let mut tx = spmc::create::<u64>(region, queue_size).unwrap();
    assert_eq!(tx.enqueue_many(0..items), items as usize);
    drop(tx);
    for pid in pids {
        reap(pid);
    }
    let elapsed = start.elapsed();
    Measurement::new(format!("spmc cross-process {consumers}c"), items, elapsed)
}

/// SPSC ping-pong round-trip latency between two threads: `iters` words
/// bounced over a request and a response heap channel, one in flight.
pub fn spsc_rtt_in_process(queue_size: usize, iters: u64) -> Measurement {
    let (mut req_tx, mut req_rx) = ffq::spsc::channel::<u64>(queue_size);
    let (mut rsp_tx, mut rsp_rx) = ffq::spsc::channel::<u64>(queue_size);
    let echo = std::thread::spawn(move || {
        while let Ok(v) = req_rx.dequeue() {
            rsp_tx.enqueue(v);
        }
    });
    let start = Instant::now();
    for i in 0..iters {
        req_tx.enqueue(i);
        assert_eq!(rsp_rx.dequeue(), Ok(i));
    }
    let elapsed = start.elapsed();
    drop(req_tx);
    echo.join().unwrap();
    Measurement::new("spsc rtt in-process", iters, elapsed)
}

/// SPSC ping-pong round-trip latency between two *processes*: the echo
/// side is a forked child on its own mappings of two `memfd` regions.
pub fn spsc_rtt_cross_process(queue_size: usize, iters: u64) -> Measurement {
    let req = ShmRegion::create_memfd(spsc::required_size::<u64>(queue_size).unwrap()).unwrap();
    let rsp = ShmRegion::create_memfd(spsc::required_size::<u64>(queue_size).unwrap()).unwrap();

    let (req_child, rsp_child) = (req.clone(), rsp.clone());
    let pid = fork_child(move || {
        let mut rx = match spsc::attach_consumer::<u64>(req_child.remap().unwrap()) {
            Ok(rx) => rx,
            Err(_) => return 10,
        };
        let mut tx = match spsc::create::<u64>(rsp_child.remap().unwrap(), queue_size) {
            Ok(tx) => tx,
            Err(_) => return 12,
        };
        loop {
            match rx.dequeue() {
                Ok(v) => {
                    if tx.enqueue(v).is_err() {
                        return 13;
                    }
                }
                Err(ShmDequeueError::Disconnected) => return 0,
                Err(_) => return 11,
            }
        }
    });

    let mut req_tx = spsc::create::<u64>(req, queue_size).unwrap();
    let mut rsp_rx = spsc::attach_consumer::<u64>(rsp).unwrap();
    let start = Instant::now();
    for i in 0..iters {
        req_tx.enqueue(i).expect("request queue poisoned");
        assert_eq!(rsp_rx.dequeue(), Ok(i));
    }
    let elapsed = start.elapsed();
    drop(req_tx);
    reap(pid);
    Measurement::new("spsc rtt cross-process", iters, elapsed)
}

/// Average nanoseconds per operation of a measurement (round trip for the
/// latency panels, item for the throughput panels).
pub fn avg_ns(m: &Measurement) -> f64 {
    m.elapsed_secs * 1e9 / (m.ops as f64).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_drain_counts_every_item() {
        let m = spmc_drain_in_process(256, 2, 10_000);
        assert_eq!(m.ops, 10_000);
        assert!(m.mops_per_sec > 0.0);
    }

    #[test]
    fn in_process_rtt_round_trips() {
        let m = spsc_rtt_in_process(64, 1_000);
        assert_eq!(m.ops, 1_000);
        assert!(avg_ns(&m) > 0.0);
    }
}
