//! Table printing and JSON result dumps.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

use crate::measure::Measurement;

/// Prints an aligned throughput table.
pub fn print_table(title: &str, rows: &[Measurement]) {
    println!("\n== {title} ==");
    println!(
        "{:<36} {:>14} {:>10} {:>12}",
        "config", "ops", "secs", "Mops/s"
    );
    for m in rows {
        println!(
            "{:<36} {:>14} {:>10.3} {:>12.3}",
            m.label, m.ops, m.elapsed_secs, m.mops_per_sec
        );
    }
}

/// Prints the same table normalized to the row whose label starts with
/// `baseline_prefix` (Figure 2 reports throughput "normalized to the
/// non-aligned variant").
pub fn print_normalized(title: &str, rows: &[Measurement], baseline_prefix: &str) {
    let base = rows
        .iter()
        .find(|m| m.label.starts_with(baseline_prefix))
        .map(|m| m.mops_per_sec)
        .unwrap_or(1.0)
        .max(1e-12);
    println!("\n== {title} (normalized to {baseline_prefix}) ==");
    println!("{:<36} {:>12} {:>10}", "config", "Mops/s", "ratio");
    for m in rows {
        println!(
            "{:<36} {:>12.3} {:>10.3}",
            m.label,
            m.mops_per_sec,
            m.mops_per_sec / base
        );
    }
}

/// Directory JSON results land in.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"))
        .join("bench-results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes `value` as pretty JSON to `target/bench-results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn normalization_baseline_found() {
        let rows = vec![
            Measurement::new("not-aligned x", 100, Duration::from_secs(1)),
            Measurement::new("aligned x", 200, Duration::from_secs(1)),
        ];
        // Smoke: printing must not panic even with tiny numbers.
        print_table("t", &rows);
        print_normalized("t", &rows, "not-aligned");
    }

    #[test]
    fn write_json_roundtrip() {
        let rows = vec![Measurement::new("a", 1, Duration::from_secs(1))];
        write_json("unit_test_output", &rows);
        let path = results_dir().join("unit_test_output.json");
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("\"label\": \"a\""));
    }
}
