//! Dependency-free HDR-style latency histogram.
//!
//! Log-linear bucketing in the spirit of HdrHistogram: values below
//! [`SUB_COUNT`] land in unit-width buckets; above that, each power-of-two
//! range is split into [`SUB_HALF`] sub-buckets, bounding the relative
//! quantization error at `1 / SUB_HALF` (< 0.8%) across the full `u64`
//! range. Recording is two shifts and an increment — cheap enough to sit
//! on the consumer hot path of a latency harness — and the whole table is
//! ~59 KiB, so per-thread histograms merged at the end stay cache-friendly
//! and contention-free.
//!
//! The harness records nanoseconds, but the histogram is unit-agnostic.

use serde::Serialize;

/// log2 of the number of unit-width buckets in the first range.
const SUB_BITS: u32 = 8;
/// Values below this are counted exactly (unit-width buckets).
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Sub-buckets per power-of-two range above [`SUB_COUNT`].
const SUB_HALF: u64 = SUB_COUNT / 2;
/// Power-of-two ranges above the unit region (`2^8 ..= 2^63`).
const RANGES: usize = 64 - SUB_BITS as usize;
/// Total bucket count.
const BUCKETS: usize = SUB_COUNT as usize + RANGES * SUB_HALF as usize;

/// A log-linear histogram of `u64` samples (typically nanoseconds).
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

/// Bucket index for a value: exact below [`SUB_COUNT`], log-linear above.
fn index_of(v: u64) -> usize {
    if v < SUB_COUNT {
        return v as usize;
    }
    // msb >= SUB_BITS here, so `range >= 1` and the shift keeps the top
    // SUB_BITS bits of v, of which the leading one is implied: the
    // in-range offset is (v >> range) - SUB_HALF in [0, SUB_HALF).
    let msb = 63 - v.leading_zeros();
    let range = (msb - SUB_BITS + 1) as u64;
    let offset = (v >> range) - SUB_HALF;
    (SUB_COUNT + (range - 1) * SUB_HALF + offset) as usize
}

/// Lowest value mapping to `idx` (inverse of [`index_of`]).
fn value_at(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_COUNT {
        return idx;
    }
    let range = (idx - SUB_COUNT) / SUB_HALF + 1;
    let offset = (idx - SUB_COUNT) % SUB_HALF;
    (SUB_HALF + offset) << range
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0u64; BUCKETS].into_boxed_slice().try_into().unwrap(),
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (exact, not bucket-quantized).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded sample (exact), or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at percentile `p` (0.0–100.0): the smallest bucket boundary
    /// such that at least `p`% of samples are at or below it. Within the
    /// bucketing error (< 0.8%) of the true order statistic.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Report the bucket's upper edge clamped to the observed
                // max, so p100 == max() and quantization never understates.
                return value_at(idx + 1).saturating_sub(1).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one (per-thread merge).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Snapshot of the headline statistics, ready for JSON serialization.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.total,
            min_ns: self.min(),
            mean_ns: self.mean(),
            p50_ns: self.percentile(50.0),
            p90_ns: self.percentile(90.0),
            p99_ns: self.percentile(99.0),
            p999_ns: self.percentile(99.9),
            max_ns: self.max,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Headline percentiles of a [`Histogram`], as serialized into the
/// benchmark JSON. Field names say `_ns` because every harness in this
/// repo records nanoseconds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Summary {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample.
    pub min_ns: u64,
    /// Exact arithmetic mean.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_value_roundtrip_is_monotone_and_contiguous() {
        // Every bucket's lower edge maps back to that bucket, and indices
        // cover the probe values monotonically.
        for idx in 0..BUCKETS - 1 {
            let v = value_at(idx);
            assert_eq!(index_of(v), idx, "lower edge of bucket {idx}");
        }
        let mut last = 0usize;
        let mut v = 0u64;
        while v < u64::MAX / 2 {
            let idx = index_of(v);
            assert!(idx >= last, "index must be monotone at {v}");
            last = idx;
            v = v.saturating_mul(2).saturating_add(1);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_COUNT {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_COUNT);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_COUNT - 1);
        // p50 of 0..=255 uniform: near 127, exact region so no bucket error.
        let p50 = h.percentile(50.0);
        assert!((126..=129).contains(&p50), "p50={p50}");
    }

    #[test]
    fn percentiles_within_bucket_error() {
        let mut h = Histogram::new();
        // Uniform 1..=1_000_000: p50 ~ 500k, p99 ~ 990k, p999 ~ 999k.
        for v in 1..=1_000_000u64 {
            h.record(v);
        }
        for (p, expect) in [(50.0, 500_000.0), (99.0, 990_000.0), (99.9, 999_000.0)] {
            let got = h.percentile(p) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.01, "p{p}: got {got}, expect {expect}, err {err}");
        }
        assert_eq!(h.percentile(100.0), 1_000_000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..10_000u64 {
            let v = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 20;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for p in [50.0, 90.0, 99.0, 99.9] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(99.9), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
