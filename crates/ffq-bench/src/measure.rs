//! Throughput measurement scaffolding.

use std::time::Duration;

use serde::Serialize;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Configuration label (e.g. "aligned 1p/8c" or "wfqueue @4").
    pub label: String,
    /// Completed operations.
    pub ops: u64,
    /// Wall-clock seconds.
    pub elapsed_secs: f64,
    /// Millions of operations per second.
    pub mops_per_sec: f64,
}

impl Measurement {
    /// Builds a measurement from raw counts.
    pub fn new(label: impl Into<String>, ops: u64, elapsed: Duration) -> Self {
        let secs = elapsed.as_secs_f64().max(1e-9);
        Self {
            label: label.into(),
            ops,
            elapsed_secs: secs,
            mops_per_sec: ops as f64 / secs / 1e6,
        }
    }
}

/// Parses the common CLI knobs shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Shorter runs for smoke tests (`--quick`).
    pub quick: bool,
    /// Measurement window per configuration.
    pub duration: Duration,
    /// Leftover positional args for figure-specific parsing.
    pub rest: Vec<String>,
}

impl CommonArgs {
    /// Parses `std::env::args()`, honouring `--quick` and
    /// `--secs <float>`.
    pub fn parse() -> Self {
        let mut quick = false;
        let mut duration = None;
        let mut rest = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--secs" => {
                    let v = args
                        .next()
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--secs needs a number");
                            std::process::exit(2);
                        });
                    duration = Some(Duration::from_secs_f64(v));
                }
                other => rest.push(other.to_string()),
            }
        }
        let duration = duration.unwrap_or(if quick {
            Duration::from_millis(150)
        } else {
            Duration::from_millis(800)
        });
        Self {
            quick,
            duration,
            rest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_computes_mops() {
        let m = Measurement::new("x", 2_000_000, Duration::from_secs(1));
        assert!((m.mops_per_sec - 2.0).abs() < 1e-9);
        assert_eq!(m.ops, 2_000_000);
    }

    #[test]
    fn zero_duration_does_not_divide_by_zero() {
        let m = Measurement::new("x", 10, Duration::from_secs(0));
        assert!(m.mops_per_sec.is_finite());
    }
}
