//! Figure 7: the secure-enclave application benchmark.
//!
//! Left panel — `getppid` throughput with a growing number of cores for the
//! three binaries (native / SGX+generic-MPMC / SGX+FFQ). Paper result: FFQ
//! reaches ~5x the MPMC variant's throughput and scales linearly with
//! cores, while the MPMC variant does not gain from added threads.
//!
//! Right panel — end-to-end syscall latency with a single application
//! thread. Paper result: native < FFQ < MPMC, with FFQ's latency almost 2x
//! lower than MPMC's.
//!
//! Usage: `fig7_enclave [--quick] [--secs <f>] [--latency]`

use std::time::Duration;

use ffq_bench::measure::CommonArgs;
use ffq_bench::output::write_json;
use ffq_enclave::{measure_latency, run_throughput, EnclaveConfig, Variant};

fn main() {
    let args = CommonArgs::parse();
    let latency_only = args.rest.iter().any(|a| a == "--latency");
    // --free zeroes the enclave cost model, isolating the queues — useful on
    // hosts where scheduling noise dwarfs the simulated transition cost.
    let config = if args.rest.iter().any(|a| a == "--free") {
        EnclaveConfig::free()
    } else {
        EnclaveConfig::default()
    };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Figure 7 reproduction: enclave syscall framework ({host_threads} host hw threads)");

    if !latency_only {
        let max_cores = if args.quick { 2 } else { 4 };
        let duration = if args.quick {
            Duration::from_millis(200)
        } else {
            args.duration
        };
        println!("\n== Fig.7 left: throughput vs cores ==");
        println!(
            "{:>8} {:>7} {:>14} {:>14} {:>12}",
            "variant", "cores", "completed", "ops/sec", "transitions"
        );
        let mut rows = Vec::new();
        for cores in 1..=max_cores {
            for variant in Variant::ALL {
                // App threads proportional to cores (paper: "the amount of
                // application threads spawned is proportional to the amount
                // of available cores").
                let apps = 4 * cores;
                let r = run_throughput(variant, cores, 1, apps, duration, config);
                println!(
                    "{:>8} {:>7} {:>14} {:>14.0} {:>12}",
                    r.variant, cores, r.completed, r.ops_per_sec, r.transitions
                );
                rows.push(r);
            }
        }
        write_json("fig7_throughput", &rows);
    }

    println!("\n== Fig.7 right: single-thread syscall latency ==");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "variant", "avg cycles", "min", "max"
    );
    let iters = if args.quick { 2_000 } else { 20_000 };
    let mut lat_rows = Vec::new();
    for variant in Variant::ALL {
        let r = measure_latency(variant, iters, config);
        println!(
            "{:>8} {:>12.0} {:>12} {:>12}",
            r.variant, r.avg_cycles, r.min_cycles, r.max_cycles
        );
        lat_rows.push(r);
    }
    write_json("fig7_latency", &lat_rows);
}
