//! Async-vs-blocking throughput (not a paper figure; the evaluation for
//! the `ffq-async` layer).
//!
//! Each panel moves the same item count through the same queue twice:
//! once with blocking sync handles on dedicated threads (adaptive
//! spin→yield→park waiting, the PR 3 default) and once with `ffq-async`
//! wrappers as tasks on the crate's mini executor. The question is what
//! the async layer costs at saturation — the waker-registry eventcount,
//! the per-poll re-checks, the task scheduling — relative to futex
//! blocking. Target: batched async within ~10% of batched blocking.
//!
//! Panels: SPSC and MPMC (1p/2c), each per-item and batched (runs of 64).
//! Batching matters more for async than for sync: every completed future
//! costs a schedule round-trip, so amortizing it over 64 items is the
//! intended operating point of the API (`enqueue_many`/`dequeue_batch`).
//!
//! Usage: `fig_async [--quick] [--items <n>]`
//!
//! Writes `BENCH_async.json` rows under `target/bench-results/`. The JSON
//! is emitted by hand (not serde) so offline stub builds still produce
//! real output.

use std::time::Instant;

use ffq_async::rt::Executor;
use ffq_bench::measure::{CommonArgs, Measurement};
use ffq_bench::output::{print_table, results_dir};

const BATCH: usize = 64;
const CAPACITY: usize = 256;

/// One panel × mode measurement, serialized into `BENCH_async.json`.
struct Row {
    m: Measurement,
    flavor: &'static str,
    mode: &'static str,
    batch: usize,
    workers: usize,
}

fn blocking_spsc(items: u64, batch: usize, label: String) -> Measurement {
    let (mut tx, mut rx) = ffq::spsc::channel::<u64>(CAPACITY);
    let start = Instant::now();
    let prod = std::thread::spawn(move || {
        if batch <= 1 {
            for i in 0..items {
                tx.enqueue(i);
            }
        } else {
            let mut i = 0;
            while i < items {
                let hi = (i + batch as u64).min(items);
                tx.enqueue_many(i..hi);
                i = hi;
            }
        }
    });
    let mut got = 0u64;
    let mut buf = Vec::with_capacity(batch);
    while let Ok(_v) = rx.dequeue() {
        got += 1;
        if batch > 1 {
            buf.clear();
            got += rx.dequeue_batch(&mut buf, batch - 1) as u64;
        }
    }
    prod.join().unwrap();
    assert_eq!(got, items);
    Measurement::new(label, items, start.elapsed())
}

fn async_spsc(items: u64, batch: usize, label: String) -> Measurement {
    let (mut tx, mut rx) = ffq_async::spsc::channel::<u64>(CAPACITY);
    let ex = Executor::new(2);
    let start = Instant::now();
    let prod = ex.spawn(async move {
        if batch <= 1 {
            for i in 0..items {
                tx.enqueue(i).await.unwrap();
            }
        } else {
            let mut i = 0;
            while i < items {
                let hi = (i + batch as u64).min(items);
                let sent = tx.enqueue_many(i..hi).await;
                assert_eq!(sent as u64, hi - i);
                i = hi;
            }
        }
    });
    let cons = ex.spawn(async move {
        let mut got = 0u64;
        if batch <= 1 {
            while rx.dequeue().await.is_ok() {
                got += 1;
            }
        } else {
            while let Ok(b) = rx.dequeue_batch(batch).await {
                got += b.len() as u64;
            }
        }
        got
    });
    prod.join();
    let got = cons.join();
    assert_eq!(got, items);
    Measurement::new(label, items, start.elapsed())
}

fn blocking_mpmc(items: u64, consumers: usize, batch: usize, label: String) -> Measurement {
    let (mut tx, rx) = ffq::mpmc::channel::<u64>(CAPACITY);
    let start = Instant::now();
    let cons: Vec<_> = (0..consumers)
        .map(|_| {
            let mut rx = rx.clone();
            std::thread::spawn(move || {
                let mut got = 0u64;
                let mut buf = Vec::with_capacity(batch);
                while let Ok(_v) = rx.dequeue() {
                    got += 1;
                    if batch > 1 {
                        buf.clear();
                        got += rx.dequeue_batch(&mut buf, batch - 1) as u64;
                    }
                }
                got
            })
        })
        .collect();
    drop(rx);
    if batch <= 1 {
        for i in 0..items {
            tx.enqueue(i);
        }
    } else {
        let mut i = 0;
        while i < items {
            let hi = (i + batch as u64).min(items);
            tx.enqueue_many(i..hi);
            i = hi;
        }
    }
    drop(tx);
    let got: u64 = cons.into_iter().map(|c| c.join().unwrap()).sum();
    assert_eq!(got, items);
    Measurement::new(label, items, start.elapsed())
}

fn async_mpmc(items: u64, consumers: usize, batch: usize, label: String) -> Measurement {
    let (mut tx, rx) = ffq_async::mpmc::channel::<u64>(CAPACITY);
    let ex = Executor::new(consumers + 1);
    let start = Instant::now();
    let cons: Vec<_> = (0..consumers)
        .map(|_| {
            let mut rx = rx.clone();
            ex.spawn(async move {
                let mut got = 0u64;
                if batch <= 1 {
                    while rx.dequeue().await.is_ok() {
                        got += 1;
                    }
                } else {
                    while let Ok(b) = rx.dequeue_batch(batch).await {
                        got += b.len() as u64;
                    }
                }
                got
            })
        })
        .collect();
    drop(rx);
    let prod = ex.spawn(async move {
        if batch <= 1 {
            for i in 0..items {
                tx.enqueue(i).await.unwrap();
            }
        } else {
            let mut i = 0;
            while i < items {
                let hi = (i + batch as u64).min(items);
                tx.enqueue_many(i..hi).await;
                i = hi;
            }
        }
    });
    prod.join();
    let got: u64 = cons.into_iter().map(|c| c.join()).sum();
    assert_eq!(got, items);
    Measurement::new(label, items, start.elapsed())
}

fn json_row(r: &Row, vs_blocking: f64) -> String {
    format!(
        "  {{\n    \"label\": \"{}\",\n    \"flavor\": \"{}\",\n    \"mode\": \"{}\",\n    \
         \"batch\": {},\n    \"workers\": {},\n    \"ops\": {},\n    \"elapsed_secs\": {},\n    \
         \"mops_per_sec\": {},\n    \"vs_blocking\": {}\n  }}",
        r.m.label,
        r.flavor,
        r.mode,
        r.batch,
        r.workers,
        r.m.ops,
        r.m.elapsed_secs,
        r.m.mops_per_sec,
        vs_blocking,
    )
}

fn main() {
    let args = CommonArgs::parse();
    let mut items: u64 = if args.quick { 200_000 } else { 1_000_000 };
    let mut it = args.rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--items" => {
                items = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("usage: fig_async [--quick] [--items <n>]");
                    std::process::exit(2);
                });
            }
            _ => {
                eprintln!("unknown argument: {a}");
                std::process::exit(2);
            }
        }
    }
    let consumers = 2usize;
    // Best-of-N: on a shared box a single drain is at the scheduler's
    // mercy, and the question is what each mode can do.
    let reps = if args.quick { 1 } else { 3 };
    let best = |f: &dyn Fn() -> Measurement| {
        (0..reps)
            .map(|_| f())
            .max_by(|a, b| a.mops_per_sec.total_cmp(&b.mops_per_sec))
            .expect("reps >= 1")
    };

    println!("Async layer evaluation: ffq-async tasks vs blocking sync threads");
    let mut rows: Vec<Row> = Vec::new();
    for batch in [1usize, BATCH] {
        let tag = if batch > 1 { "batched" } else { "per-item" };
        rows.push(Row {
            m: best(&|| blocking_spsc(items, batch, format!("spsc blocking {tag}"))),
            flavor: "spsc",
            mode: "blocking",
            batch,
            workers: 2,
        });
        rows.push(Row {
            m: best(&|| async_spsc(items, batch, format!("spsc async {tag}"))),
            flavor: "spsc",
            mode: "async",
            batch,
            workers: 2,
        });
        rows.push(Row {
            m: best(&|| {
                blocking_mpmc(
                    items,
                    consumers,
                    batch,
                    format!("mpmc 1p/{consumers}c blocking {tag}"),
                )
            }),
            flavor: "mpmc",
            mode: "blocking",
            batch,
            workers: consumers + 1,
        });
        rows.push(Row {
            m: best(&|| {
                async_mpmc(
                    items,
                    consumers,
                    batch,
                    format!("mpmc 1p/{consumers}c async {tag}"),
                )
            }),
            flavor: "mpmc",
            mode: "async",
            batch,
            workers: consumers + 1,
        });
    }

    print_table(
        "async vs blocking",
        &rows.iter().map(|r| r.m.clone()).collect::<Vec<_>>(),
    );

    // Per-panel ratios (async / blocking), and the JSON dump.
    let blocking_of = |flavor: &str, batch: usize| {
        rows.iter()
            .find(|r| r.flavor == flavor && r.batch == batch && r.mode == "blocking")
            .expect("all panels ran")
            .m
            .mops_per_sec
    };
    println!();
    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let ratio = r.m.mops_per_sec / blocking_of(r.flavor, r.batch).max(1e-12);
        if r.mode == "async" {
            let tag = if r.batch > 1 { "batched" } else { "per-item" };
            println!("{} {tag}: async/blocking = {ratio:.3}", r.flavor);
        }
        json.push_str(&json_row(r, ratio));
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("]\n");

    let path = results_dir().join("BENCH_async.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[results written to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
